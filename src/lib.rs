#![forbid(unsafe_code)]
//! Umbrella crate for the LSI reproduction workspace.
//!
//! Re-exports every member crate under one roof so the examples and
//! integration tests (and downstream users who want a single dependency)
//! can write `use lsi_repro::core::LsiIndex;` instead of depending on each
//! crate individually.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use lsi_core as core;
pub use lsi_corpus as corpus;
pub use lsi_graph as graph;
pub use lsi_ir as ir;
pub use lsi_linalg as linalg;
pub use lsi_rp as rp;
pub use lsi_serve as serve;
