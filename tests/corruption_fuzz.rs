//! Corruption fuzz sweep over the persistence formats and the shard RPC
//! wire format.
//!
//! Every single-byte corruption of an `.lsix` snapshot or a `.lsij`
//! journal must be *contained*: strict snapshot reads fail with a typed
//! [`lsi_core::StorageError`] (never a panic, never a silently wrong
//! index); tolerant opens of the sectioned v3 format either fail typed or
//! quarantine exactly the degradable section holding the flipped byte;
//! and journal recovery degrades to a strict prefix of the original
//! record stream (never an invented or altered record). The same bar
//! applies to bytes arriving over a shard socket: every flipped or
//! truncated RPC frame dies in [`lsi_core::frame::scan_frame`] or the
//! payload grammar with a typed [`TransportError`] — never a panic, never
//! an unbounded allocation, never a silently altered message. Two masks
//! per offset: `0xFF` (whole byte inverted — gross media damage) and
//! `0x01` (single bit — the classic silent-rot case a checksum must
//! catch).

use std::path::PathBuf;

use lsi_core::journal::{decode_frames, encode_frame, fresh_journal_bytes};
use lsi_core::{
    inspect_snapshot, open_index_tolerant, read_index, write_index, DurableIndex, FrameScan,
    Journal, LsiConfig, LsiIndex, MutationRecord, SectionId, SnapshotReport,
};
use lsi_ir::retrieval::{RankedList, SearchHit, VectorSpaceIndex};
use lsi_ir::TermDocumentMatrix;
use lsi_serve::transport::{
    decode_reply, decode_request, encode_reply, encode_request, RpcReply, RpcRequest,
    TransportError,
};
use lsi_serve::{DegradeReason, EngineConfig, Query, QueryEngine, QueryError, QueryResponse};

const MASKS: [u8; 2] = [0xFF, 0x01];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_corpus() -> TermDocumentMatrix {
    TermDocumentMatrix::from_triplets(
        5,
        4,
        &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
            (3, 2, 1.0),
            (3, 3, 2.0),
            (4, 3, 1.0),
        ],
    )
    .expect("valid triplets")
}

fn sample_index() -> LsiIndex {
    LsiIndex::build(&sample_corpus(), LsiConfig::with_rank(2)).expect("build sample index")
}

/// Byte offset of the middle of `id`'s payload in a v3 snapshot image.
fn payload_mid(report: &SnapshotReport, id: SectionId) -> usize {
    let s = report
        .sections
        .iter()
        .find(|s| s.id == Some(id))
        .expect("section present in directory");
    (s.offset + 8 + s.len / 2) as usize
}

/// Flipping any byte of a snapshot — any offset, both masks — must come
/// back as a typed `StorageError`. The version field (offsets 4..8) is
/// excluded: rewriting version 2 as version 1 selects the documented
/// legacy read path (v1 files had no CRC trailer and are accepted by
/// design), so a flip there is a format *downgrade*, not corruption. The
/// chosen masks never produce the value 1, but the exclusion keeps the
/// sweep honest if masks change.
#[test]
fn every_snapshot_byte_flip_is_a_typed_error() {
    let index = sample_index();
    let mut clean = Vec::new();
    write_index(&mut clean, &index).expect("serialize");

    for offset in 0..clean.len() {
        if (4..8).contains(&offset) {
            continue; // version field: see doc comment above
        }
        for mask in MASKS {
            let mut dirty = clean.clone();
            dirty[offset] ^= mask;
            match read_index(&mut dirty.as_slice()) {
                Err(_typed) => {} // contained: every variant is acceptable
                Ok(_) => panic!("flip {mask:#04x} at offset {offset} was silently accepted"),
            }
        }
    }
}

/// Tolerant open, exhaustively: flipping any byte of a v3 snapshot — any
/// offset, both masks — either fails with a typed error (version,
/// directory, or essential-section damage) or opens with a non-empty
/// quarantine naming only degradable sections whose block contains the
/// flipped byte. A flip is never silently absorbed, and the quarantine
/// reported to the caller always matches the one marked on the index.
#[test]
fn every_v3_byte_flip_quarantines_or_errors() {
    let index = sample_index();
    let mut clean = Vec::new();
    write_index(&mut clean, &index).expect("serialize");
    let report = inspect_snapshot(&clean).expect("inspect clean image");

    for offset in 0..clean.len() {
        for mask in MASKS {
            let mut dirty = clean.clone();
            dirty[offset] ^= mask;
            let total = dirty.len() as u64;
            match open_index_tolerant(&mut dirty.as_slice(), Some(total)) {
                Err(_typed) => {} // contained: every variant is acceptable
                Ok((opened, damage)) => {
                    assert!(
                        !damage.is_empty(),
                        "flip {mask:#04x} at offset {offset} was silently absorbed"
                    );
                    for d in &damage {
                        assert!(
                            !d.section.essential(),
                            "tolerant open quarantined essential section {}",
                            d.section
                        );
                        let s = report
                            .sections
                            .iter()
                            .find(|s| s.id == Some(d.section))
                            .expect("quarantined section is in the directory");
                        let block = s.offset..s.offset + 8 + s.len + 4;
                        assert!(
                            block.contains(&(offset as u64)),
                            "flip {mask:#04x} at offset {offset} quarantined \
                             unrelated section {}",
                            d.section
                        );
                    }
                    let marked: Vec<SectionId> = damage.iter().map(|d| d.section).collect();
                    assert_eq!(opened.quarantined_sections(), marked.as_slice());
                }
            }
        }
    }
}

/// The same contract through the full recovery entry point. `open_durable`
/// opens *tolerantly*: damage to the directory or an essential section is
/// still a typed error, while damage inside a degradable section opens the
/// index with exactly that section quarantined — never a panic, never a
/// silently clean index. (Sampled offsets — the exhaustive in-memory
/// sweeps above already cover every byte.)
#[test]
fn open_durable_contains_snapshot_corruption() {
    let dir = temp_dir("open_durable");
    let snapshot = dir.join("index.lsix");
    let d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    drop(d);
    let clean = std::fs::read(&snapshot).expect("read snapshot");
    let report = inspect_snapshot(&clean).expect("inspect clean snapshot");

    // Magic, directory count, and a directory entry: unrecoverable.
    let essential_probes = [
        0usize,
        1,
        8,
        13,
        payload_mid(&report, SectionId::Meta),
        payload_mid(&report, SectionId::SingularValues),
        payload_mid(&report, SectionId::TermFactors),
    ];
    for offset in essential_probes {
        let mut dirty = clean.clone();
        dirty[offset] ^= 0xFF;
        std::fs::write(&snapshot, &dirty).expect("install corrupt snapshot");
        assert!(
            DurableIndex::open_durable(&snapshot).is_err(),
            "essential damage (offset {offset}) opened without error"
        );
    }

    // Degradable sections: partial open with the quarantine reported.
    for id in [
        SectionId::DocFactors,
        SectionId::DocVectors,
        SectionId::FoldInMeta,
    ] {
        let mut dirty = clean.clone();
        dirty[payload_mid(&report, id)] ^= 0xFF;
        std::fs::write(&snapshot, &dirty).expect("install corrupt snapshot");
        let (durable, recovery) =
            DurableIndex::open_durable(&snapshot).expect("degradable damage partially opens");
        assert_eq!(recovery.quarantined, vec![id]);
        assert_eq!(durable.index().quarantined_sections(), &[id]);
    }

    // Restore the clean bytes: recovery works again — corruption handling
    // must not have side effects on the snapshot itself.
    std::fs::write(&snapshot, &clean).expect("restore snapshot");
    let (durable, recovery) =
        DurableIndex::open_durable(&snapshot).expect("clean snapshot reopens");
    assert!(recovery.quarantined.is_empty());
    assert!(durable.index().quarantined_sections().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A partial open with `doc-vectors` quarantined must answer every query
/// exactly — bitwise — like the raw term-space fallback it degrades to,
/// and say so in the degrade reason.
#[test]
fn partial_open_answers_exactly_like_term_space_fallback() {
    let td = sample_corpus();
    let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).expect("build");
    let weighting = index.config().weighting;
    let dir = temp_dir("partial_open");
    let snapshot = dir.join("index.lsix");
    drop(DurableIndex::create(&snapshot, index).expect("create"));

    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let report = inspect_snapshot(&bytes).expect("inspect");
    bytes[payload_mid(&report, SectionId::DocVectors)] ^= 0x01;
    std::fs::write(&snapshot, &bytes).expect("install corrupt snapshot");

    let (durable, recovery) = DurableIndex::open_durable(&snapshot).expect("partial open");
    assert_eq!(recovery.quarantined, vec![SectionId::DocVectors]);

    let engine = QueryEngine::with_durable_fallback(
        durable,
        &td,
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );
    let raw = VectorSpaceIndex::build(&td.weighted(weighting));

    let mut queries: Vec<Vec<(usize, f64)>> = (0..5).map(|t| vec![(t, 1.0)]).collect();
    queries.push(vec![(0, 0.5), (3, 2.0)]);
    queries.push(vec![(1, 1.0), (2, 1.0), (4, 0.25)]);

    for terms in queries {
        let resp = engine
            .query(Query::new(terms.clone(), 4))
            .expect("degraded query answers");
        match resp {
            QueryResponse::Degraded { hits, reason } => {
                assert_eq!(reason, DegradeReason::DamagedSection(SectionId::DocVectors));
                let expect = raw.query(&terms, 4);
                assert_eq!(hits.doc_ids(), expect.doc_ids(), "ranking diverged");
                for (h, e) in hits.hits().iter().zip(expect.hits()) {
                    assert_eq!(
                        h.score.to_bits(),
                        e.score.to_bits(),
                        "doc {} scored differently from the fallback",
                        h.doc
                    );
                }
            }
            other => panic!("expected a degraded response, got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a journal byte image with three mutation frames after the
/// header, plus the decoded record list it should yield.
fn journal_image() -> (Vec<u8>, Vec<MutationRecord>) {
    let records = vec![
        MutationRecord::Checkpoint { seq: 2 },
        MutationRecord::FoldIn {
            seq: 2,
            terms: vec![(0, 1.5), (3, 0.5)],
        },
        MutationRecord::AddDocument {
            seq: 3,
            doc_id: "doc-x".to_owned(),
            terms: vec![(1, 2.0)],
        },
    ];
    let mut bytes = fresh_journal_bytes(None);
    for r in &records {
        bytes.extend_from_slice(&encode_frame(r));
    }
    (bytes, records)
}

/// Flipping any byte of the journal *body* (past the 8-byte header) must
/// degrade decoding to a strict prefix of the original record stream:
/// the CRC kills the frame containing the flip, truncation drops it and
/// everything after, and no record is ever altered or invented.
#[test]
fn every_journal_body_flip_decodes_to_a_strict_prefix() {
    let (clean, records) = journal_image();
    let (decoded, consumed, cause) = decode_frames(&clean[8..]);
    assert_eq!(decoded, records, "clean image must decode fully");
    assert_eq!(consumed, clean.len() - 8);
    assert!(cause.is_none());

    for offset in 8..clean.len() {
        for mask in MASKS {
            let mut dirty = clean.clone();
            dirty[offset] ^= mask;
            let (got, _, cause) = decode_frames(&dirty[8..]);
            assert!(
                got.len() < records.len(),
                "flip {mask:#04x} at {offset}: no frame was dropped"
            );
            assert_eq!(
                got,
                records[..got.len()],
                "flip {mask:#04x} at {offset}: surviving records altered"
            );
            assert!(
                cause.is_some(),
                "flip {mask:#04x} at {offset}: truncation went unreported"
            );
        }
    }
}

/// Flips in the journal *header* (magic or version) are unrecoverable
/// identity damage and must surface as a typed error from
/// `Journal::open` — never a panic, never a fresh journal silently
/// replacing the damaged one.
#[test]
fn journal_header_flips_are_typed_errors() {
    let dir = temp_dir("journal_header");
    let path = dir.join("index.lsix.lsij");
    let (clean, _) = journal_image();

    for offset in 0..8 {
        for mask in MASKS {
            let mut dirty = clean.clone();
            dirty[offset] ^= mask;
            std::fs::write(&path, &dirty).expect("install corrupt journal");
            assert!(
                Journal::open(&path).is_err(),
                "header flip {mask:#04x} at {offset} opened without error"
            );
        }
    }

    // Body flips through the same entry point: open succeeds, truncates
    // the damaged tail on disk, and keeps only intact frames.
    let mut dirty = clean.clone();
    let last = clean.len() - 1;
    dirty[last] ^= 0xFF;
    std::fs::write(&path, &dirty).expect("install corrupt tail");
    let (journal, recovery) = Journal::open(&path).expect("body damage recovers");
    drop(journal);
    assert!(recovery.truncation.is_some());
    assert!(recovery.truncated_bytes > 0);
    let truncated = std::fs::read(&path).expect("reread journal");
    assert_eq!(
        truncated,
        clean[..clean.len() - recovery.truncated_bytes as usize]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------------------------
// RPC frame decoder: the bytes a coordinator reads off a shard socket.
// --------------------------------------------------------------------------

/// One wire message with the grammar (request or reply) that produced it,
/// so a sweep can re-run the matching decoder over damaged bytes.
enum RpcMsg {
    Req(RpcRequest),
    Reply(RpcReply),
}

impl RpcMsg {
    fn encode(&self) -> Vec<u8> {
        match self {
            RpcMsg::Req(r) => encode_request(r),
            RpcMsg::Reply(r) => encode_reply(r),
        }
    }

    /// Decodes `payload` with this message's grammar; `Ok(true)` means the
    /// bytes decoded *and* reproduced the original message bit-exactly.
    fn decode_matches(&self, payload: &[u8]) -> Result<bool, TransportError> {
        match self {
            RpcMsg::Req(r) => decode_request(payload).map(|d| d == *r),
            RpcMsg::Reply(r) => decode_reply(payload).map(|d| d == *r),
        }
    }
}

/// Every wire tag on both sides of the protocol, with payloads that
/// exercise strings, f64 bit patterns, optional ids, and hit lists.
/// (`Fail(BadQuery)` is excluded: it intentionally decodes to `Internal`
/// — the reason is rendered at the encoding boundary — so it is the one
/// message whose round trip is not the identity.) No `0.0` floats: the
/// sweep asserts a flip never decodes back to the original message, and
/// `-0.0 == 0.0` under `f64` equality would mask a sign-bit flip.
fn rpc_messages() -> Vec<RpcMsg> {
    let hits = RankedList::from_hits(vec![
        SearchHit {
            doc: 2,
            score: 0.75,
        },
        SearchHit { doc: 0, score: 0.5 },
    ]);
    vec![
        RpcMsg::Req(RpcRequest::Hello),
        RpcMsg::Req(RpcRequest::Query {
            terms: vec![(0, 1.5), (7, -0.25), (usize::MAX >> 1, 1e-300)],
            top_k: u64::MAX,
            tag: 42,
        }),
        RpcMsg::Req(RpcRequest::AddVector {
            doc_id: "1729".to_string(),
            coords: vec![0.1, -2.5, 3.25],
        }),
        RpcMsg::Req(RpcRequest::LogRetire { doc: 3 }),
        RpcMsg::Req(RpcRequest::DocVector { doc: 0 }),
        RpcMsg::Req(RpcRequest::Compact {
            ids: vec![Some(5), None, Some(u64::MAX)],
        }),
        RpcMsg::Req(RpcRequest::Ping),
        RpcMsg::Req(RpcRequest::Shutdown),
        RpcMsg::Reply(RpcReply::Hello {
            pid: 4321,
            ids: vec![Some(0), None, Some(17)],
        }),
        RpcMsg::Reply(RpcReply::Answer(QueryResponse::Ranked(hits.clone()))),
        RpcMsg::Reply(RpcReply::Answer(QueryResponse::Degraded {
            hits,
            reason: DegradeReason::SoftDeadline,
        })),
        RpcMsg::Reply(RpcReply::Answer(QueryResponse::Degraded {
            hits: RankedList::default(),
            reason: DegradeReason::DamagedSection(SectionId::DocVectors),
        })),
        RpcMsg::Reply(RpcReply::Local { local: 9 }),
        RpcMsg::Reply(RpcReply::Flag { value: true }),
        RpcMsg::Reply(RpcReply::Coords {
            coords: vec![1.0, -1.0],
        }),
        RpcMsg::Reply(RpcReply::Ok),
        RpcMsg::Reply(RpcReply::Fail(QueryError::Overloaded { capacity: 64 })),
        RpcMsg::Reply(RpcReply::Fail(QueryError::DeadlineExceeded)),
        RpcMsg::Reply(RpcReply::Fail(QueryError::Internal {
            detail: "worker panicked".to_string(),
        })),
        RpcMsg::Reply(RpcReply::Fail(QueryError::ShuttingDown)),
    ]
}

/// Flip every byte of every framed RPC message (length prefix, payload,
/// and CRC trailer) under both masks. Each flip must be contained: the
/// frame scanner rejects it with a typed [`lsi_core::FrameError`], or
/// reports `Incomplete` (a grown length prefix — the reader keeps
/// waiting and the per-RPC deadline fires), or — should a damaged frame
/// ever clear the checksum — the payload grammar must refuse it. A
/// corrupted frame never becomes a different valid message.
#[test]
fn every_rpc_frame_flip_is_contained() {
    for msg in rpc_messages() {
        let payload = msg.encode();
        let frame = lsi_core::frame::encode_frame(&payload);

        // Sanity: the pristine frame scans whole and round-trips.
        match lsi_core::frame::scan_frame(&frame).expect("pristine frame scans") {
            FrameScan::Complete {
                payload: p,
                consumed,
            } => {
                assert_eq!(consumed, frame.len(), "frame byte count");
                assert_eq!(p, payload, "scan returns the payload verbatim");
                assert!(
                    msg.decode_matches(&p).expect("pristine payload decodes"),
                    "pristine round trip is the identity"
                );
            }
            FrameScan::Incomplete => panic!("pristine frame scanned incomplete"),
        }

        for offset in 0..frame.len() {
            for mask in MASKS {
                let mut dirty = frame.clone();
                dirty[offset] ^= mask;
                match lsi_core::frame::scan_frame(&dirty) {
                    // Typed rejection: checksum mismatch or over-cap length.
                    Err(_) => {}
                    // The length prefix grew past the received bytes: the
                    // reader waits for more and the deadline bounds it.
                    Ok(FrameScan::Incomplete) => {}
                    Ok(FrameScan::Complete { payload: p, .. }) => {
                        assert!(
                            msg.decode_matches(&p).is_err(),
                            "flip {mask:#04x} at frame offset {offset} survived \
                             the checksum and decoded"
                        );
                    }
                }
            }
        }
    }
}

/// Every strict prefix of a framed RPC message must scan as `Incomplete`
/// — the mid-stream state a reader sits in while bytes are still
/// arriving. A truncation must never error (the frame may yet complete)
/// and never yield a frame.
#[test]
fn every_rpc_frame_truncation_scans_incomplete() {
    for msg in rpc_messages() {
        let frame = lsi_core::frame::encode_frame(&msg.encode());
        for cut in 0..frame.len() {
            match lsi_core::frame::scan_frame(&frame[..cut]) {
                Ok(FrameScan::Incomplete) => {}
                Ok(FrameScan::Complete { .. }) => {
                    panic!(
                        "prefix of {cut}/{} bytes scanned as a whole frame",
                        frame.len()
                    )
                }
                Err(e) => panic!(
                    "prefix of {cut}/{} bytes errored ({e}) — truncation must stay retriable",
                    frame.len()
                ),
            }
        }
    }
}

/// Byte-flip the bare payload (as if a damaged frame cleared the CRC):
/// the grammar must return a typed [`TransportError::Malformed`] or
/// decode to a *different* valid message — never panic, never allocate
/// beyond the wire caps, and never reproduce the original message from
/// altered bytes (every payload byte is semantically live).
#[test]
fn every_rpc_payload_flip_is_typed_or_differs() {
    for msg in rpc_messages() {
        let payload = msg.encode();
        for offset in 0..payload.len() {
            for mask in MASKS {
                let mut dirty = payload.clone();
                dirty[offset] ^= mask;
                match msg.decode_matches(&dirty) {
                    Err(TransportError::Malformed(_)) => {}
                    Err(e) => panic!(
                        "payload flip {mask:#04x} at {offset} raised a non-grammar \
                         error: {e}"
                    ),
                    Ok(matches) => assert!(
                        !matches,
                        "payload flip {mask:#04x} at {offset} decoded back to the \
                         original message — a dead wire byte"
                    ),
                }
            }
        }
    }
}

/// Truncate the bare payload at every offset: the grammar hits the end of
/// input (or the trailing-bytes check) and returns a typed
/// [`TransportError::Malformed`] — a strict prefix never decodes.
#[test]
fn every_rpc_payload_truncation_is_a_typed_error() {
    for msg in rpc_messages() {
        let payload = msg.encode();
        for cut in 0..payload.len() {
            match msg.decode_matches(&payload[..cut]) {
                Err(TransportError::Malformed(_)) => {}
                Err(e) => panic!("payload prefix of {cut} bytes raised a non-grammar error: {e}"),
                Ok(_) => panic!(
                    "payload prefix of {cut}/{} bytes decoded as a whole message",
                    payload.len()
                ),
            }
        }
    }
}
