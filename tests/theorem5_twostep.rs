//! Integration: Theorem 5 — the two-step RP + LSI pipeline satisfies
//! `‖A − B₂ₖ‖²_F ≤ ‖A − A_k‖²_F + 2ε‖A‖²_F` across corpora, projection
//! ensembles, and seeds.

use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_repro::linalg::rng::seeded;
use lsi_repro::linalg::CsrMatrix;
use lsi_repro::rp::{two_step_lsi, ProjectionKind};

fn corpus(seed: u64) -> (CsrMatrix, usize) {
    let k = 6;
    let config = SeparableConfig {
        universe_size: 300,
        num_topics: k,
        primary_terms_per_topic: 50,
        epsilon: 0.05,
        min_doc_len: 50,
        max_doc_len: 100,
    };
    let model = SeparableModel::build(config).expect("valid");
    let mut rng = seeded(seed);
    let c = model.model().sample_corpus(150, &mut rng);
    let td = TermDocumentMatrix::from_generated(&c).expect("fits");
    (td.counts().clone(), k)
}

fn direct_error_sq(a: &CsrMatrix, k: usize) -> f64 {
    let f = lanczos_svd(a, k, &LanczosOptions::default()).expect("valid rank");
    let head: f64 = f.singular_values.iter().map(|s| s * s).sum();
    (a.frobenius_sq() - head).max(0.0)
}

#[test]
fn inequality_holds_across_ensembles() {
    let (a, k) = corpus(10);
    let direct = direct_error_sq(&a, k);
    let l = 80; // comfortably Ω(log n / ε²) territory for this scale
    for kind in ProjectionKind::ALL {
        for seed in [1u64, 2, 3] {
            let r = two_step_lsi(&a, k, l, kind, seed).expect("valid dims");
            let excess = r.excess_error_fraction(direct);
            assert!(
                excess < 0.08,
                "{}/seed {seed}: excess {excess}",
                kind.name()
            );
        }
    }
}

#[test]
fn recovery_improves_monotonically_in_l() {
    let (a, k) = corpus(11);
    let mut last = f64::INFINITY;
    for &l in &[2 * k, 4 * k, 10 * k, 30 * k] {
        let r = two_step_lsi(&a, k, l, ProjectionKind::OrthonormalSubspace, 5).expect("valid dims");
        assert!(
            r.error_sq <= last * 1.1,
            "error not shrinking at l={l}: {} vs {last}",
            r.error_sq
        );
        last = r.error_sq;
    }
}

#[test]
fn two_step_document_geometry_still_separates_topics() {
    // Beyond the Frobenius bound: the 2k-dim document representations from
    // the two-step pipeline should still cluster by topic.
    let k = 4;
    let config = SeparableConfig {
        universe_size: 200,
        num_topics: k,
        primary_terms_per_topic: 50,
        epsilon: 0.03,
        min_doc_len: 60,
        max_doc_len: 100,
    };
    let model = SeparableModel::build(config).expect("valid");
    let mut rng = seeded(12);
    let c = model.model().sample_corpus(120, &mut rng);
    let td = TermDocumentMatrix::from_generated(&c).expect("fits");
    let labels = td.topic_labels().to_vec();

    let r = two_step_lsi(td.counts(), k, 60, ProjectionKind::OrthonormalSubspace, 9)
        .expect("valid dims");

    // Singular-value-weighted document representations (the V·D analog):
    // topic structure must survive the projection.
    let reps = r.doc_representations();
    let skew = lsi_repro::core::skew::measure_skew(&reps, &labels).expect("enough docs");
    // The 2k-dim space keeps k noise directions alongside the k topic
    // directions, so the constant is looser than for direct LSI.
    assert!(
        skew.delta < 0.6,
        "two-step representation lost topic structure: {}",
        skew.delta
    );
}
