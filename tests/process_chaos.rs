//! Integration: the cross-process cluster under a kill -9 storm.
//!
//! This harness is `harness = false`: its `main` doubles as the shard
//! daemon entry point. The supervisor spawns *this very test binary* with
//! `shard-daemon --snapshot … --socket …` leading arguments (re-exec via
//! `current_exe()`), so every shard is a real child **process** serving
//! the Unix-socket RPC protocol — and a kill here is a real `SIGKILL`
//! delivered mid-query, mid-fold-in, or mid-rebalance, not a simulated
//! crash inside one address space.
//!
//! The serving contract under test is the same one `cluster_chaos.rs`
//! proves in-process, now across process boundaries:
//!
//! - a `Complete` response is bitwise the unsharded reference answer, for
//!   every kill schedule;
//! - a `Degraded` response stays within the quorum bound, contains no
//!   duplicates, and every hit carries the reference's exact score bits;
//! - a killed shard is reaped and respawned by the supervisor's heartbeat
//!   with a **bumped incarnation** (stale hedged replies rejected), and
//!   its hello reports the journal's id map, which the coordinator adopts
//!   — so fold-ins whose ack a kill swallowed reappear, exactly once;
//! - after the storm: no zombie children, no stale socket files, and an
//!   **in-process** reopen of the very same shard directory reproduces
//!   the cross-process cluster's fingerprint and probe answer bit for
//!   bit.
//!
//! A second test proves the stale-socket sweep: a daemon killed with the
//! socket path still on disk must be replaceable by a fresh daemon on the
//! same path (startup unlinks the leftover, the analogue of the journal's
//! stale `.tmp` sweep).
//!
//! Seed-deterministic query mix (`SERVE_CHAOS_SEED` overrides);
//! `SERVE_SOAK=1` raises the volume. Kill timing is inherently
//! wall-clock, so *outcome counts* vary run to run — the assertions are
//! invariants over every outcome, never counts.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::Rng;

use lsi_core::{BuildStatus, LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::serve::cluster::{
    Cluster, ClusterConfig, ClusterDegradeReason, ClusterError, ClusterResponse,
};
use lsi_repro::serve::{
    run_shard_daemon, DaemonCommand, EngineConfig, Query, RemoteShard, ShardDaemonConfig,
    ShardSupervisor, ShardTransport, SupervisorConfig,
};

const DEFAULT_SEED: u64 = 20260706;
const SHARDS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("shard-daemon") {
        run_daemon_child(&args[2..]);
        return;
    }
    // harness = false: run the tests ourselves (filter args are ignored —
    // the two tests share the expensive daemon machinery anyway).
    storm_survives_sigkill_at_every_point();
    respawn_after_kill_sweeps_stale_socket();
    respawn_never_reuses_a_socket_path();
    println!("process_chaos: all tests passed");
}

/// The re-exec'd daemon entry point: parses exactly the flags
/// [`ShardSupervisor`] appends and serves one shard until shut down.
fn run_daemon_child(args: &[String]) {
    let mut snapshot: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut workers = 2usize;
    let mut deadline_ms = 1_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--snapshot" => snapshot = it.next().map(PathBuf::from),
            "--socket" => socket = it.next().map(PathBuf::from),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--deadline-ms" => {
                deadline_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(deadline_ms);
            }
            other => panic!("shard-daemon: unknown flag {other:?}"),
        }
    }
    let mut config = ShardDaemonConfig::new(
        snapshot.expect("shard-daemon needs --snapshot"),
        socket.expect("shard-daemon needs --socket"),
    );
    config.workers = workers;
    config.hard_deadline = Duration::from_millis(deadline_ms);
    if let Err(e) = run_shard_daemon(config) {
        eprintln!("shard-daemon failed: {e}");
        std::process::exit(4);
    }
}

fn chaos_seed() -> u64 {
    std::env::var("SERVE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn storm_volume() -> usize {
    if std::env::var("SERVE_SOAK").as_deref() == Ok("1") {
        8_000
    } else {
        2_400
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_process_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The same E1-shaped corpus `cluster_chaos.rs` storms over.
fn corpus(seed: u64) -> TermDocumentMatrix {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 60,
        num_topics: 3,
        primary_terms_per_topic: 20,
        epsilon: 0.0,
        min_doc_len: 8,
        max_doc_len: 16,
    })
    .unwrap();
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    let generated = model.model().sample_corpus(40, &mut rng);
    TermDocumentMatrix::from_generated(&generated).unwrap()
}

fn bits(hits: &lsi_repro::ir::retrieval::RankedList) -> Vec<(usize, u64)> {
    hits.hits()
        .iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect()
}

fn expected_fingerprint(reference: &LsiIndex) -> BTreeMap<u64, Vec<u64>> {
    (0..reference.n_docs())
        .map(|j| {
            (
                j as u64,
                reference
                    .doc_vector(j)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect(),
            )
        })
        .collect()
}

fn storm_config() -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 4096,
            deadline: None, // the daemons apply their own hard deadline
            soft_deadline: None,
            fault_hook: None,
            max_batch: 1,
        },
        // Short soft deadline: a freshly killed daemon that stops
        // answering makes in-flight scatters hedge — into the *same*
        // generation only (the respawn bumps it), which is the staleness
        // contract under test.
        soft_deadline: Some(Duration::from_millis(25)),
        hard_deadline: Duration::from_secs(5),
        breaker_threshold: 6,
        quorum: 0.5,
        assignment: None,
        fault_hooks: None,
    }
}

fn supervisor_command() -> DaemonCommand {
    DaemonCommand::new(
        std::env::current_exe().expect("current_exe"),
        vec!["shard-daemon".to_owned()],
    )
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Normal,
    NanWeight,
    OutOfRange,
}

struct StormQuery {
    kind: Kind,
    query: Query,
}

/// Seed-deterministic storm mix: mostly well-formed, plus the malformed
/// slices (the process kills are the chaos here — no in-process fault
/// hooks can reach a separate address space).
fn generate_storm(seed: u64, total: usize, n_terms: usize) -> Vec<StormQuery> {
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    (0..total)
        .map(|i| {
            let roll = rng.gen_range(0usize..100);
            let kind = match roll {
                0..=89 => Kind::Normal,
                90..=94 => Kind::NanWeight,
                _ => Kind::OutOfRange,
            };
            let n_query_terms = rng.gen_range(1usize..=4);
            let mut terms: Vec<(usize, f64)> = (0..n_query_terms)
                .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
                .collect();
            match kind {
                Kind::NanWeight => terms[0].1 = f64::NAN,
                Kind::OutOfRange => terms[0].0 = n_terms + rng.gen_range(1usize..50),
                Kind::Normal => {}
            }
            StormQuery {
                kind,
                query: Query {
                    terms,
                    top_k: rng.gen_range(1usize..=10),
                    tag: i as u64,
                },
            }
        })
        .collect()
}

/// Fails if `pid` is a zombie child of this process (exited but never
/// reaped). A recycled pid belongs to someone else and is ignored.
fn assert_not_our_zombie(pid: u32) {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return; // gone entirely: reaped
    };
    // Layout: pid (comm) state ppid … — comm may contain spaces, so parse
    // from the last ')'.
    let after = stat.rsplit(')').next().unwrap_or("");
    let mut fields = after.split_whitespace();
    let state = fields.next().unwrap_or("");
    let ppid: u32 = fields.next().and_then(|p| p.parse().ok()).unwrap_or(0);
    assert!(
        !(state == "Z" && ppid == std::process::id()),
        "daemon pid {pid} is an unreaped zombie"
    );
}

/// Files under `dir` with extension `ext`.
fn files_with_ext(dir: &std::path::Path, ext: &str) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("read shard dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == ext))
        .collect()
}

/// SIGKILLs every daemon, then waits until the heartbeat has respawned
/// all of them and the cluster answers `Complete` again. Killing *all*
/// shards forces every coordinator id map through the hello-adoption
/// path, so any journaled-but-unacknowledged mutation becomes visible —
/// the lost-ack reconciliation the module docs promise.
fn settle_by_killing_everything(
    supervisor: &ShardSupervisor,
    cluster: &Cluster,
    probe: &Query,
) -> ClusterResponse {
    for shard in 0..SHARDS {
        supervisor.kill_shard(shard).expect("kill_shard");
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for shard in 0..SHARDS {
            let _ = cluster.revive(shard);
        }
        match cluster.query(probe.clone()) {
            Ok(ClusterResponse::Complete(hits)) => return ClusterResponse::Complete(hits),
            other => {
                assert!(
                    Instant::now() < deadline,
                    "cluster never settled back to Complete after kill-all: {other:?}"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Phase A: the 2400-query storm with a killer SIGKILLing daemons
/// mid-query and a mover rebalancing documents mid-kill. Phase B:
/// fold-ins racing kills, with exactly-once accounting. Then teardown
/// hygiene and the bit-identical in-process reopen.
fn storm_survives_sigkill_at_every_point() {
    let seed = chaos_seed();
    let total = storm_volume();
    let dir = temp_dir("storm");
    let td = corpus(seed);
    let reference = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    assert!(matches!(reference.build_status(), BuildStatus::Full));
    let n_terms = reference.n_terms();
    let expected_fp = expected_fingerprint(&reference);

    // Lay the shards out on disk, release them, then bring them back as
    // child processes.
    Cluster::create(&reference, &dir, storm_config())
        .expect("create shard layout")
        .shutdown();
    let (cluster, supervisor) = ShardSupervisor::launch(
        &dir,
        storm_config(),
        supervisor_command(),
        SupervisorConfig::default(),
    )
    .expect("launch daemons");
    let supervisor = Arc::new(supervisor);
    let initial_pids = supervisor.pids();
    assert_eq!(initial_pids.len(), SHARDS);
    let all_pids: Arc<Mutex<BTreeSet<u32>>> =
        Arc::new(Mutex::new(initial_pids.iter().copied().collect()));

    assert_eq!(cluster.fingerprint(), expected_fp, "pre-storm fingerprint");

    let storm = Arc::new(generate_storm(seed, total, n_terms));
    let n_bad = storm.iter().filter(|q| q.kind != Kind::Normal).count();
    assert!(n_bad > 0);

    let stop = Arc::new(AtomicBool::new(false));

    // The killer: one SIGKILL at a time, paced so the heartbeat can
    // respawn between shots — quorum 2/4 keeps most answers flowing.
    let killer = {
        let supervisor = Arc::clone(&supervisor);
        let stop = Arc::clone(&stop);
        let all_pids = Arc::clone(&all_pids);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(7));
        std::thread::spawn(move || {
            let mut kills = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let shard = rng.gen_range(0..SHARDS);
                supervisor.kill_shard(shard).expect("kill_shard");
                kills += 1;
                std::thread::sleep(Duration::from_millis(200));
                all_pids.lock().unwrap().extend(supervisor.pids());
            }
            kills
        })
    };

    // The mover: rebalances race both the queries and the kills, so
    // SIGKILL lands mid-move too; a move that dies with its shard is
    // allowed to fail — the crash-consistency of the half-done state is
    // exactly what the final fingerprint checks prove.
    let mover = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(1));
        std::thread::spawn(move || {
            let mut moves = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let from = rng.gen_range(0..SHARDS);
                let mut to = rng.gen_range(0..SHARDS);
                if to == from {
                    to = (to + 1) % SHARDS;
                }
                let docs = cluster.shard_docs(from).expect("shard_docs");
                if !docs.is_empty() {
                    let pick = docs[rng.gen_range(0..docs.len())];
                    if let Ok(n) = cluster.rebalance(from, to, &[pick]) {
                        moves += n;
                    }
                }
                std::thread::sleep(Duration::from_millis(15));
            }
            moves
        })
    };

    // 4 submitters race disjoint chunks; every single response is checked
    // against the unsharded reference.
    let chunk = storm.len().div_ceil(4);
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let storm = Arc::clone(&storm);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(storm.len());
                let mut tally = [0u64; 4]; // complete, degraded, quorum_lost, bad
                for sq in &storm[lo..hi] {
                    match cluster.query(sq.query.clone()) {
                        Ok(ClusterResponse::Complete(hits)) => {
                            let want = reference
                                .try_query(&sq.query.terms, sq.query.top_k, None)
                                .expect("reference query");
                            assert_eq!(
                                bits(&hits),
                                bits(&want),
                                "{:?}: Complete response diverged from the reference",
                                sq.kind
                            );
                            tally[0] += 1;
                        }
                        Ok(ClusterResponse::Degraded { hits, reason }) => {
                            let ClusterDegradeReason::MissingShards(missing) = reason else {
                                panic!("full-rank shards can only degrade by absence: {reason:?}")
                            };
                            assert!(
                                (1..=2).contains(&missing),
                                "quorum 2/4 bounds missing shards, got {missing}"
                            );
                            let full = reference
                                .try_query(&sq.query.terms, usize::MAX, None)
                                .expect("reference query");
                            let truth: BTreeMap<usize, u64> = full
                                .hits()
                                .iter()
                                .map(|h| (h.doc, h.score.to_bits()))
                                .collect();
                            assert!(hits.len() <= sq.query.top_k);
                            let mut seen = BTreeSet::new();
                            for h in hits.hits() {
                                assert!(
                                    seen.insert(h.doc),
                                    "document {} appears twice in one response",
                                    h.doc
                                );
                                assert_eq!(
                                    truth.get(&h.doc).copied(),
                                    Some(h.score.to_bits()),
                                    "degraded response returned a wrong score for doc {}",
                                    h.doc
                                );
                            }
                            tally[1] += 1;
                        }
                        Err(ClusterError::QuorumLost {
                            answered, needed, ..
                        }) => {
                            assert!(answered < needed);
                            tally[2] += 1;
                        }
                        Err(ClusterError::BadQuery(_)) => {
                            assert!(
                                matches!(sq.kind, Kind::NanWeight | Kind::OutOfRange),
                                "{:?} query rejected as BadQuery",
                                sq.kind
                            );
                            tally[3] += 1;
                        }
                        Err(other) => panic!("{:?} query hit unexpected error {other}", sq.kind),
                    }
                }
                tally
            })
        })
        .collect();

    let mut tally = [0u64; 4];
    for handle in submitters {
        let t = handle.join().expect("submitter thread must not panic");
        for (acc, x) in tally.iter_mut().zip(t) {
            *acc += x;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let moves = mover.join().expect("mover thread must not panic");
    let kills = killer.join().expect("killer thread must not panic");
    assert!(kills > 0, "the storm must include SIGKILLs");
    assert!(tally[0] > 0, "the storm must include Complete answers");

    // Coordinator books balance and match the submitters' own tallies.
    let stats = cluster.stats();
    assert!(stats.consistent(), "{}", stats.table());
    assert_eq!(stats.queries, total as u64);
    assert_eq!(
        [
            stats.complete,
            stats.degraded,
            stats.quorum_lost,
            stats.bad_query
        ],
        tally,
        "coordinator counters must match observed outcomes:\n{}",
        stats.table()
    );
    assert_eq!(
        stats.bad_query as usize, n_bad,
        "typed rejections are exact even under kills"
    );

    // Phase A settle: kill everything once more so every id map goes
    // through hello adoption, then the visible state must be bitwise the
    // reference — no kill or half-move changed a single bit.
    let probe = Query::new(vec![(0, 1.0), (7, 0.5), (23, 1.5)], reference.n_docs());
    let settled = settle_by_killing_everything(&supervisor, &cluster, &probe);
    let want = reference
        .try_query(&probe.terms, probe.top_k, None)
        .unwrap();
    let ClusterResponse::Complete(hits) = settled else {
        unreachable!()
    };
    assert_eq!(bits(&hits), bits(&want), "post-storm probe diverged");
    assert_eq!(
        cluster.fingerprint(),
        expected_fp,
        "storm altered visible state"
    );
    all_pids.lock().unwrap().extend(supervisor.pids());
    assert_ne!(
        supervisor.pids(),
        initial_pids,
        "kills must have forced respawns"
    );
    if moves == 0 {
        eprintln!("process_chaos: warning: no rebalance completed this run");
    }

    // Phase B: fold-ins racing kills. An acked fold-in must survive any
    // later kill (journal before ack); an errored one may or may not have
    // been journaled — but never anything else.
    let killer_b = {
        let supervisor = Arc::clone(&supervisor);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_c = Arc::clone(&stop);
        let all_pids = Arc::clone(&all_pids);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(9));
        let handle = std::thread::spawn(move || {
            while !stop_c.load(Ordering::Relaxed) {
                let shard = rng.gen_range(0..SHARDS);
                supervisor.kill_shard(shard).expect("kill_shard");
                std::thread::sleep(Duration::from_millis(120));
                all_pids.lock().unwrap().extend(supervisor.pids());
            }
        });
        (handle, stop)
    };
    let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(3));
    let mut acked: Vec<u64> = Vec::new();
    let mut errored = 0usize;
    for _ in 0..30 {
        let terms: Vec<(usize, f64)> = (0..3)
            .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
            .collect();
        match cluster.add_document(&terms) {
            Ok(gid) => acked.push(gid),
            Err(_) => errored += 1,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (killer_handle, killer_stop) = killer_b;
    killer_stop.store(true, Ordering::Relaxed);
    killer_handle.join().expect("phase B killer must not panic");

    // Settle again: adoption makes journaled-but-unacked fold-ins
    // visible. Exactly-once accounting over the final fingerprint.
    let _ = settle_by_killing_everything(&supervisor, &cluster, &probe);
    let fp_final = cluster.fingerprint();
    let present: BTreeSet<u64> = fp_final.keys().copied().collect();
    let base: BTreeSet<u64> = expected_fp.keys().copied().collect();
    for gid in &acked {
        assert!(
            present.contains(gid),
            "acked fold-in {gid} vanished (journal-before-ack violated)"
        );
    }
    for gid in &base {
        assert!(present.contains(gid), "base document {gid} vanished");
    }
    let explained: BTreeSet<u64> = base
        .union(&acked.iter().copied().collect())
        .copied()
        .collect();
    let surplus: Vec<u64> = present.difference(&explained).copied().collect();
    assert!(
        surplus.len() <= errored,
        "{} unexplained documents {surplus:?} but only {errored} uncertain fold-in(s)",
        surplus.len()
    );
    let live_answer = match cluster.query(probe.clone()).expect("final probe") {
        ClusterResponse::Complete(hits) => bits(&hits),
        other => panic!("settled cluster must answer Complete, got {other:?}"),
    };

    // Teardown hygiene: clean shutdown reaps every child and removes
    // every socket file; no pid we ever observed may linger as a zombie.
    let supervisor =
        Arc::try_unwrap(supervisor).unwrap_or_else(|_| panic!("supervisor handles leaked"));
    supervisor.shutdown();
    for pid in all_pids.lock().unwrap().iter() {
        assert_not_our_zombie(*pid);
    }
    let socks = files_with_ext(&dir, "sock");
    assert!(socks.is_empty(), "stale socket files survived: {socks:?}");

    // The in-process reopen of the same directory must agree bit for bit
    // with what the cross-process cluster last served.
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("all cluster handles must have been dropped"),
    }
    let (reopened, reports) = Cluster::open(&dir, storm_config()).expect("in-process reopen");
    assert_eq!(reports.len(), SHARDS);
    assert_eq!(
        reopened.fingerprint(),
        fp_final,
        "in-process reopen fingerprint diverged from the cross-process cluster"
    );
    match reopened.query(probe.clone()).expect("post-reopen probe") {
        ClusterResponse::Complete(hits) => assert_eq!(bits(&hits), live_answer),
        other => panic!("reopened cluster must answer Complete, got {other:?}"),
    }
    reopened.shutdown();
    let tmps = files_with_ext(&dir, "tmp");
    assert!(tmps.is_empty(), "stale tmp files survived: {tmps:?}");
    let _ = std::fs::remove_dir_all(&dir);
    println!("process_chaos: storm ok ({total} queries, {kills} kills, {moves} moves, {} acked fold-ins, {errored} uncertain)", acked.len());
}

/// The stale-socket sweep: SIGKILL leaves the socket path on disk; a
/// respawned daemon on the same path must unlink it and bind fresh, and a
/// relaunched supervisor must adopt-or-respawn the whole directory.
fn respawn_after_kill_sweeps_stale_socket() {
    let seed = chaos_seed().wrapping_add(100);
    let dir = temp_dir("stale_socket");
    let td = corpus(seed);
    let reference = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let mut config = storm_config();
    config.shards = 2;
    Cluster::create(&reference, &dir, config.clone())
        .expect("create shard layout")
        .shutdown();

    let (cluster, supervisor) = ShardSupervisor::launch(
        &dir,
        config.clone(),
        supervisor_command(),
        SupervisorConfig::default(),
    )
    .expect("launch daemons");
    assert_eq!(files_with_ext(&dir, "sock").len(), 2);

    // Kill shard 0 and immediately drop the supervisor without a clean
    // shutdown: the socket file is left behind, exactly the residue a
    // crashed host leaves. (Drop still reaps, so no zombies.)
    supervisor.kill_shard(0).expect("kill_shard");
    let pids = supervisor.pids();
    drop(supervisor);
    // Daemon 1 was SIGKILLed by Drop, daemon 0 by the kill above: both
    // socket paths are now stale files with no listener.
    assert_eq!(
        files_with_ext(&dir, "sock").len(),
        2,
        "kill -9 must leave the socket paths behind"
    );
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("all cluster handles must have been dropped"),
    }

    // Relaunch over the stale paths: hello fails (no listener), fresh
    // daemons spawn, and their startup sweep unlinks the leftovers so
    // bind succeeds — the reopen-after-kill proof.
    let (cluster, supervisor) = ShardSupervisor::launch(
        &dir,
        config.clone(),
        supervisor_command(),
        SupervisorConfig::default(),
    )
    .expect("relaunch over stale sockets");
    let probe = Query::new(vec![(0, 1.0), (5, 0.5)], reference.n_docs());
    match cluster.query(probe.clone()).expect("post-relaunch probe") {
        ClusterResponse::Complete(hits) => {
            let want = reference
                .try_query(&probe.terms, probe.top_k, None)
                .unwrap();
            assert_eq!(bits(&hits), bits(&want), "relaunched answer diverged");
        }
        other => panic!("relaunched cluster must answer Complete, got {other:?}"),
    }
    supervisor.shutdown();
    for pid in pids {
        assert_not_our_zombie(pid);
    }
    assert!(
        files_with_ext(&dir, "sock").is_empty(),
        "clean shutdown must remove socket files"
    );
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("all cluster handles must have been dropped"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("process_chaos: stale-socket sweep ok");
}

/// The incarnation-isolation proof: a respawn binds a *fresh* socket
/// path, so a transport created for the dead incarnation — which connects
/// by path, per RPC — can never reach the replacement daemon. Without
/// this, a scatter racing the respawn window (new daemon bound, swap not
/// yet installed) could map the replayed daemon's answers through the
/// coordinator's stale id map — wrong bits in a `Complete` answer when a
/// kill had swallowed a retire ack.
fn respawn_never_reuses_a_socket_path() {
    let seed = chaos_seed().wrapping_add(200);
    let dir = temp_dir("incarnation_socket");
    let td = corpus(seed);
    let reference = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let mut config = storm_config();
    config.shards = 2;
    Cluster::create(&reference, &dir, config.clone())
        .expect("create shard layout")
        .shutdown();

    let (cluster, supervisor) = ShardSupervisor::launch(
        &dir,
        config.clone(),
        supervisor_command(),
        SupervisorConfig::default(),
    )
    .expect("launch daemons");

    // Incarnation 0 answers on the base path.
    let old_socket = dir.join("shard-000.sock");
    let stale = RemoteShard::new(old_socket.clone(), Duration::from_secs(1));
    stale
        .ping()
        .expect("incarnation 0 must answer on the base path");

    // Explicit respawn: the replacement must come up on a fresh path and
    // the base path must be gone — connects through the stale transport
    // must fail rather than reach the new incarnation.
    supervisor.respawn_shard(0).expect("respawn shard 0");
    assert!(
        !old_socket.exists(),
        "respawn must remove the dead incarnation's socket file"
    );
    stale
        .ping()
        .expect_err("a stale transport must not reach the respawned incarnation");
    let gen1 = dir.join("shard-000.g1.sock");
    assert!(gen1.exists(), "respawn must bind shard-000.g1.sock");

    // The heartbeat-driven respawn burns paths the same way: SIGKILL the
    // gen-1 daemon and wait for gen-2 to appear.
    supervisor.kill_shard(0).expect("kill_shard");
    let gen2 = dir.join("shard-000.g2.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !gen2.exists() {
        assert!(
            Instant::now() < deadline,
            "heartbeat never respawned onto shard-000.g2.sock"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !gen1.exists(),
        "heartbeat respawn must remove the gen-1 socket file"
    );

    // Through the coordinator, the answer is still bitwise the reference.
    let probe = Query::new(vec![(0, 1.0), (5, 0.5)], reference.n_docs());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match cluster.query(probe.clone()).expect("post-respawn probe") {
            ClusterResponse::Complete(hits) => {
                let want = reference
                    .try_query(&probe.terms, probe.top_k, None)
                    .unwrap();
                assert_eq!(bits(&hits), bits(&want), "post-respawn answer diverged");
                break;
            }
            // The swap may still be settling; Complete must return.
            ClusterResponse::Degraded { .. } => {
                assert!(
                    Instant::now() < deadline,
                    "cluster never answered Complete after the respawns"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    supervisor.shutdown();
    assert!(
        files_with_ext(&dir, "sock").is_empty(),
        "clean shutdown must remove every incarnation's socket file"
    );
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("all cluster handles must have been dropped"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("process_chaos: incarnation socket isolation ok");
}
