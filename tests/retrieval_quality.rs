//! Integration: the paper's headline claim — LSI improves retrieval
//! (precision/recall) over conventional vector-space methods on a
//! synonym-heavy workload.

use lsi_repro::core::{LsiConfig, LsiIndex, SvdBackend};
use lsi_repro::corpus::model::StyleMode;
use lsi_repro::corpus::{CorpusModel, DocumentLaw, LengthLaw, Style, Topic};
use lsi_repro::ir::eval::{average_precision, Judgments};
use lsi_repro::ir::{Bm25Index, Bm25Params, TermDocumentMatrix, VectorSpaceIndex, Weighting};
use lsi_repro::linalg::rng::seeded;

/// Builds a corpus of `k` topics where every topic's most characteristic
/// term has a synonym twin used by half the authors — raw term matching
/// misses half the relevant documents by construction.
fn synonym_corpus(seed: u64) -> (TermDocumentMatrix, Vec<Option<usize>>, Vec<(usize, usize)>) {
    let topics_n = 4;
    let terms_per_topic = 12;
    let universe = topics_n * terms_per_topic;

    let mut topics = Vec::new();
    let mut style_pairs = Vec::new(); // (primary term, synonym twin)
    let mut substitutions = Vec::new();
    for t in 0..topics_n {
        let lo = t * terms_per_topic;
        // Terms lo and lo+1 are the synonym pair; the rest is context.
        let mut weights = vec![0.0; universe];
        weights[lo] = 2.0; // concept word, sampled as `lo`
        weights[lo + 2..lo + terms_per_topic].fill(1.0);
        topics.push(Topic::from_weights(format!("topic-{t}"), &weights).expect("valid"));
        style_pairs.push((lo, lo + 1));
        substitutions.push((lo, lo + 1, 1.0));
    }
    let plain = Style::identity(universe);
    let formal = Style::substitutions("formal", universe, &substitutions).expect("valid style");

    let model = CorpusModel::new(
        universe,
        topics,
        vec![plain, formal],
        DocumentLaw {
            topics_per_doc: 1,
            style_mode: StyleMode::RandomSingle,
            length: LengthLaw::Uniform { min: 30, max: 60 },
        },
    )
    .expect("valid model");

    let mut rng = seeded(seed);
    let corpus = model.sample_corpus(240, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
    let labels = td.topic_labels().to_vec();
    (td, labels, style_pairs)
}

#[test]
fn lsi_beats_lexical_baselines_on_synonym_queries() {
    let (td, labels, pairs) = synonym_corpus(77);

    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
    let bm25 = Bm25Index::build(td.counts(), Bm25Params::default());
    let lsi = LsiIndex::build(
        &td,
        LsiConfig {
            rank: 4,
            weighting: Weighting::Count,
            backend: SvdBackend::default(),
        },
    )
    .expect("feasible rank");

    let m = td.n_docs();
    let mut vsm_ap_sum = 0.0;
    let mut bm25_ap_sum = 0.0;
    let mut lsi_ap_sum = 0.0;
    for (topic, &(concept, _twin)) in pairs.iter().enumerate() {
        // Query: the topic's concept word only (one surface form).
        let query = vec![(concept, 1.0)];
        let relevant: Vec<usize> = (0..m).filter(|&j| labels[j] == Some(topic)).collect();
        let judgments = Judgments::new(relevant);

        vsm_ap_sum += average_precision(&vsm.query(&query, m).doc_ids(), &judgments);
        bm25_ap_sum += average_precision(&bm25.query(&query, m).doc_ids(), &judgments);
        lsi_ap_sum += average_precision(&lsi.query(&query, m).doc_ids(), &judgments);
    }
    let vsm_map = vsm_ap_sum / pairs.len() as f64;
    let bm25_map = bm25_ap_sum / pairs.len() as f64;
    let lsi_map = lsi_ap_sum / pairs.len() as f64;

    // The paper's claim, in shape: LSI clearly ahead. Neither lexical
    // baseline can see past the query's surface form, BM25 included.
    assert!(
        lsi_map > vsm_map + 0.2,
        "LSI MAP {lsi_map:.3} not clearly above VSM MAP {vsm_map:.3}"
    );
    assert!(
        lsi_map > bm25_map + 0.2,
        "LSI MAP {lsi_map:.3} not clearly above BM25 MAP {bm25_map:.3}"
    );
    assert!(lsi_map > 0.8, "LSI MAP too low: {lsi_map:.3}");
}

#[test]
fn lsi_matches_vsm_when_no_synonymy_exists() {
    // Control: on a plain separable corpus without synonyms, LSI should be
    // at least as good, not worse (Eckart–Young's "does not deteriorate").
    use lsi_repro::corpus::{SeparableConfig, SeparableModel};
    let config = SeparableConfig {
        universe_size: 160,
        num_topics: 4,
        primary_terms_per_topic: 40,
        epsilon: 0.05,
        min_doc_len: 40,
        max_doc_len: 80,
    };
    let model = SeparableModel::build(config).expect("valid");
    let mut rng = seeded(5);
    let corpus = model.model().sample_corpus(160, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
    let labels = td.topic_labels().to_vec();

    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
    let lsi = LsiIndex::build(&td, LsiConfig::with_rank(4)).expect("feasible");

    let m = td.n_docs();
    let mut vsm_sum = 0.0;
    let mut lsi_sum = 0.0;
    for topic in 0..4 {
        let query: Vec<(usize, f64)> = model.primary_set(topic)[..5]
            .iter()
            .map(|&t| (t, 1.0))
            .collect();
        let judgments = Judgments::new((0..m).filter(|&j| labels[j] == Some(topic)));
        vsm_sum += average_precision(&vsm.query(&query, m).doc_ids(), &judgments);
        lsi_sum += average_precision(&lsi.query(&query, m).doc_ids(), &judgments);
    }
    assert!(
        lsi_sum >= vsm_sum - 0.05 * 4.0,
        "LSI clearly worse without synonymy: {lsi_sum} vs {vsm_sum}"
    );
}
