//! Integration: persistence paths under injected I/O faults.
//!
//! The contract under test: every durable write path — journal append,
//! checkpoint compaction, atomic snapshot rewrite, cluster rebalance —
//! routed through the process-global `io_faults` injector surfaces a
//! *typed* [`StorageError`]-shaped error when the device fills up, tears a
//! write, or hiccups, and leaves **exact pre-state** on disk: the bytes of
//! every already-durable file are unchanged, so a retry (or a reopen)
//! starts from the state the caller last acknowledged. Transient faults
//! are ridden out by the bounded retry policy without the caller ever
//! seeing them.
//!
//! Arming the injector takes a process-wide exclusive lock, so these
//! tests serialize automatically even under a parallel test runner.

use std::path::PathBuf;

use lsi_repro::core::storage::StorageError;
use lsi_repro::core::{
    io_faults, write_index, write_index_atomic, DurableIndex, LsiConfig, LsiIndex,
};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::faults::WriteFault;
use lsi_repro::serve::{Cluster, ClusterConfig, ClusterError, EngineConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_iofaults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_index() -> LsiIndex {
    let td = TermDocumentMatrix::from_triplets(
        6,
        5,
        &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
            (3, 2, 1.0),
            (3, 3, 2.0),
            (4, 3, 1.0),
            (4, 4, 2.0),
            (5, 4, 1.0),
        ],
    )
    .expect("valid triplets");
    LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("build sample index")
}

fn index_bytes(index: &LsiIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    write_index(&mut buf, index).expect("serialize");
    buf
}

/// Disk state of a durable index: (snapshot bytes, journal bytes).
fn disk_state(snapshot: &PathBuf) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(snapshot).expect("snapshot readable"),
        std::fs::read(lsi_repro::core::journal_path(snapshot)).expect("journal readable"),
    )
}

#[test]
fn journal_append_enospc_is_typed_and_rolls_back() {
    let dir = temp_dir("append_enospc");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    d.add_document(&[(0, 1.0), (2, 0.5)]).expect("clean add");
    let docs_before = d.index().n_docs();
    let pre = disk_state(&snapshot);

    {
        // The device fills up four bytes into the next frame.
        let _guard = io_faults::arm(WriteFault::Enospc { after: 4 });
        let err = d.add_document(&[(1, 2.0)]).expect_err("device is full");
        assert!(
            err.to_string().contains("ENOSPC"),
            "typed full-device error, got: {err}"
        );
        let (_, fired) = io_faults::armed_state().expect("fault armed");
        assert!(fired >= 1, "the injected fault never fired");
    }

    // Exact pre-state: nothing applied in memory, nothing on disk.
    assert_eq!(d.index().n_docs(), docs_before);
    assert_eq!(disk_state(&snapshot), pre, "failed append must roll back");

    // The same mutation succeeds once the device recovers, and a reopen
    // replays exactly the acknowledged frames.
    d.add_document(&[(1, 2.0)]).expect("device recovered");
    let live = index_bytes(d.index());
    drop(d);
    let (reopened, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
    assert_eq!(report.frames_replayed, 2);
    assert_eq!(index_bytes(reopened.index()), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_append_short_write_is_typed_and_rolls_back() {
    let dir = temp_dir("append_short");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    let docs_before = d.index().n_docs();
    let pre = disk_state(&snapshot);

    {
        // The device accepts three bytes of the frame, then nothing.
        let _guard = io_faults::arm(WriteFault::ShortWrite { after: 3 });
        let err = d.add_document(&[(0, 1.0)]).expect_err("short write");
        assert!(
            err.to_string().contains("whole buffer"),
            "typed short-write error, got: {err}"
        );
    }

    assert_eq!(d.index().n_docs(), docs_before);
    assert_eq!(
        disk_state(&snapshot),
        pre,
        "a partial frame must not survive a failed append"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_append_transient_fault_is_ridden_out_by_retry() {
    let dir = temp_dir("append_transient");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");

    let fired = {
        // Two retryable hiccups at the frame boundary, then clean writes:
        // the bounded retry policy (three attempts) must absorb both
        // without the caller seeing an error.
        let _guard = io_faults::arm(WriteFault::Transient {
            after: 0,
            failures: 2,
        });
        d.add_document(&[(3, 1.5)])
            .expect("transient faults are retried");
        io_faults::armed_state().expect("fault armed").1
    };
    assert_eq!(fired, 2, "both hiccups should have fired and been retried");

    let live = index_bytes(d.index());
    drop(d);
    let (reopened, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
    assert_eq!(report.frames_replayed, 1);
    assert_eq!(index_bytes(reopened.index()), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_rewrite_enospc_never_destroys_the_destination() {
    let dir = temp_dir("atomic_enospc");
    let path = dir.join("index.lsix");
    let index = sample_index();
    write_index_atomic(&path, &index).expect("initial write");
    let pre = std::fs::read(&path).expect("destination readable");

    let replacement = {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[(0, 0, 5.0), (1, 1, 4.0), (2, 2, 3.0), (3, 3, 2.0)],
        )
        .expect("valid triplets");
        LsiIndex::build(&td, LsiConfig::with_rank(2)).expect("build replacement")
    };

    {
        let _guard = io_faults::arm(WriteFault::Enospc { after: 16 });
        let err = write_index_atomic(&path, &replacement).expect_err("device is full");
        assert!(matches!(err, StorageError::Io(ref e)
            if e.kind() == std::io::ErrorKind::StorageFull));
    }

    // The destination still holds the old index, byte for byte, and the
    // failed attempt's temporary sibling was cleaned up.
    assert_eq!(std::fs::read(&path).expect("still readable"), pre);
    assert!(
        !dir.join("index.lsix.tmp").exists(),
        "failed rewrite left its .tmp behind"
    );

    // The rewrite succeeds once the device recovers.
    write_index_atomic(&path, &replacement).expect("device recovered");
    let reread = lsi_repro::core::read_index(&mut std::io::Cursor::new(
        std::fs::read(&path).expect("readable"),
    ))
    .expect("replacement parses");
    assert_eq!(index_bytes(&reread), index_bytes(&replacement));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_enospc_preserves_snapshot_and_journal() {
    let dir = temp_dir("checkpoint_enospc");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    d.add_document(&[(0, 1.0), (2, 0.5)]).expect("add 1");
    d.add_document(&[(1, 2.0)]).expect("add 2");
    let live = index_bytes(d.index());
    let pre = disk_state(&snapshot);

    {
        // The compaction's snapshot rewrite hits a full device: the old
        // snapshot and the un-rotated journal must both survive intact.
        let _guard = io_faults::arm(WriteFault::Enospc { after: 64 });
        let err = d.checkpoint().expect_err("device is full");
        assert!(matches!(err, StorageError::Io(ref e)
            if e.kind() == std::io::ErrorKind::StorageFull));
    }

    assert_eq!(
        disk_state(&snapshot),
        pre,
        "failed checkpoint must leave exact pre-state"
    );
    assert_eq!(index_bytes(d.index()), live, "in-memory state untouched");

    // Recovery from the preserved state reproduces the live index, and a
    // retried checkpoint completes.
    d.checkpoint().expect("device recovered");
    drop(d);
    let (reopened, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
    assert_eq!(report.frames_replayed, 0, "checkpoint consumed the tail");
    assert_eq!(index_bytes(reopened.index()), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_auto_compaction_parks_the_error_and_retries() {
    let dir = temp_dir("auto_compact");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    d.set_auto_compact(Some(1));

    {
        // Generous boundary: the (small) journal frame fits under it, the
        // (much larger) snapshot rewrite of the auto-compaction does not.
        let _guard = io_faults::arm(WriteFault::Enospc { after: 200 });
        d.add_document(&[(0, 1.0)])
            .expect("the mutation itself was journaled and applied");
        assert!(
            d.pending_compaction_error().is_some(),
            "compaction failure must be parked, not dropped"
        );
    }

    // The next mutation retries the parked compaction; with the device
    // recovered it succeeds and the journal is bounded again.
    d.add_document(&[(1, 1.0)]).expect("add after recovery");
    assert!(d.pending_compaction_error().is_none());
    assert!(d.frames_since_checkpoint() <= 1);

    let live = index_bytes(d.index());
    drop(d);
    let (reopened, _) = DurableIndex::open_durable(&snapshot).expect("reopen");
    assert_eq!(index_bytes(reopened.index()), live);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_rebalance_enospc_is_typed_and_moves_nothing() {
    let dir = temp_dir("rebalance_enospc");
    let config = ClusterConfig {
        shards: 2,
        engine: EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        ..ClusterConfig::default()
    };
    let cluster = Cluster::create(&sample_index(), &dir, config).expect("create cluster");
    let before = cluster.fingerprint();
    let docs = cluster.shard_docs(0).expect("shard 0 docs");
    assert!(!docs.is_empty());

    {
        // The destination-shard journal append (the move's first durable
        // step) hits a full device: the move must fail typed with the
        // document still owned by the source shard only.
        let _guard = io_faults::arm(WriteFault::Enospc { after: 4 });
        let err = cluster
            .rebalance(0, 1, &docs[..1])
            .expect_err("device is full");
        assert!(
            matches!(err, ClusterError::Storage(_) | ClusterError::Query(_)),
            "typed error, got: {err}"
        );
    }

    assert_eq!(
        cluster.fingerprint(),
        before,
        "failed rebalance must not move or duplicate documents"
    );

    // With the device recovered the same move completes, and a reopened
    // cluster agrees with the live one exactly.
    let moved = cluster
        .rebalance(0, 1, &docs[..1])
        .expect("device recovered");
    assert_eq!(moved, 1);
    let live = cluster.fingerprint();
    cluster.shutdown();
    let (reopened, reports) = Cluster::open_tolerant(
        &dir,
        ClusterConfig {
            shards: 2,
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            ..ClusterConfig::default()
        },
    )
    .expect("reopen");
    assert!(reports.iter().all(|r| r.is_ok()));
    assert_eq!(reopened.fingerprint(), live);
    reopened.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
