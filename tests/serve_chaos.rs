//! Integration: the concurrent query engine under a seeded fault storm.
//!
//! The serving contract under test: for thousands of concurrently
//! submitted queries — some malformed, some slow, some that panic the
//! scorer outright, all while another thread folds new documents in —
//! every submission resolves to `Ok` or a typed `QueryError`, no panic
//! ever escapes to a caller, and the engine's statistics balance exactly.
//!
//! The storm is seed-deterministic (`SERVE_CHAOS_SEED` overrides the
//! default); `SERVE_SOAK=1` raises the volume for the CI soak run.

use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

use lsi_repro::core::{BuildStatus, LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::serve::{
    DegradeReason, EngineConfig, Query, QueryEngine, QueryError, QueryResponse,
};

const DEFAULT_SEED: u64 = 20260706;

/// Tag prefixes the fault hook keys on: `tag / TAG_BASE` is the kind.
const TAG_BASE: u64 = 1_000_000;
const TAG_SLOW: u64 = 2;
const TAG_POISON: u64 = 3;

fn chaos_seed() -> u64 {
    std::env::var("SERVE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn storm_volume() -> usize {
    if std::env::var("SERVE_SOAK").as_deref() == Ok("1") {
        8_000
    } else {
        2_400
    }
}

/// An E1-shaped corpus: well-separated topics, seed-deterministic.
fn corpus(seed: u64) -> TermDocumentMatrix {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 60,
        num_topics: 3,
        primary_terms_per_topic: 20,
        epsilon: 0.0,
        min_doc_len: 8,
        max_doc_len: 16,
    })
    .unwrap();
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    let generated = model.model().sample_corpus(40, &mut rng);
    TermDocumentMatrix::from_generated(&generated).unwrap()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Normal,
    NanWeight,
    OutOfRange,
    Slow,
    Poison,
}

/// One pre-generated storm query with its expected outcome class.
struct StormQuery {
    kind: Kind,
    query: Query,
}

/// Generates the whole storm up front (deterministic per-kind counts),
/// then lets the submitter threads race over it.
fn generate_storm(seed: u64, total: usize, n_terms: usize) -> Vec<StormQuery> {
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    (0..total)
        .map(|i| {
            let roll = rng.gen_range(0usize..100);
            let kind = match roll {
                0..=84 => Kind::Normal,
                85..=89 => Kind::NanWeight,
                90..=94 => Kind::OutOfRange,
                95..=96 => Kind::Slow,
                _ => Kind::Poison,
            };
            let n_query_terms = rng.gen_range(1usize..=4);
            let mut terms: Vec<(usize, f64)> = (0..n_query_terms)
                .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
                .collect();
            match kind {
                Kind::NanWeight => terms[0].1 = f64::NAN,
                Kind::OutOfRange => terms[0].0 = n_terms + rng.gen_range(1usize..50),
                _ => {}
            }
            let tag_kind = match kind {
                Kind::Slow => TAG_SLOW,
                Kind::Poison => TAG_POISON,
                _ => 0,
            };
            StormQuery {
                kind,
                query: Query {
                    terms,
                    top_k: rng.gen_range(1usize..=10),
                    tag: tag_kind * TAG_BASE + i as u64,
                },
            }
        })
        .collect()
}

/// The main storm: ≥2000 queries with ~15% injected faults across 4
/// workers and 4 submitter threads, with a concurrent fold-in mutator.
#[test]
fn fault_storm_every_submission_resolves_typed() {
    let seed = chaos_seed();
    let total = storm_volume();
    let td = corpus(seed);
    let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let n_terms = index.n_terms();
    assert!(matches!(index.build_status(), BuildStatus::Full));

    let config = EngineConfig {
        workers: 4,
        // Large enough that admission never sheds: outcome counts per
        // kind must be exact for the bookkeeping assertions below.
        queue_capacity: 4096,
        deadline: Some(Duration::from_secs(10)),
        soft_deadline: None,
        fault_hook: Some(Arc::new(|tag| match tag / TAG_BASE {
            TAG_SLOW => std::thread::sleep(Duration::from_millis(2)),
            TAG_POISON => panic!("chaos: poisoned scorer (tag {tag})"),
            _ => {}
        })),
        // The hook disables coalescing anyway; the storm's accounting
        // (one respawn per poisoned query) is strictly per-query.
        max_batch: 1,
    };
    let engine = Arc::new(QueryEngine::with_fallback(index, &td, config));

    let storm = generate_storm(seed, total, n_terms);
    let expected = |k: Kind| storm.iter().filter(|q| q.kind == k).count() as u64;
    let (n_normal, n_nan, n_oor, n_slow, n_poison) = (
        expected(Kind::Normal),
        expected(Kind::NanWeight),
        expected(Kind::OutOfRange),
        expected(Kind::Slow),
        expected(Kind::Poison),
    );
    assert!(n_poison > 0 && n_nan > 0 && n_oor > 0 && n_slow > 0);

    // Concurrent mutator: folds fresh documents in while the storm runs.
    const MUTATOR_DOCS: usize = 32;
    let mutator = {
        let engine = Arc::clone(&engine);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(1));
        let docs: Vec<Vec<(usize, f64)>> = (0..MUTATOR_DOCS)
            .map(|_| {
                (0..rng.gen_range(3usize..8))
                    .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
                    .collect()
            })
            .collect();
        std::thread::spawn(move || {
            for doc in docs {
                engine.add_document(&doc).expect("valid fold-in");
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };

    // 4 submitter threads race over disjoint chunks of the storm; each
    // records the (kind, outcome) of every ticket it waited on.
    let storm = Arc::new(storm);
    let chunk = storm.len().div_ceil(4);
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let storm = Arc::clone(&storm);
            std::thread::spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(storm.len());
                let mut tally = [0u64; 5]; // full, degraded, bad, internal, other
                for sq in &storm[lo..hi] {
                    match engine.query(sq.query.clone()) {
                        Ok(QueryResponse::Ranked(_)) => {
                            assert!(
                                matches!(sq.kind, Kind::Normal | Kind::Slow),
                                "{:?} query answered full-fidelity",
                                sq.kind
                            );
                            tally[0] += 1;
                        }
                        Ok(QueryResponse::Degraded { .. }) => tally[1] += 1,
                        Err(QueryError::BadQuery(_)) => {
                            assert!(
                                matches!(sq.kind, Kind::NanWeight | Kind::OutOfRange),
                                "{:?} query rejected as BadQuery",
                                sq.kind
                            );
                            tally[2] += 1;
                        }
                        Err(QueryError::Internal { detail }) => {
                            assert_eq!(sq.kind, Kind::Poison, "unexpected internal: {detail}");
                            assert!(detail.contains("poisoned scorer"), "{detail}");
                            tally[3] += 1;
                        }
                        Err(other) => {
                            panic!("{:?} query hit unexpected error {other:?}", sq.kind)
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut tally = [0u64; 5];
    for handle in submitters {
        let t = handle.join().expect("submitter thread must not panic");
        for (acc, x) in tally.iter_mut().zip(t) {
            *acc += x;
        }
    }
    mutator.join().expect("mutator thread must not panic");

    // Exact per-kind accounting: the storm is deterministic and nothing
    // was shed or timed out, so every class lands where it must.
    assert_eq!(tally[0], n_normal + n_slow, "full-fidelity completions");
    assert_eq!(tally[1], 0, "healthy index, no soft deadline: no degrades");
    assert_eq!(tally[2], n_nan + n_oor, "typed BadQuery rejections");
    assert_eq!(tally[3], n_poison, "isolated panics");

    let s = engine.stats();
    assert!(s.consistent(), "books must balance at quiescence:\n{s:?}");
    assert_eq!(s.submitted, total as u64);
    assert_eq!(s.shed, 0);
    assert_eq!(s.timed_out, 0);
    assert_eq!(s.completed_full, n_normal + n_slow);
    assert_eq!(s.bad_query, n_nan + n_oor);
    assert_eq!(s.internal, n_poison);
    assert_eq!(
        s.worker_respawns, n_poison,
        "each poisoned query retires exactly one worker incarnation"
    );
    assert_eq!(s.docs_added, MUTATOR_DOCS as u64);
    assert!(s.completed_full > 0);
    assert_eq!(s.latency.iter().sum::<u64>(), s.resolved());
}

/// A deliberately slow query must time out while concurrent fast queries
/// still complete at full fidelity (LSI space).
#[test]
fn slow_query_times_out_while_fast_queries_complete() {
    let td = corpus(7);
    let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let config = EngineConfig {
        workers: 2,
        queue_capacity: 64,
        deadline: Some(Duration::from_millis(100)),
        soft_deadline: None,
        fault_hook: Some(Arc::new(|tag| {
            if tag / TAG_BASE == TAG_SLOW {
                std::thread::sleep(Duration::from_millis(400));
            }
        })),
        max_batch: 1,
    };
    let engine = QueryEngine::with_fallback(index, &td, config);

    let slow = engine
        .submit(Query {
            terms: vec![(0, 1.0)],
            top_k: 5,
            tag: TAG_SLOW * TAG_BASE,
        })
        .unwrap();
    // While the slow query burns its worker, the other worker keeps
    // serving fast queries at full fidelity.
    for _ in 0..10 {
        let resp = engine
            .query(Query::new(vec![(1, 1.0), (2, 0.5)], 5))
            .unwrap();
        assert!(
            matches!(resp, QueryResponse::Ranked(_)),
            "fast queries must stay in LSI space"
        );
    }
    assert_eq!(slow.wait(), Err(QueryError::DeadlineExceeded));
    let s = engine.stats();
    assert_eq!(s.timed_out, 1);
    assert_eq!(s.completed_full, 10);
    assert!(s.consistent());
}

/// Overload storm: a tiny queue with a deliberately slow single worker
/// must shed with `Overloaded` and the books must still balance.
#[test]
fn overload_storm_sheds_typed_and_books_balance() {
    let td = corpus(8);
    let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let config = EngineConfig {
        workers: 1,
        queue_capacity: 2,
        deadline: None,
        soft_deadline: None,
        fault_hook: Some(Arc::new(|_| {
            std::thread::sleep(Duration::from_millis(5));
        })),
        max_batch: 1,
    };
    let engine = QueryEngine::with_fallback(index, &td, config);
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..64 {
        match engine.submit(Query::new(vec![(0, 1.0)], 3)) {
            Ok(t) => tickets.push(t),
            Err(QueryError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(shed > 0, "the queue never filled");
    for t in tickets {
        t.wait().expect("admitted queries resolve Ok");
    }
    let s = engine.stats();
    assert_eq!(s.shed, shed);
    assert!(s.consistent(), "{s:?}");
}

/// A degraded-rank index answers every query through the term-space
/// fallback, explicitly marked.
#[test]
fn degraded_index_serves_marked_fallback_answers() {
    // Six copies of one document: true rank 1, requested rank 3.
    let trips: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|j| vec![(0, j, 2.0), (1, j, 1.0)])
        .collect();
    let td = TermDocumentMatrix::from_triplets(4, 6, &trips).unwrap();
    let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    assert!(matches!(index.build_status(), BuildStatus::Degraded { .. }));
    let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
    for _ in 0..16 {
        match engine.query(Query::new(vec![(0, 1.0)], 6)).unwrap() {
            QueryResponse::Degraded { hits, reason } => {
                assert_eq!(reason, DegradeReason::DegradedIndex);
                assert_eq!(hits.len(), 6, "all six duplicates share the term");
            }
            other => panic!("expected marked degraded answer, got {other:?}"),
        }
    }
    let s = engine.stats();
    assert_eq!(s.completed_degraded, 16);
    assert!(s.consistent());
}

/// An immediate soft deadline forces the term-space fallback on a healthy
/// index; the hard deadline stays comfortable so the answer still lands.
#[test]
fn soft_deadline_overrun_degrades_not_fails() {
    let td = corpus(9);
    let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let config = EngineConfig {
        workers: 2,
        queue_capacity: 64,
        deadline: Some(Duration::from_secs(30)),
        soft_deadline: Some(Duration::ZERO),
        fault_hook: None,
        max_batch: EngineConfig::default().max_batch,
    };
    let engine = QueryEngine::with_fallback(index, &td, config);
    for _ in 0..8 {
        match engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap() {
            QueryResponse::Degraded { hits, reason } => {
                assert_eq!(reason, DegradeReason::SoftDeadline);
                assert!(!hits.is_empty());
            }
            other => panic!("expected soft-deadline degrade, got {other:?}"),
        }
    }
    let s = engine.stats();
    assert_eq!(s.completed_degraded, 8);
    assert_eq!(s.timed_out, 0);
    assert!(s.consistent());
}
