//! Cross-crate property tests: invariants that hold across the whole
//! pipeline for randomized corpus configurations.

use proptest::prelude::*;

use lsi_repro::core::skew::measure_skew;
use lsi_repro::core::{LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::{TermDocumentMatrix, Weighting};
use lsi_repro::linalg::rng::seeded;

/// Strategy: a small but varied separable-corpus configuration.
fn config_strategy() -> impl Strategy<Value = (SeparableConfig, usize, u64)> {
    (
        2usize..6,   // topics
        8usize..25,  // primary terms per topic
        0.0f64..0.3, // epsilon
        30usize..80, // documents
        proptest::num::u64::ANY,
    )
        .prop_map(|(k, s, eps, m, seed)| {
            (
                SeparableConfig {
                    universe_size: k * s,
                    num_topics: k,
                    primary_terms_per_topic: s,
                    epsilon: eps,
                    min_doc_len: 40,
                    max_doc_len: 80,
                },
                m,
                seed,
            )
        })
}

fn build(config: SeparableConfig, m: usize, seed: u64) -> (TermDocumentMatrix, usize) {
    let model = SeparableModel::build(config).expect("valid random config");
    let mut rng = seeded(seed);
    let corpus = model.model().sample_corpus(m, &mut rng);
    (
        TermDocumentMatrix::from_generated(&corpus).expect("fits universe"),
        config.num_topics,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LSI always builds on sampled corpora, its singular values are sorted
    /// and nonnegative, and document representations have the right shape.
    #[test]
    fn lsi_builds_on_any_sampled_corpus((config, m, seed) in config_strategy()) {
        let (td, k) = build(config, m, seed);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(k)).expect("feasible rank");
        prop_assert_eq!(idx.rank(), k);
        prop_assert_eq!(idx.n_docs(), m);
        for w in idx.singular_values().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(idx.singular_values().iter().all(|&s| s >= 0.0));
        prop_assert!(idx.doc_representations().is_finite());
    }

    /// The skew is always a valid number in [0, 2] and document self-cosine
    /// is 1 for nonzero docs.
    #[test]
    fn skew_is_well_defined((config, m, seed) in config_strategy()) {
        let (td, k) = build(config, m, seed);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(k)).expect("feasible");
        if let Some(s) = measure_skew(idx.doc_representations(), td.topic_labels()) {
            prop_assert!(s.delta >= 0.0 && s.delta <= 2.0, "delta {}", s.delta);
        }
        prop_assert!((idx.doc_cosine(0, 0) - 1.0).abs() < 1e-9);
    }

    /// Weighting schemes never change the matrix shape or create entries
    /// out of nothing.
    #[test]
    fn weighting_preserves_support((config, m, seed) in config_strategy()) {
        let (td, _) = build(config, m, seed);
        let raw = td.counts();
        for w in Weighting::ALL {
            let applied = td.weighted(w);
            prop_assert!(applied.nnz() <= raw.nnz(), "{}", w.name());
        }
    }

    /// Query folding is linear: fold(q1 + q2) = fold(q1) + fold(q2).
    #[test]
    fn fold_in_is_linear((config, m, seed) in config_strategy()) {
        let (td, k) = build(config, m, seed);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(k)).expect("feasible");
        let q1 = vec![(0usize, 1.0), (1, 2.0)];
        let q2 = vec![(1usize, -0.5), (2, 3.0)];
        let combined = vec![(0usize, 1.0), (1, 1.5), (2, 3.0)];
        let f1 = idx.fold_in(&q1);
        let f2 = idx.fold_in(&q2);
        let fc = idx.fold_in(&combined);
        for i in 0..k {
            prop_assert!((f1[i] + f2[i] - fc[i]).abs() < 1e-9);
        }
    }

    /// Generated corpora have documents within the configured length range
    /// and all term ids in range.
    #[test]
    fn sampled_documents_respect_model((config, m, seed) in config_strategy()) {
        let model = SeparableModel::build(config).expect("valid");
        let mut rng = seeded(seed);
        let corpus = model.model().sample_corpus(m, &mut rng);
        for doc in corpus.documents() {
            prop_assert!(doc.len() >= config.min_doc_len && doc.len() <= config.max_doc_len);
            for &(t, c) in doc.counts() {
                prop_assert!(t < config.universe_size);
                prop_assert!(c >= 1);
            }
            prop_assert!(doc.topic().is_some(), "pure model labels all docs");
        }
    }
}
