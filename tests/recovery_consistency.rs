//! Recovery idempotence and convergence.
//!
//! Three invariants on top of the crash matrix: (1) recovery is
//! *idempotent* — replaying the same journal twice yields the same index
//! as replaying it once, so a crash during recovery itself is harmless;
//! (2) recovery *converges* — a checkpointed index reopened from disk is
//! bitwise identical (serialized form) to the live in-memory index it
//! snapshotted; and (3) a durable query engine under mutation load keeps
//! the same books as a plain one and recovers every acknowledged
//! mutation.

use std::path::PathBuf;

use lsi_core::{write_index, DurableIndex, LsiConfig, LsiIndex};
use lsi_ir::TermDocumentMatrix;
use lsi_serve::{EngineConfig, Query, QueryEngine};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_index() -> LsiIndex {
    let td = TermDocumentMatrix::from_triplets(
        6,
        5,
        &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
            (3, 2, 1.0),
            (3, 3, 2.0),
            (4, 3, 1.0),
            (4, 4, 2.0),
            (5, 4, 1.0),
        ],
    )
    .expect("valid triplets");
    LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("build sample index")
}

/// The serialized image is the equality witness everywhere below: two
/// indexes with identical bytes answer every query identically.
fn index_bytes(index: &LsiIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    write_index(&mut buf, index).expect("serialize");
    buf
}

/// Replaying a journal twice equals replaying it once. The journal tail
/// is deliberately left un-compacted between the two opens, so the
/// second open sees exactly the frames the first one saw.
#[test]
fn recovery_is_idempotent() {
    let dir = temp_dir("idempotent");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    d.add_document(&[(0, 1.0), (2, 0.5)]).expect("add 1");
    d.add_document(&[(1, 2.0)]).expect("add 2");
    d.add_document(&[(4, 1.0), (5, 1.0)]).expect("add 3");
    let live = index_bytes(d.index());
    drop(d);

    let (first, report1) = DurableIndex::open_durable(&snapshot).expect("first recovery");
    assert_eq!(report1.frames_replayed, 3);
    let once = index_bytes(first.index());
    drop(first);

    let (second, report2) = DurableIndex::open_durable(&snapshot).expect("second recovery");
    assert_eq!(
        report2.frames_replayed, 3,
        "recovery must not consume the journal without a checkpoint"
    );
    let twice = index_bytes(second.index());

    assert_eq!(once, live, "recovered index must equal the live one");
    assert_eq!(twice, once, "second replay must change nothing");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint + reopen converges: the reopened index is bitwise
/// identical to the live one, the journal is compacted (zero frames to
/// replay), and a third generation built on top of the reopened index
/// still matches a continuously-live twin.
#[test]
fn checkpoint_and_reopen_converge_bitwise() {
    let dir = temp_dir("converge");
    let snapshot = dir.join("index.lsix");

    // Twin A lives entirely in memory; twin B is checkpointed and
    // reopened between every mutation. They must never diverge.
    let mut twin = sample_index();
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");

    let mutations: [&[(usize, f64)]; 3] =
        [&[(0, 1.0), (3, 0.5)], &[(2, 2.0)], &[(1, 0.25), (5, 4.0)]];
    for (i, terms) in mutations.iter().enumerate() {
        twin.add_document(terms);
        d.add_document(terms).expect("durable add");
        d.checkpoint().expect("checkpoint");
        let live = index_bytes(d.index());
        drop(d);

        let (reopened, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
        assert_eq!(
            report.frames_replayed, 0,
            "round {i}: journal not compacted"
        );
        assert_eq!(
            index_bytes(reopened.index()),
            live,
            "round {i}: reopened index diverged from live"
        );
        assert_eq!(
            index_bytes(reopened.index()),
            index_bytes(&twin),
            "round {i}: durable lineage diverged from in-memory twin"
        );
        d = reopened;
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A durable query engine is observationally equivalent to a plain one:
/// same mutation stream, same query answers, consistent bookkeeping —
/// and after shutdown every acknowledged mutation survives reopening.
#[test]
fn durable_engine_matches_plain_engine_and_recovers_all_acks() {
    let dir = temp_dir("engine");
    let snapshot = dir.join("index.lsix");
    let durable = DurableIndex::create(&snapshot, sample_index()).expect("create");

    let plain = QueryEngine::new(sample_index(), EngineConfig::default());
    let engine = QueryEngine::with_durable(durable, EngineConfig::default());
    assert!(engine.is_durable() && !plain.is_durable());

    let mutations: [&[(usize, f64)]; 4] = [
        &[(0, 1.0)],
        &[(1, 1.0), (2, 1.0)],
        &[(3, 0.5), (4, 0.5)],
        &[(5, 2.0)],
    ];
    for terms in mutations {
        let a = plain.add_document(terms).expect("plain add");
        let b = engine.add_document(terms).expect("durable add");
        assert_eq!(a, b, "document ids diverged");

        let q = || Query::new(vec![(0, 1.0), (4, 0.6)], 16);
        let pa = plain.query(q()).expect("plain query");
        let pb = engine.query(q()).expect("durable query");
        assert_eq!(
            pa.hits().hits().len(),
            pb.hits().hits().len(),
            "result set sizes diverged"
        );
        for (ha, hb) in pa.hits().hits().iter().zip(pb.hits().hits()) {
            assert_eq!(ha.doc, hb.doc);
            assert_eq!(ha.score.to_bits(), hb.score.to_bits(), "scores diverged");
        }
    }

    assert!(engine.stats().consistent(), "durable engine books diverged");
    assert!(
        engine.checkpoint().expect("checkpoint"),
        "durable engines compact"
    );
    let n_live = engine.n_docs();
    plain.shutdown();
    engine.shutdown();

    let (recovered, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
    assert_eq!(recovered.index().n_docs(), n_live);
    assert_eq!(report.frames_replayed, 0, "checkpoint left frames behind");
    let _ = std::fs::remove_dir_all(&dir);
}
