//! Integration: the resilient solver driver under injected faults.
//!
//! The contract under test: for any finite corpus and any seeded fault
//! plan, `LsiIndex::build_with_injected_faults` either returns an index
//! whose factors passed post-hoc verification (with the full per-attempt
//! record attached) or a typed [`LsiError`] — never a panic, never
//! unverified garbage.

use proptest::prelude::*;

use lsi_repro::core::{BuildStatus, LsiConfig, LsiError, LsiIndex, SvdBackend};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::{TermDocumentMatrix, Weighting};
use lsi_repro::linalg::faults::{FaultKind, FaultPlan};
use lsi_repro::linalg::lanczos::LanczosOptions;

/// An E1-shaped corpus: a few well-separated topics, uniform primary
/// terms, documents sampled from the paper's separable model.
fn e1_corpus(seed: u64) -> TermDocumentMatrix {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 60,
        num_topics: 3,
        primary_terms_per_topic: 20,
        epsilon: 0.0,
        min_doc_len: 8,
        max_doc_len: 16,
    })
    .unwrap();
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    let corpus = model.model().sample_corpus(40, &mut rng);
    TermDocumentMatrix::from_generated(&corpus).unwrap()
}

fn config(rank: usize) -> LsiConfig {
    LsiConfig {
        rank,
        weighting: Weighting::Count,
        backend: SvdBackend::default(),
    }
}

#[test]
fn clean_build_reports_first_attempt_success() {
    let td = e1_corpus(11);
    let idx = LsiIndex::build(&td, config(3)).unwrap();
    let report = idx.solve_report().expect("built indexes carry a report");
    assert!(!report.fell_back(), "clean input should not need fallback");
    assert_eq!(report.requested_rank, 3);
    assert!(report.summary().contains("ok"));
}

#[test]
fn transient_nan_fault_builds_via_fallback() {
    let td = e1_corpus(12);
    // Poison applies 4..8: the first attempt's input guard passes, its
    // backend sees NaNs and fails, and a later attempt runs clean.
    let plan = FaultPlan::new(99).with_fault(FaultKind::NanInjection { probability: 0.2 }, 4, 8);
    let idx = LsiIndex::build_with_injected_faults(&td, config(3), plan).unwrap();
    let report = idx.solve_report().unwrap();
    assert!(
        report.fell_back(),
        "expected a fallback:\n{}",
        report.summary()
    );
    assert!(idx.singular_values().iter().all(|s| s.is_finite()));
    assert!(idx.singular_values()[0] > 0.0);
}

#[test]
fn persistent_breakdown_exhausts_with_typed_error() {
    let td = e1_corpus(13);
    let plan = FaultPlan::new(7).with_fault(FaultKind::Breakdown, 0, usize::MAX);
    let err = LsiIndex::build_with_injected_faults(&td, config(3), plan).unwrap_err();
    let LsiError::SolverExhausted(report) = err else {
        panic!("expected SolverExhausted, got {err}");
    };
    assert!(report.succeeded.is_none());
    assert!(
        report.attempts.len() >= 2,
        "the whole chain should have been tried:\n{}",
        report.summary()
    );
}

#[test]
fn forced_lanczos_failure_falls_back_and_matches_dense() {
    let td = e1_corpus(14);
    // A Lanczos budget far too small to converge at an unreachable
    // tolerance: the primary attempt must fail with NoConvergence and the
    // chain must recover.
    let starved = LsiConfig {
        rank: 3,
        weighting: Weighting::Count,
        backend: SvdBackend::Lanczos(LanczosOptions {
            max_steps: 2,
            tol: 1e-300,
            ..LanczosOptions::default()
        }),
    };
    let idx = LsiIndex::build(&td, starved).unwrap();
    let report = idx.solve_report().unwrap();
    assert!(report.fell_back(), "{}", report.summary());

    let reference = LsiIndex::build(
        &td,
        LsiConfig {
            rank: 3,
            weighting: Weighting::Count,
            backend: SvdBackend::Dense,
        },
    )
    .unwrap();
    for (a, b) in idx
        .singular_values()
        .iter()
        .zip(reference.singular_values())
    {
        assert!(
            (a - b).abs() <= 1e-6 * b.max(1.0),
            "fallback σ {a} vs dense reference {b}"
        );
    }
}

#[test]
fn rank_deficient_corpus_is_degraded_not_fatal() {
    // Six copies of one document: true rank 1.
    let trips: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|j| vec![(0, j, 2.0), (1, j, 1.0)])
        .collect();
    let td = TermDocumentMatrix::from_triplets(4, 6, &trips).unwrap();
    let idx = LsiIndex::build(&td, config(3)).unwrap();
    assert_eq!(
        idx.build_status(),
        BuildStatus::Degraded { achieved_rank: 1 }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded fault plan on the E1-shaped corpus: verified factors or
    /// a typed error — never a panic, never non-finite factors.
    #[test]
    fn arbitrary_fault_plans_never_panic_or_corrupt(
        fault_seed in proptest::num::u64::ANY,
        kind_sel in 0usize..4,
        from in 0usize..20,
        len in 0usize..40,
    ) {
        let kind = match kind_sel {
            0 => FaultKind::NanInjection { probability: 0.1 },
            1 => FaultKind::ZeroColumn { column: from % 40 },
            2 => FaultKind::MagnitudeSpike { scale: 1e9, probability: 0.1 },
            _ => FaultKind::Breakdown,
        };
        let until = if len == 39 { usize::MAX } else { from + len };
        let plan = FaultPlan::new(fault_seed).with_fault(kind, from, until);
        let td = e1_corpus(fault_seed % 5);
        match LsiIndex::build_with_injected_faults(&td, config(3), plan) {
            Ok(idx) => {
                // Success implies verified factors: finite, ordered spectrum.
                prop_assert!(idx.singular_values().iter().all(|s| s.is_finite()));
                for w in idx.singular_values().windows(2) {
                    prop_assert!(w[0] >= w[1]);
                }
                prop_assert!(idx.solve_report().is_some());
            }
            Err(LsiError::SolverExhausted(report)) => {
                prop_assert!(report.succeeded.is_none());
                prop_assert!(!report.attempts.is_empty());
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }
}
