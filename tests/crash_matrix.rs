//! Exhaustive crash-point matrix for the durability layer.
//!
//! The crash model: a process dies mid-write and an arbitrary *prefix* of
//! the bytes it intended to persist survives (prefixes are generated
//! through `lsi_linalg::faults::FaultyWriter`, the write-side sibling of
//! the operator fault injector). For **every** crash point of every
//! durable operation — journal append, checkpoint compaction, and the
//! atomic snapshot rewrite — reopening must yield exactly the
//! pre-mutation or the post-mutation state, verified by query-result
//! equality. Never an error, never a corrupt index.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use lsi_core::journal::{encode_frame, fresh_journal_bytes, journal_tmp_path};
use lsi_core::{
    journal_path, read_index, write_index, write_index_atomic, DurableIndex, LsiConfig, LsiIndex,
    MutationRecord,
};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::faults::{CrashPoint, FaultyWriter};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_crash_matrix_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sample_index() -> LsiIndex {
    let td = TermDocumentMatrix::from_triplets(
        6,
        5,
        &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
            (3, 2, 1.0),
            (3, 3, 2.0),
            (4, 3, 1.0),
            (4, 4, 2.0),
            (5, 4, 1.0),
        ],
    )
    .expect("valid triplets");
    LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("build sample index")
}

/// The state identity used across the whole matrix: document count plus a
/// fixed query's full ranking with bitwise scores.
fn fingerprint(index: &LsiIndex) -> (usize, Vec<(usize, u64)>) {
    let hits = index.query(&[(0, 1.0), (2, 0.7), (5, 0.3)], index.n_docs());
    (
        index.n_docs(),
        hits.hits()
            .iter()
            .map(|h| (h.doc, h.score.to_bits()))
            .collect(),
    )
}

fn reopen_fingerprint(snapshot: &Path) -> (usize, Vec<(usize, u64)>) {
    let (recovered, _report) =
        DurableIndex::open_durable(snapshot).expect("crash damage must never be an error");
    fingerprint(recovered.index())
}

/// The surviving prefix of `intended`, produced through the injected
/// writer so the crash model and the production write path agree.
fn surviving_prefix(intended: &[u8], crash: CrashPoint) -> Vec<u8> {
    let mut w = FaultyWriter::new(Vec::new(), crash);
    // Chunked like a real buffered writer; the error past the crash point
    // is the simulated death.
    let _ = intended.chunks(7).try_for_each(|c| w.write_all(c));
    w.into_inner()
}

/// Every crash point of a journal append: the on-disk journal holds the
/// pre-append bytes plus any prefix of the new frame. Recovery must yield
/// the pre-state for every proper prefix and the post-state for the
/// complete frame.
#[test]
fn journal_append_recovers_pre_or_post_at_every_byte() {
    let dir = temp_dir("append");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");

    // One committed mutation, so replay also has a frame it must keep.
    d.add_document(&[(1, 1.0), (4, 0.5)])
        .expect("committed add");
    let journal = journal_path(&snapshot);
    let base_bytes = std::fs::read(&journal).expect("read journal");
    let pre = fingerprint(d.index());

    // The mutation under test, encoded exactly as the journal would.
    let terms = vec![(0usize, 2.0f64), (3, 1.0)];
    let frame = encode_frame(&MutationRecord::FoldIn {
        seq: d.index().n_docs() as u64,
        terms: terms.clone(),
    });
    d.add_document(&terms).expect("mutation under test");
    let post = fingerprint(d.index());
    assert_ne!(pre, post, "the mutation must be observable");
    assert_eq!(
        std::fs::read(&journal).expect("read journal"),
        [base_bytes.clone(), frame.clone()].concat(),
        "append must write exactly one frame"
    );
    drop(d);

    let mut outcomes = [0usize; 2]; // [pre, post]
    for crash in CrashPoint::enumerate(frame.len()) {
        let disk = [base_bytes.clone(), surviving_prefix(&frame, crash)].concat();
        std::fs::write(&journal, &disk).expect("install crash state");
        let got = reopen_fingerprint(&snapshot);
        if crash.offset() == frame.len() as u64 {
            assert_eq!(got, post, "complete frame must recover post-state");
            outcomes[1] += 1;
        } else {
            assert_eq!(
                got,
                pre,
                "torn frame (crash at {}) must recover pre-state",
                crash.offset()
            );
            outcomes[0] += 1;
        }
    }
    assert_eq!(outcomes[0], frame.len());
    assert_eq!(outcomes[1], 1);

    // Corruption at every byte of the frame (not just truncation) also
    // recovers the pre-state: the CRC rejects the frame, replay truncates.
    for i in 0..frame.len() {
        let mut dirty = frame.clone();
        dirty[i] ^= 0xA5;
        let disk = [base_bytes.clone(), dirty].concat();
        std::fs::write(&journal, &disk).expect("install corrupt state");
        assert_eq!(
            reopen_fingerprint(&snapshot),
            pre,
            "corrupt byte {i} must recover pre-state"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every crash point of checkpoint compaction. A checkpoint is logically a
/// no-op, so every intermediate disk state — partial snapshot tmp, renamed
/// snapshot with the old journal, partial rotated-journal tmp, rotated
/// journal — must recover to exactly the live (pre == post) state.
#[test]
fn checkpoint_compaction_recovers_identical_state_at_every_byte() {
    let dir = temp_dir("checkpoint");
    let snapshot = dir.join("index.lsix");
    let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
    d.add_document(&[(0, 1.0), (3, 0.5)]).expect("add 1");
    d.add_document(&[(2, 2.0)]).expect("add 2");
    let live = fingerprint(d.index());
    let n_docs = d.index().n_docs() as u64;

    // Materialize the byte-exact artifacts checkpoint would write.
    let mut new_snapshot_bytes = Vec::new();
    write_index(&mut new_snapshot_bytes, d.index()).expect("serialize snapshot");
    let rotated_journal_bytes = fresh_journal_bytes(Some(n_docs));
    drop(d);

    let journal = journal_path(&snapshot);
    let old_snapshot_bytes = std::fs::read(&snapshot).expect("read old snapshot");
    let old_journal_bytes = std::fs::read(&journal).expect("read old journal");
    let snapshot_tmp = {
        // write_index_atomic's sibling: `<name>.tmp`.
        let mut name = snapshot.file_name().expect("file name").to_os_string();
        name.push(".tmp");
        snapshot.with_file_name(name)
    };
    let journal_tmp = journal_tmp_path(&journal);

    // Resets the directory to a given 4-file state (None = absent).
    let install = |snap: &[u8], jour: &[u8], snap_tmp: Option<&[u8]>, jour_tmp: Option<&[u8]>| {
        std::fs::write(&snapshot, snap).expect("install snapshot");
        std::fs::write(&journal, jour).expect("install journal");
        match snap_tmp {
            Some(b) => std::fs::write(&snapshot_tmp, b).expect("install snapshot tmp"),
            None => {
                let _ = std::fs::remove_file(&snapshot_tmp);
            }
        }
        match jour_tmp {
            Some(b) => std::fs::write(&journal_tmp, b).expect("install journal tmp"),
            None => {
                let _ = std::fs::remove_file(&journal_tmp);
            }
        }
    };

    // Stage 1: crash while writing the new snapshot's tmp sibling, at
    // every byte. Old snapshot and journal intact.
    for crash in CrashPoint::enumerate(new_snapshot_bytes.len()) {
        let partial = surviving_prefix(&new_snapshot_bytes, crash);
        install(
            &old_snapshot_bytes,
            &old_journal_bytes,
            Some(&partial),
            None,
        );
        assert_eq!(
            reopen_fingerprint(&snapshot),
            live,
            "stage 1 crash at {} diverged",
            crash.offset()
        );
    }

    // Stage 2: snapshot renamed (dir synced), journal not yet rotated —
    // every old frame is now covered by the snapshot and must be skipped.
    install(&new_snapshot_bytes, &old_journal_bytes, None, None);
    assert_eq!(reopen_fingerprint(&snapshot), live, "stage 2 diverged");

    // Stage 3: crash while writing the rotated journal's tmp, at every
    // byte. New snapshot + old journal still authoritative.
    for crash in CrashPoint::enumerate(rotated_journal_bytes.len()) {
        let partial = surviving_prefix(&rotated_journal_bytes, crash);
        install(
            &new_snapshot_bytes,
            &old_journal_bytes,
            None,
            Some(&partial),
        );
        assert_eq!(
            reopen_fingerprint(&snapshot),
            live,
            "stage 3 crash at {} diverged",
            crash.offset()
        );
    }

    // Stage 4: rotation complete.
    install(&new_snapshot_bytes, &rotated_journal_bytes, None, None);
    assert_eq!(reopen_fingerprint(&snapshot), live, "stage 4 diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Every crash point of the atomic snapshot rewrite itself
/// (`write_index_atomic`): a partial tmp never affects the destination,
/// and the destination flips old → new only at the rename.
#[test]
fn atomic_rewrite_recovers_pre_or_post_at_every_byte() {
    let dir = temp_dir("rewrite");
    let dest = dir.join("index.lsix");

    let old_index = sample_index();
    write_index_atomic(&dest, &old_index).expect("seed destination");
    let mut new_index = sample_index();
    new_index.add_document(&[(0, 1.0), (5, 2.0)]);
    let pre = fingerprint(&old_index);
    let post = fingerprint(&new_index);
    assert_ne!(pre, post);

    let mut new_bytes = Vec::new();
    write_index(&mut new_bytes, &new_index).expect("serialize");
    let tmp = {
        let mut name = dest.file_name().expect("file name").to_os_string();
        name.push(".tmp");
        dest.with_file_name(name)
    };

    // Crash while writing the tmp sibling, at every byte: the destination
    // still reads as the old index.
    for crash in CrashPoint::enumerate(new_bytes.len()) {
        std::fs::write(&tmp, surviving_prefix(&new_bytes, crash)).expect("install tmp");
        let mut f = std::fs::File::open(&dest).expect("open dest");
        let loaded = read_index(&mut f).expect("pre-rename dest must stay readable");
        assert_eq!(
            fingerprint(&loaded),
            pre,
            "crash at {} touched the destination",
            crash.offset()
        );
    }

    // Post-rename state: destination holds the new bytes; reads as new.
    std::fs::write(&dest, &new_bytes).expect("simulate completed rename");
    let _ = std::fs::remove_file(&tmp);
    let mut f = std::fs::File::open(&dest).expect("open dest");
    let loaded = read_index(&mut f).expect("post-rename dest must be readable");
    assert_eq!(fingerprint(&loaded), post);

    // And the next atomic writer sweeps any stale tmp and succeeds.
    std::fs::write(&tmp, &new_bytes[..new_bytes.len() / 2]).expect("stale tmp");
    write_index_atomic(&dest, &old_index).expect("rewrite over stale tmp");
    assert!(!tmp.exists(), "stale tmp swept");

    let _ = std::fs::remove_dir_all(&dir);
}
