//! Integration: the sharded scatter-gather cluster under a seeded storm.
//!
//! The cluster serving contract under test: for thousands of concurrent
//! queries — some malformed, some slow enough to trip the hedging path,
//! some that panic a shard's scorer — racing against mid-storm rebalances
//! and injected shard crashes (torn journal tails, stale rotation tmp
//! files), **every response is either complete-and-correct or honestly
//! marked degraded, never silently wrong**:
//!
//! - a `Complete` response is bitwise the unsharded reference answer;
//! - a `Degraded` response names its missing-shard count, contains no
//!   duplicate documents, and every hit it does return carries the exact
//!   score bits the reference assigns that document;
//! - everything else is a typed error (`BadQuery`, `QuorumLost`).
//!
//! After the storm every shard is reopened from disk and must reproduce
//! the cluster's document fingerprint exactly. A separate byte-exhaustive
//! matrix proves the rebalance move protocol (destination journal append
//! *before* source tombstone) recovers exactly-once visibility from every
//! crash point.
//!
//! Seed-deterministic (`SERVE_CHAOS_SEED` overrides the default);
//! `SERVE_SOAK=1` raises the volume for the CI soak run.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

use lsi_core::journal::{encode_frame, journal_tmp_path};
use lsi_core::{journal_path, BuildStatus, LsiConfig, LsiIndex, MutationRecord};
use lsi_linalg::faults::CrashPoint;
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::serve::cluster::{
    Cluster, ClusterConfig, ClusterDegradeReason, ClusterError, ClusterResponse,
};
use lsi_repro::serve::{EngineConfig, FaultHook, Query};

const DEFAULT_SEED: u64 = 20260706;

/// Tag prefixes the fault hooks key on: `tag / TAG_BASE` is the kind.
const TAG_BASE: u64 = 1_000_000;
const TAG_SLOW: u64 = 2;
const TAG_POISON: u64 = 3;

const SHARDS: usize = 4;

fn chaos_seed() -> u64 {
    std::env::var("SERVE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn storm_volume() -> usize {
    if std::env::var("SERVE_SOAK").as_deref() == Ok("1") {
        8_000
    } else {
        2_400
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsi_cluster_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// An E1-shaped corpus: well-separated topics, seed-deterministic.
fn corpus(seed: u64) -> TermDocumentMatrix {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 60,
        num_topics: 3,
        primary_terms_per_topic: 20,
        epsilon: 0.0,
        min_doc_len: 8,
        max_doc_len: 16,
    })
    .unwrap();
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    let generated = model.model().sample_corpus(40, &mut rng);
    TermDocumentMatrix::from_generated(&generated).unwrap()
}

fn bits(hits: &lsi_repro::ir::retrieval::RankedList) -> Vec<(usize, u64)> {
    hits.hits()
        .iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect()
}

/// The expected cluster fingerprint: every reference document's row bits.
fn expected_fingerprint(reference: &LsiIndex) -> BTreeMap<u64, Vec<u64>> {
    (0..reference.n_docs())
        .map(|j| {
            (
                j as u64,
                reference
                    .doc_vector(j)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect(),
            )
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Normal,
    NanWeight,
    OutOfRange,
    Slow,
    Poison,
}

struct StormQuery {
    kind: Kind,
    query: Query,
}

/// Generates the whole storm up front, mirroring `serve_chaos`'s mix.
fn generate_storm(seed: u64, total: usize, n_terms: usize) -> Vec<StormQuery> {
    let mut rng = lsi_repro::linalg::rng::seeded(seed);
    (0..total)
        .map(|i| {
            let roll = rng.gen_range(0usize..100);
            let kind = match roll {
                0..=84 => Kind::Normal,
                85..=89 => Kind::NanWeight,
                90..=94 => Kind::OutOfRange,
                95..=96 => Kind::Slow,
                _ => Kind::Poison,
            };
            let n_query_terms = rng.gen_range(1usize..=4);
            let mut terms: Vec<(usize, f64)> = (0..n_query_terms)
                .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
                .collect();
            match kind {
                Kind::NanWeight => terms[0].1 = f64::NAN,
                Kind::OutOfRange => terms[0].0 = n_terms + rng.gen_range(1usize..50),
                _ => {}
            }
            let tag_kind = match kind {
                Kind::Slow => TAG_SLOW,
                Kind::Poison => TAG_POISON,
                _ => 0,
            };
            StormQuery {
                kind,
                query: Query {
                    terms,
                    top_k: rng.gen_range(1usize..=10),
                    tag: tag_kind * TAG_BASE + i as u64,
                },
            }
        })
        .collect()
}

/// Per-shard failure personalities: slow queries sleep past the soft
/// deadline on every shard (exercising the hedge), poison queries panic
/// the scorer on exactly one shard (`tag % SHARDS`).
fn storm_hooks() -> Arc<dyn Fn(usize) -> Option<FaultHook> + Send + Sync> {
    Arc::new(|shard| {
        Some(Arc::new(move |tag: u64| match tag / TAG_BASE {
            TAG_SLOW => std::thread::sleep(Duration::from_millis(25)),
            TAG_POISON if tag as usize % SHARDS == shard => {
                panic!("chaos: poisoned shard scorer (tag {tag})");
            }
            _ => {}
        }) as FaultHook)
    })
}

fn storm_config() -> ClusterConfig {
    ClusterConfig {
        shards: SHARDS,
        engine: EngineConfig {
            workers: 2,
            // Large enough that shard admission never sheds: a shed would
            // surface as an (honest) missing shard, but the storm wants
            // its degradations to come from the injected faults.
            queue_capacity: 4096,
            deadline: None, // overridden by hard_deadline anyway
            soft_deadline: None,
            fault_hook: None,
            // Per-shard fault hooks (installed by the cluster) disable
            // coalescing anyway; keep the storm explicitly per-query.
            max_batch: 1,
        },
        soft_deadline: Some(Duration::from_millis(10)),
        hard_deadline: Duration::from_secs(5),
        breaker_threshold: 6,
        quorum: 0.5,
        assignment: None,
        fault_hooks: Some(storm_hooks()),
    }
}

/// Appends a torn garbage tail to the shard's journal and plants a stale
/// rotation `.tmp` sibling — the two kinds of on-disk residue a crash can
/// leave. Recovery must truncate the tail and sweep the tmp.
fn tear_journal_tail(snapshot: &Path, garbage: &[u8]) {
    let journal = journal_path(snapshot);
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal for tearing");
    file.write_all(garbage).expect("append torn tail");
    std::fs::write(journal_tmp_path(&journal), b"stale rotation residue").expect("plant stale tmp");
}

/// The cluster storm: ≥2400 queries with injected shard panics, slow
/// shards (hedged retries), malformed queries, mid-storm rebalances, and
/// mid-storm shard crashes with torn journals — asserting every single
/// response is complete-and-correct or honestly degraded.
#[test]
fn cluster_storm_no_response_is_silently_wrong() {
    let seed = chaos_seed();
    let total = storm_volume();
    let dir = temp_dir("storm");
    let td = corpus(seed);
    let reference = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    assert!(matches!(reference.build_status(), BuildStatus::Full));
    let n_terms = reference.n_terms();
    let expected_fp = expected_fingerprint(&reference);

    let cluster = Arc::new(Cluster::create(&reference, &dir, storm_config()).expect("create"));
    assert_eq!(cluster.fingerprint(), expected_fp);

    let storm = Arc::new(generate_storm(seed, total, n_terms));
    let n_poison = storm.iter().filter(|q| q.kind == Kind::Poison).count();
    let n_slow = storm.iter().filter(|q| q.kind == Kind::Slow).count();
    let n_bad = storm
        .iter()
        .filter(|q| matches!(q.kind, Kind::NanWeight | Kind::OutOfRange))
        .count();
    assert!(n_poison > 0 && n_slow > 0 && n_bad > 0);

    let stop = Arc::new(AtomicBool::new(false));

    // Mid-storm rebalances: a mover thread shuffles documents between
    // random shard pairs through the journaled move protocol.
    let mover = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(1));
        std::thread::spawn(move || {
            let mut moves = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let from = rng.gen_range(0..SHARDS);
                let mut to = rng.gen_range(0..SHARDS);
                if to == from {
                    to = (to + 1) % SHARDS;
                }
                let docs = cluster.shard_docs(from).expect("shard_docs");
                if !docs.is_empty() {
                    let pick = docs[rng.gen_range(0..docs.len())];
                    moves += cluster.rebalance(from, to, &[pick]).expect("rebalance");
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            moves
        })
    };

    // Mid-storm crashes: kill a random shard, tear its journal tail,
    // plant a stale rotation tmp, recover by replay — while queries and
    // moves keep flowing.
    let crasher = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let mut rng = lsi_repro::linalg::rng::seeded(seed.wrapping_add(2));
        std::thread::spawn(move || {
            let mut crashes = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let shard = rng.gen_range(0..SHARDS);
                let garbage: Vec<u8> = (0..rng.gen_range(1usize..40))
                    .map(|_| rng.gen_range(0u32..256) as u8)
                    .collect();
                let report = cluster
                    .crash_shard_with(shard, |snapshot| tear_journal_tail(snapshot, &garbage))
                    .expect("shard recovery must never fail");
                assert!(
                    report.truncated_bytes > 0,
                    "the torn tail must be detected and truncated"
                );
                crashes += 1;
                std::thread::sleep(Duration::from_millis(40));
            }
            crashes
        })
    };

    // 4 submitter threads race over disjoint chunks of the storm; every
    // response is checked against the unsharded reference.
    let chunk = storm.len().div_ceil(4);
    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let storm = Arc::clone(&storm);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(storm.len());
                let mut tally = [0u64; 4]; // complete, degraded, quorum_lost, bad
                for sq in &storm[lo..hi] {
                    match cluster.query(sq.query.clone()) {
                        Ok(ClusterResponse::Complete(hits)) => {
                            assert_ne!(sq.kind, Kind::Poison, "poisoned query answered Complete");
                            let want = reference
                                .try_query(&sq.query.terms, sq.query.top_k, None)
                                .expect("reference query");
                            assert_eq!(
                                bits(&hits),
                                bits(&want),
                                "{:?}: Complete response diverged from the reference",
                                sq.kind
                            );
                            tally[0] += 1;
                        }
                        Ok(ClusterResponse::Degraded { hits, reason }) => {
                            let ClusterDegradeReason::MissingShards(missing) = reason else {
                                panic!("full-rank shards can only degrade by absence: {reason:?}")
                            };
                            assert!(
                                (1..=2).contains(&missing),
                                "quorum 2/4 bounds missing shards, got {missing}"
                            );
                            // Honest partiality: no duplicates, and every
                            // hit carries the reference's exact score bits.
                            let full = reference
                                .try_query(&sq.query.terms, usize::MAX, None)
                                .expect("reference query");
                            let truth: BTreeMap<usize, u64> = full
                                .hits()
                                .iter()
                                .map(|h| (h.doc, h.score.to_bits()))
                                .collect();
                            assert!(hits.len() <= sq.query.top_k);
                            let mut seen = std::collections::BTreeSet::new();
                            for h in hits.hits() {
                                assert!(
                                    seen.insert(h.doc),
                                    "document {} appears twice in one response",
                                    h.doc
                                );
                                assert_eq!(
                                    truth.get(&h.doc).copied(),
                                    Some(h.score.to_bits()),
                                    "degraded response returned a wrong score for doc {}",
                                    h.doc
                                );
                            }
                            tally[1] += 1;
                        }
                        Err(ClusterError::QuorumLost {
                            answered, needed, ..
                        }) => {
                            assert!(answered < needed);
                            tally[2] += 1;
                        }
                        Err(ClusterError::BadQuery(_)) => {
                            assert!(
                                matches!(sq.kind, Kind::NanWeight | Kind::OutOfRange),
                                "{:?} query rejected as BadQuery",
                                sq.kind
                            );
                            tally[3] += 1;
                        }
                        Err(other) => panic!("{:?} query hit unexpected error {other}", sq.kind),
                    }
                }
                tally
            })
        })
        .collect();

    let mut tally = [0u64; 4];
    for handle in submitters {
        let t = handle.join().expect("submitter thread must not panic");
        for (acc, x) in tally.iter_mut().zip(t) {
            *acc += x;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let moves = mover.join().expect("mover thread must not panic");
    let crashes = crasher.join().expect("crasher thread must not panic");
    assert!(moves > 0, "the storm must include rebalances");
    assert!(crashes > 0, "the storm must include shard crashes");

    // Coordinator books balance and match the submitters' own tallies.
    let stats = cluster.stats();
    assert!(stats.consistent(), "{}", stats.table());
    assert_eq!(stats.queries, total as u64);
    assert_eq!(
        [
            stats.complete,
            stats.degraded,
            stats.quorum_lost,
            stats.bad_query
        ],
        tally,
        "coordinator counters must match observed outcomes:\n{}",
        stats.table()
    );
    assert_eq!(
        stats.bad_query as usize, n_bad,
        "typed rejections are exact"
    );
    let hedges: u64 = stats.shards.iter().map(|s| s.hedges).sum();
    let deadline_hits: u64 = stats.shards.iter().map(|s| s.deadline_hits).sum();
    assert!(hedges > 0, "slow shards must have triggered hedged retries");
    assert!(deadline_hits >= hedges);

    // Quiesced cluster: every breaker closed, the storm's moves and
    // crashes must not have changed a single visible bit.
    for shard in 0..SHARDS {
        cluster.revive(shard).expect("revive");
    }
    assert_eq!(
        cluster.fingerprint(),
        expected_fp,
        "storm altered visible state"
    );
    let probe = Query::new(vec![(0, 1.0), (7, 0.5), (23, 1.5)], reference.n_docs());
    match cluster.query(probe.clone()).expect("quiesced query") {
        ClusterResponse::Complete(hits) => {
            let want = reference
                .try_query(&probe.terms, probe.top_k, None)
                .unwrap();
            assert_eq!(bits(&hits), bits(&want));
        }
        other => panic!("quiesced cluster must answer Complete, got {other:?}"),
    }

    // Post-storm reopen: every shard recovers by replay and the cluster
    // fingerprint survives the restart bit-for-bit; the stale rotation
    // tmp files the crasher planted must all have been swept.
    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => panic!("all cluster handles must have been dropped"),
    }
    let (reopened, reports) = Cluster::open(&dir, storm_config()).expect("reopen");
    assert_eq!(reports.len(), SHARDS);
    assert_eq!(
        reopened.fingerprint(),
        expected_fp,
        "reopen fingerprint check"
    );
    match reopened.query(probe.clone()).expect("post-reopen query") {
        ClusterResponse::Complete(hits) => {
            let want = reference
                .try_query(&probe.terms, probe.top_k, None)
                .unwrap();
            assert_eq!(bits(&hits), bits(&want));
        }
        other => panic!("reopened cluster must answer Complete, got {other:?}"),
    }
    reopened.shutdown();
    let leftover_tmp: Vec<_> = std::fs::read_dir(&dir)
        .expect("read shard dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(
        leftover_tmp.is_empty(),
        "stale tmp files survived recovery: {leftover_tmp:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-exhaustive crash matrix for the rebalance move protocol. A move
/// is two journal appends — `AddVector` on the destination, then `Retire`
/// on the source. For every surviving prefix of each append, reopening
/// the cluster must yield exactly-once visibility with unchanged bits:
/// the document is on the source (move not acknowledged), on both shards
/// (interrupted between the appends — deduplicated at merge), or on the
/// destination (move complete). Never absent, never double-counted in a
/// response, never rescored.
#[test]
fn rebalance_crash_matrix_recovers_exactly_once_at_every_byte() {
    let dir = temp_dir("rebalance_matrix");
    let td = corpus(11);
    let reference = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let expected_fp = expected_fingerprint(&reference);
    let probe_terms = vec![(0usize, 1.0f64), (5, 0.5), (31, 2.0)];
    let want = reference
        .try_query(&probe_terms, reference.n_docs(), None)
        .unwrap();

    let mut config = storm_config();
    config.shards = 2;
    config.fault_hooks = None;
    let cluster = Cluster::create(&reference, &dir, config.clone()).expect("create");
    let source_docs = cluster.shard_docs(0).expect("docs");
    let dest_docs = cluster.shard_docs(1).expect("docs");
    let gid = source_docs[source_docs.len() / 2];
    let local = source_docs
        .iter()
        .position(|&g| g == gid)
        .expect("gid is on the source");
    let coords = reference.doc_vector(gid as usize).to_vec();
    cluster.shutdown();

    // The two frames the move appends, encoded exactly as the journals
    // would: destination first, then the source tombstone.
    let dest_frame = encode_frame(&MutationRecord::AddVector {
        seq: dest_docs.len() as u64,
        doc_id: gid.to_string(),
        coords,
    });
    let src_frame = encode_frame(&MutationRecord::Retire {
        seq: source_docs.len() as u64,
        doc: local as u64,
    });

    let src_journal = journal_path(&dir.join("shard-000.lsix"));
    let dest_journal = journal_path(&dir.join("shard-001.lsix"));
    let src_base = std::fs::read(&src_journal).expect("read source journal");
    let dest_base = std::fs::read(&dest_journal).expect("read destination journal");

    let check = |label: String| {
        let (cluster, _reports) = Cluster::open(&dir, config.clone()).expect("reopen");
        assert_eq!(
            cluster.fingerprint(),
            expected_fp,
            "{label}: visible bits changed"
        );
        match cluster
            .query(Query::new(probe_terms.clone(), want.len().max(1)))
            .expect("probe query")
        {
            ClusterResponse::Complete(hits) => {
                assert_eq!(bits(&hits), bits(&want), "{label}: merged answer diverged")
            }
            other => panic!("{label}: expected Complete, got {other:?}"),
        }
        cluster.shutdown();
    };

    // Phase 1: crash at every byte of the destination append (source
    // journal untouched). Incomplete prefix → doc still on source only;
    // complete frame → doc on both shards, deduplicated at merge.
    for crash in CrashPoint::enumerate(dest_frame.len()) {
        let kept = &dest_frame[..crash.offset() as usize];
        std::fs::write(&dest_journal, [dest_base.as_slice(), kept].concat())
            .expect("install crash state");
        check(format!("dest append crash at byte {}", crash.offset()));
    }

    // Phase 2: destination append complete, crash at every byte of the
    // source tombstone. Incomplete prefix → doc on both (dedup);
    // complete → moved.
    std::fs::write(
        &dest_journal,
        [dest_base.as_slice(), dest_frame.as_slice()].concat(),
    )
    .expect("install completed destination append");
    for crash in CrashPoint::enumerate(src_frame.len()) {
        let kept = &src_frame[..crash.offset() as usize];
        std::fs::write(&src_journal, [src_base.as_slice(), kept].concat())
            .expect("install crash state");
        check(format!("source tombstone crash at byte {}", crash.offset()));
    }

    // Corruption (not just truncation) of the tombstone frame also
    // recovers the dedup state: the CRC rejects the frame.
    for i in [0usize, src_frame.len() / 2, src_frame.len() - 1] {
        let mut dirty = src_frame.clone();
        dirty[i] ^= 0xA5;
        std::fs::write(
            &src_journal,
            [src_base.as_slice(), dirty.as_slice()].concat(),
        )
        .expect("install corrupt state");
        check(format!("source tombstone corrupt byte {i}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
