//! Integration: the full Section 4 pipeline — corpus model → sampling →
//! term–document matrix → rank-k LSI → angle statistics — reproduces the
//! paper's qualitative table on a scaled corpus.

use lsi_repro::core::angles::pairwise_angle_stats;
use lsi_repro::core::skew::measure_skew;
use lsi_repro::core::{LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::rng::seeded;

fn pipeline(
    config: SeparableConfig,
    m: usize,
    seed: u64,
) -> (TermDocumentMatrix, LsiIndex, Vec<Option<usize>>) {
    let model = SeparableModel::build(config).expect("valid config");
    let mut rng = seeded(seed);
    let corpus = model.model().sample_corpus(m, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits universe");
    let labels = td.topic_labels().to_vec();
    let index =
        LsiIndex::build(&td, LsiConfig::with_rank(config.num_topics)).expect("feasible rank");
    (td, index, labels)
}

#[test]
fn angle_table_shape_matches_paper() {
    let config = SeparableConfig {
        universe_size: 400,
        num_topics: 8,
        primary_terms_per_topic: 50,
        epsilon: 0.05,
        min_doc_len: 50,
        max_doc_len: 100,
    };
    let (td, index, labels) = pipeline(config, 300, 1);

    let original_rows = td.counts().transpose().to_dense_matrix();
    let original = pairwise_angle_stats(&original_rows, &labels);
    let lsi = pairwise_angle_stats(index.doc_representations(), &labels);

    let o_intra = original.intratopic.expect("intratopic pairs exist");
    let l_intra = lsi.intratopic.expect("intratopic pairs exist");
    let o_inter = original.intertopic.expect("intertopic pairs exist");
    let l_inter = lsi.intertopic.expect("intertopic pairs exist");

    // Paper: intratopic average 1.09 → 0.0177; ours must collapse ≥ 10×.
    assert!(
        l_intra.mean < o_intra.mean / 10.0,
        "collapse too weak: {} -> {}",
        o_intra.mean,
        l_intra.mean
    );
    // Paper: intertopic average 1.57 → 1.55; ours must stay near π/2.
    assert!(
        (l_inter.mean - std::f64::consts::FRAC_PI_2).abs() < 0.15,
        "intertopic mean drifted: {}",
        l_inter.mean
    );
    // Std of intertopic angles grows only modestly (paper: 0.008 → 0.15).
    assert!(l_inter.std < 0.3, "intertopic std {}", l_inter.std);
    assert!(o_inter.std < 0.1, "original intertopic std {}", o_inter.std);
}

#[test]
fn zero_epsilon_corpus_is_nearly_zero_skewed() {
    // Theorem 2: ε = 0 ⇒ 0-skewed (with high probability, finite-sample
    // fuzz allowed).
    let config = SeparableConfig {
        universe_size: 200,
        num_topics: 4,
        primary_terms_per_topic: 50,
        epsilon: 0.0,
        min_doc_len: 80,
        max_doc_len: 120,
    };
    let (_td, index, labels) = pipeline(config, 200, 2);
    let skew = measure_skew(index.doc_representations(), &labels).expect("enough docs");
    assert!(skew.delta < 0.15, "delta {} at eps=0", skew.delta);
}

#[test]
fn skew_is_order_epsilon() {
    // Theorem 3's shape: δ grows with ε but stays O(ε)-ish.
    let mut deltas = Vec::new();
    for &eps in &[0.0, 0.1, 0.25] {
        let config = SeparableConfig {
            universe_size: 200,
            num_topics: 4,
            primary_terms_per_topic: 50,
            epsilon: eps,
            min_doc_len: 80,
            max_doc_len: 120,
        };
        let (_td, index, labels) = pipeline(config, 200, 3);
        let skew = measure_skew(index.doc_representations(), &labels).expect("enough docs");
        deltas.push(skew.delta);
    }
    assert!(deltas[2] > deltas[0], "no growth with epsilon: {deltas:?}");
    assert!(deltas[2] < 0.8, "skew blew up: {deltas:?}");
}

#[test]
fn lsi_rank_matches_topic_count_spectrally() {
    // The k-th and (k+1)-th singular values should be separated for a
    // well-separated corpus — the gap condition behind Lemma 1.
    let config = SeparableConfig {
        universe_size: 300,
        num_topics: 6,
        primary_terms_per_topic: 50,
        epsilon: 0.02,
        min_doc_len: 60,
        max_doc_len: 100,
    };
    let model = SeparableModel::build(config).expect("valid");
    let mut rng = seeded(4);
    let corpus = model.model().sample_corpus(240, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits");
    // Compute a few extra triplets to inspect the spectrum around k.
    let index = LsiIndex::build(&td, LsiConfig::with_rank(8)).expect("feasible");
    let s = index.singular_values();
    let gap_ratio = s[5] / s[6];
    assert!(
        gap_ratio > 2.0,
        "σ_k/σ_(k+1) = {gap_ratio} too small; spectrum {s:?}"
    );
}
