//! Integration: bit-for-bit determinism. Every stochastic component takes a
//! seed; the same seed must produce identical artifacts across runs — the
//! property EXPERIMENTS.md's numbers depend on.

use lsi_repro::core::{LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::graph::{spectral_partition, PlantedConfig, PlantedPartition};
use lsi_repro::ir::TermDocumentMatrix;
use lsi_repro::linalg::rng::seeded;
use lsi_repro::rp::{two_step_lsi, ProjectionKind, RandomProjection};

#[test]
fn corpus_generation_is_deterministic() {
    let model = SeparableModel::build(SeparableConfig::small(3, 0.1)).unwrap();
    let a = model.model().sample_corpus(40, &mut seeded(7));
    let b = model.model().sample_corpus(40, &mut seeded(7));
    for (da, db) in a.documents().iter().zip(b.documents()) {
        assert_eq!(da.counts(), db.counts());
        assert_eq!(da.topic(), db.topic());
    }
}

#[test]
fn lsi_build_is_deterministic() {
    let model = SeparableModel::build(SeparableConfig::small(3, 0.05)).unwrap();
    let corpus = model.model().sample_corpus(50, &mut seeded(9));
    let td = TermDocumentMatrix::from_generated(&corpus).unwrap();
    let x = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    let y = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    assert_eq!(x.singular_values(), y.singular_values());
    assert_eq!(
        x.doc_representations()
            .max_abs_diff(y.doc_representations()),
        Some(0.0)
    );
}

#[test]
fn projections_and_pipelines_are_deterministic() {
    let model = SeparableModel::build(SeparableConfig::small(3, 0.05)).unwrap();
    let corpus = model.model().sample_corpus(40, &mut seeded(3));
    let td = TermDocumentMatrix::from_generated(&corpus).unwrap();

    for kind in ProjectionKind::ALL {
        let p1 = RandomProjection::new(kind, td.n_terms(), 10, 42).unwrap();
        let p2 = RandomProjection::new(kind, td.n_terms(), 10, 42).unwrap();
        assert_eq!(p1.projector().max_abs_diff(p2.projector()), Some(0.0));
    }

    let r1 = two_step_lsi(td.counts(), 3, 15, ProjectionKind::GaussianIid, 5).unwrap();
    let r2 = two_step_lsi(td.counts(), 3, 15, ProjectionKind::GaussianIid, 5).unwrap();
    assert_eq!(r1.error_sq, r2.error_sq);
    assert_eq!(r1.singular_values, r2.singular_values);
}

#[test]
fn graph_pipeline_is_deterministic() {
    let config = PlantedConfig {
        blocks: 3,
        block_size: 8,
        p_intra: 0.8,
        epsilon: 0.05,
    };
    let g1 = PlantedPartition::generate(config, &mut seeded(11));
    let g2 = PlantedPartition::generate(config, &mut seeded(11));
    assert_eq!(g1.graph.total_weight(), g2.graph.total_weight());
    let l1 = spectral_partition(&g1.graph, 3, &mut seeded(4)).unwrap();
    let l2 = spectral_partition(&g2.graph, 3, &mut seeded(4)).unwrap();
    assert_eq!(l1, l2);
}

#[test]
fn experiment_entry_points_are_deterministic() {
    // The reproduce binary's own building blocks: same seed, same numbers.
    let model = SeparableModel::build(SeparableConfig::paper_experiment()).unwrap();
    let a = model.model().sample_corpus(30, &mut seeded(20260706));
    let b = model.model().sample_corpus(30, &mut seeded(20260706));
    assert_eq!(a.to_triplets(), b.to_triplets());
}
