//! Property tests for the sharded serving tier: partition-invariance of
//! the scatter-gather answer and order-invariance of the top-k merge.
//!
//! The coordinator's contract is that sharding is invisible: for any way
//! of cutting the corpus into shards, the merged top-k is bitwise the
//! answer a single unsharded engine would give, and the merge itself
//! cannot depend on which shard replied first (replies land in
//! shard-indexed slots, so the reduction order is fixed by construction —
//! these properties pin that down against regressions).

use proptest::prelude::*;

use lsi_repro::core::{LsiConfig, LsiIndex};
use lsi_repro::corpus::{SeparableConfig, SeparableModel};
use lsi_repro::ir::{RankedList, SearchHit, TermDocumentMatrix};
use lsi_repro::linalg::rng::seeded;
use lsi_repro::serve::cluster::{merge_top_k, Cluster, ClusterConfig, ClusterResponse};
use lsi_repro::serve::{EngineConfig, Query};

fn bits(hits: &RankedList) -> Vec<(usize, u64)> {
    hits.hits()
        .iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect()
}

/// A small reference index shared by every case (building an SVD per
/// proptest case would dominate the runtime without adding coverage —
/// the variation that matters is the partitioning and the query).
fn reference() -> LsiIndex {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 48,
        num_topics: 3,
        primary_terms_per_topic: 16,
        epsilon: 0.1,
        min_doc_len: 10,
        max_doc_len: 20,
    })
    .expect("valid config");
    let mut rng = seeded(417);
    let corpus = model.model().sample_corpus(18, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).expect("fits universe");
    LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("feasible rank")
}

fn cluster_with(index: &LsiIndex, shards: usize, assignment: Vec<usize>) -> Cluster {
    Cluster::build(
        index,
        ClusterConfig {
            shards,
            assignment: Some(assignment),
            ..ClusterConfig::default()
        },
    )
    .expect("valid partitioning")
}

/// Strategy: an arbitrary shard count and an arbitrary assignment of the
/// 18 documents to those shards (shards may end up empty).
fn partition_strategy() -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1usize..=5).prop_flat_map(|shards| (Just(shards), proptest::collection::vec(0..shards, 18)))
}

fn query_strategy() -> impl Strategy<Value = (Vec<(usize, f64)>, usize)> {
    (
        proptest::collection::vec((0usize..48, 0.25f64..3.0), 1..5),
        1usize..=20,
    )
}

/// Strategy: a slot vector of shard replies with arbitrary scores, holes
/// (shards that never answered), and cross-shard duplicate documents.
fn slots_strategy() -> impl Strategy<Value = Vec<Option<Vec<SearchHit>>>> {
    let hit = (0usize..12, -2.0f64..2.0).prop_map(|(doc, score)| SearchHit { doc, score });
    let slot = (0usize..10, proptest::collection::vec(hit, 0..8))
        .prop_map(|(alive, hits)| (alive < 8).then_some(hits));
    proptest::collection::vec(slot, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every partitioning of the corpus — however many shards, however
    /// unbalanced, even with empty shards — the N-shard answer is bitwise
    /// the 1-shard answer, which is bitwise the unsharded index's answer.
    #[test]
    fn any_partitioning_answers_bitwise_like_one_shard(
        (shards, assignment) in partition_strategy(),
        (terms, top_k) in query_strategy(),
    ) {
        let index = reference();
        let want = bits(&index.try_query(&terms, top_k, None).expect("reference query"));

        let single = cluster_with(&index, 1, vec![0; 18]);
        let many = cluster_with(&index, shards, assignment);
        for cluster in [&single, &many] {
            match cluster.query(Query::new(terms.clone(), top_k)).expect("cluster query") {
                ClusterResponse::Complete(hits) => prop_assert_eq!(bits(&hits), want.clone()),
                other => prop_assert!(false, "healthy cluster degraded: {:?}", other),
            }
        }
        single.shutdown();
        many.shutdown();
    }

    /// Coalescing is invisible too: for any partitioning, any batch cap,
    /// and whatever arrival order a concurrent burst produces, every
    /// merged answer is bitwise the unsharded sequential answer.
    #[test]
    fn batched_shard_scoring_answers_bitwise_like_sequential(
        (shards, assignment) in partition_strategy(),
        max_batch in 1usize..=8,
        (terms, top_k) in query_strategy(),
    ) {
        let index = reference();
        let want = bits(&index.try_query(&terms, top_k, None).expect("reference query"));
        let cluster = Cluster::build(
            &index,
            ClusterConfig {
                shards,
                assignment: Some(assignment),
                // One worker per shard so a concurrent burst forms a real
                // backlog for the worker to coalesce (when max_batch > 1).
                engine: EngineConfig { workers: 1, max_batch, ..EngineConfig::default() },
                ..ClusterConfig::default()
            },
        )
        .expect("valid partitioning");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..4 {
                        match cluster
                            .query(Query::new(terms.clone(), top_k))
                            .expect("cluster query")
                        {
                            ClusterResponse::Complete(hits) => assert_eq!(bits(&hits), want),
                            other => panic!("healthy cluster degraded: {other:?}"),
                        }
                    }
                });
            }
        });
        cluster.shutdown();
    }

    /// The merge is a pure order-fixed reduction: permuting which slot
    /// holds which reply never changes the multiset of merged (doc, score)
    /// bits, duplicates collapse to a single best-scored entry, and the
    /// result respects `top_k` and the global ranking order.
    #[test]
    fn merge_is_invariant_to_reply_arrangement(
        slots in slots_strategy(),
        top_k in 1usize..=10,
        rotation in 0usize..6,
    ) {
        let merged = merge_top_k(&slots, top_k);

        // Rotating the slots (a reply-arrival permutation) yields the
        // same bits.
        let mut rotated = slots.clone();
        rotated.rotate_left(rotation % slots.len().max(1));
        prop_assert_eq!(bits(&merge_top_k(&rotated, top_k)), bits(&merged));

        // Duplicating a shard's reply into a fresh slot adds nothing new:
        // cross-shard duplicates collapse.
        let mut doubled = slots.clone();
        doubled.extend(slots.iter().cloned());
        prop_assert_eq!(bits(&merge_top_k(&doubled, top_k)), bits(&merged));

        // Shape invariants: bounded by top_k, no duplicate documents,
        // scores sorted descending with document id as the tiebreak.
        prop_assert!(merged.len() <= top_k);
        let docs: Vec<usize> = merged.hits().iter().map(|h| h.doc).collect();
        let mut dedup = docs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), docs.len(), "duplicate docs in merge");
        for w in merged.hits().windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc < w[1].doc)
            );
        }

        // Every merged hit is the best-scored copy of that document
        // anywhere in the replies.
        for hit in merged.hits() {
            let best = slots
                .iter()
                .flatten()
                .flatten()
                .filter(|h| h.doc == hit.doc)
                .map(|h| h.score)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(hit.score.to_bits(), best.to_bits());
        }
    }
}
