//! Integration: failure injection — degenerate inputs must produce errors
//! or defined results, never panics.

use lsi_repro::core::{BuildStatus, LsiConfig, LsiError, LsiIndex, SvdBackend};
use lsi_repro::corpus::{CorpusModel, DocumentLaw, SeparableConfig, SeparableModel, Topic};
use lsi_repro::ir::{TermDocumentMatrix, VectorSpaceIndex, Weighting};
use lsi_repro::linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_repro::linalg::svd::svd;
use lsi_repro::linalg::{CsrMatrix, Matrix};

#[test]
fn empty_corpus_rejected_cleanly() {
    let td = TermDocumentMatrix::from_triplets(10, 0, &[]).unwrap();
    assert!(matches!(
        LsiIndex::build(&td, LsiConfig::with_rank(1)),
        Err(LsiError::EmptyCorpus)
    ));
    let td2 = TermDocumentMatrix::from_triplets(0, 10, &[]).unwrap();
    assert!(matches!(
        LsiIndex::build(&td2, LsiConfig::with_rank(1)),
        Err(LsiError::EmptyCorpus)
    ));
}

#[test]
fn all_zero_matrix_is_fine_everywhere() {
    let td = TermDocumentMatrix::from_triplets(8, 6, &[]).unwrap();
    // VSM: queries return nothing.
    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::TfIdf));
    assert!(vsm.query(&[(0, 1.0)], 5).is_empty());
    // Dense SVD: all-zero singular values.
    let f = svd(&td.to_dense()).unwrap();
    assert!(f.singular_values.iter().all(|&s| s == 0.0));
    // Lanczos: zero triplets, no panic.
    let lz = lanczos_svd(td.counts(), 2, &LanczosOptions::default()).unwrap();
    assert!(lz.singular_values.iter().all(|&s| s == 0.0));
    // LSI over an all-zero corpus: builds, queries return nothing.
    let idx = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
    assert!(idx.query(&[(0, 1.0)], 3).is_empty());
}

#[test]
fn duplicate_documents_do_not_break_lsi() {
    // Identical columns ⇒ rank deficiency; k above the rank must still
    // produce a valid (zero-padded) index.
    let trips: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|j| vec![(0, j, 2.0), (1, j, 1.0)])
        .collect();
    let td = TermDocumentMatrix::from_triplets(4, 6, &trips).unwrap();
    let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
    assert!(idx.singular_values()[0] > 0.0);
    assert_eq!(idx.singular_values()[1], 0.0);
    // All documents identical ⇒ all pairwise cosines 1.
    assert!((idx.doc_cosine(0, 5) - 1.0).abs() < 1e-9);
}

#[test]
fn single_topic_corpus_works() {
    let model = SeparableModel::build(SeparableConfig {
        universe_size: 30,
        num_topics: 1,
        primary_terms_per_topic: 30,
        epsilon: 0.0,
        min_doc_len: 10,
        max_doc_len: 20,
    })
    .unwrap();
    let mut rng = lsi_repro::linalg::rng::seeded(1);
    let corpus = model.model().sample_corpus(20, &mut rng);
    let td = TermDocumentMatrix::from_generated(&corpus).unwrap();
    let idx = LsiIndex::build(&td, LsiConfig::with_rank(1)).unwrap();
    // Every pair of documents is intratopic and near-parallel.
    assert!(idx.doc_cosine(0, 1) > 0.99);
}

#[test]
fn empty_documents_are_tolerated() {
    // A document with zero terms (length law can't produce it, but raw
    // triplets can) yields a zero column.
    let td = TermDocumentMatrix::from_triplets(4, 3, &[(0, 0, 1.0), (1, 2, 1.0)]).unwrap();
    let idx = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
    // Column 1 is empty: zero representation, cosine convention 0.
    assert_eq!(idx.doc_vector(1).iter().map(|x| x * x).sum::<f64>(), 0.0);
    assert_eq!(idx.doc_cosine(0, 1), 0.0);
    // similar_docs never returns the zero doc with a positive score.
    let sims = idx.similar_docs(0, 3);
    assert!(sims.hits().iter().all(|h| h.doc != 1));
}

#[test]
fn corpus_model_validation_surfaces_errors() {
    // Universe mismatch between topic and model.
    let t = Topic::uniform("t", 5).unwrap();
    let err = CorpusModel::new(10, vec![t], vec![], DocumentLaw::pure_uniform(5, 10));
    assert!(err.is_err());
}

#[test]
fn svd_of_extreme_values_stays_finite() {
    let a = Matrix::from_fn(6, 5, |i, j| if (i + j) % 2 == 0 { 1e150 } else { 1e-150 });
    let f = svd(&a.scaled(1e-140)).unwrap(); // pre-scale to avoid overflow in products
    assert!(f.singular_values.iter().all(|s| s.is_finite()));
    let g = svd(&a.scaled(1e-160));
    assert!(g.is_ok());
}

#[test]
fn lanczos_k_larger_than_rank_pads() {
    let dense = Matrix::from_fn(10, 8, |i, j| ((i + 1) * (j + 1)) as f64); // rank 1
    let a = CsrMatrix::from_dense(&dense, 0.0);
    let f = lanczos_svd(&a, 5, &LanczosOptions::default()).unwrap();
    assert!(f.singular_values[0] > 0.0);
    for i in 1..5 {
        assert_eq!(f.singular_values[i], 0.0, "σ_{i}");
    }
}

/// One config per SVD backend, at the given rank.
fn all_backend_configs(rank: usize) -> Vec<LsiConfig> {
    [
        SvdBackend::Dense,
        SvdBackend::Lanczos(Default::default()),
        SvdBackend::Randomized(Default::default()),
    ]
    .into_iter()
    .map(|backend| LsiConfig {
        rank,
        weighting: Weighting::Count,
        backend,
    })
    .collect()
}

#[test]
fn nan_counts_yield_typed_errors_on_every_backend() {
    // CSR accepts NaN values; the solver's input guards must catch them
    // before any backend runs, on every starting backend.
    let td = TermDocumentMatrix::from_triplets(5, 4, &[(0, 0, f64::NAN), (1, 1, 1.0), (2, 2, 3.0)])
        .unwrap();
    for cfg in all_backend_configs(2) {
        let name = cfg.backend.name();
        match LsiIndex::build(&td, cfg) {
            Err(LsiError::SolverExhausted(report)) => {
                assert!(report.succeeded.is_none(), "backend {name}");
                assert!(!report.attempts.is_empty(), "backend {name}");
            }
            Ok(_) => panic!("backend {name} accepted NaN counts"),
            Err(e) => panic!("backend {name}: unexpected error kind {e}"),
        }
    }
}

#[test]
fn all_zero_matrix_builds_on_every_backend() {
    let td = TermDocumentMatrix::from_triplets(8, 6, &[]).unwrap();
    for cfg in all_backend_configs(2) {
        let name = cfg.backend.name();
        let idx = LsiIndex::build(&td, cfg).unwrap_or_else(|e| panic!("backend {name}: {e}"));
        assert!(
            idx.singular_values().iter().all(|&s| s == 0.0),
            "backend {name}"
        );
        assert!(idx.query(&[(0, 1.0)], 3).is_empty(), "backend {name}");
        assert_eq!(
            idx.build_status(),
            BuildStatus::Degraded { achieved_rank: 0 },
            "backend {name}"
        );
    }
}

#[test]
fn duplicate_documents_degrade_gracefully_on_every_backend() {
    let trips: Vec<(usize, usize, f64)> = (0..6)
        .flat_map(|j| vec![(0, j, 2.0), (1, j, 1.0)])
        .collect();
    let td = TermDocumentMatrix::from_triplets(4, 6, &trips).unwrap();
    for cfg in all_backend_configs(3) {
        let name = cfg.backend.name();
        let idx = LsiIndex::build(&td, cfg).unwrap_or_else(|e| panic!("backend {name}: {e}"));
        assert!(idx.singular_values()[0] > 0.0, "backend {name}");
        assert_eq!(
            idx.build_status(),
            BuildStatus::Degraded { achieved_rank: 1 },
            "backend {name}"
        );
        assert!((idx.doc_cosine(0, 5) - 1.0).abs() < 1e-9, "backend {name}");
    }
}

#[test]
fn rank_above_true_rank_pads_on_every_backend() {
    // Rank-2 matrix, rank-4 request: two live triplets, two zero-padded.
    let td = TermDocumentMatrix::from_triplets(
        6,
        5,
        &[
            (0, 0, 3.0),
            (1, 0, 1.0),
            (2, 1, 2.0),
            (0, 2, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
        ],
    )
    .unwrap();
    for cfg in all_backend_configs(4) {
        let name = cfg.backend.name();
        let idx = LsiIndex::build(&td, cfg).unwrap_or_else(|e| panic!("backend {name}: {e}"));
        let sv = idx.singular_values();
        assert!(sv[0] > 0.0 && sv[1] > 0.0, "backend {name}: {sv:?}");
        assert_eq!(sv[2], 0.0, "backend {name}: {sv:?}");
        assert_eq!(sv[3], 0.0, "backend {name}: {sv:?}");
        assert_eq!(
            idx.build_status(),
            BuildStatus::Degraded { achieved_rank: 2 },
            "backend {name}"
        );
    }
}

#[test]
fn oov_queries_are_silent_not_fatal() {
    let td = TermDocumentMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
    let idx = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
    assert!(idx.query(&[(999, 1.0)], 5).is_empty());
    let vsm = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
    assert!(vsm.query(&[(999, 1.0)], 5).is_empty());
}
