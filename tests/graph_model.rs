//! Integration: Theorem 6 — spectral recovery of planted high-conductance
//! subgraphs, and the conductance machinery supporting it.

use lsi_repro::graph::{
    adjusted_rand_index, conductance_of_set, min_conductance_exhaustive, spectral_partition,
    PlantedConfig, PlantedPartition, WeightedGraph,
};
use lsi_repro::linalg::rng::seeded;

#[test]
fn planted_blocks_recovered_across_sizes() {
    for &(blocks, size) in &[(2usize, 8usize), (4, 10), (8, 12)] {
        let planted = PlantedPartition::generate(
            PlantedConfig {
                blocks,
                block_size: size,
                p_intra: 0.85,
                epsilon: 0.03,
            },
            &mut seeded(blocks as u64 * 100 + size as u64),
        );
        let labels = spectral_partition(&planted.graph, blocks, &mut seeded(999)).expect("valid k");
        let ari = adjusted_rand_index(&labels, &planted.labels);
        assert!(ari > 0.95, "blocks={blocks} size={size}: ARI {ari} too low");
    }
}

#[test]
fn recovery_threshold_behaviour() {
    // ARI should be ≈ 1 for small ε and drop substantially by ε ≈ 2.
    let mut aris = Vec::new();
    for &eps in &[0.01f64, 0.1, 1.0, 4.0] {
        let planted = PlantedPartition::generate(
            PlantedConfig {
                blocks: 3,
                block_size: 12,
                p_intra: 0.85,
                epsilon: eps,
            },
            &mut seeded((eps * 1000.0) as u64),
        );
        let labels = spectral_partition(&planted.graph, 3, &mut seeded(7)).expect("valid k");
        aris.push(adjusted_rand_index(&labels, &planted.labels));
    }
    assert!(aris[0] > 0.95, "clean case failed: {aris:?}");
    assert!(
        aris[3] < aris[0],
        "no degradation at heavy leakage: {aris:?}"
    );
}

#[test]
fn theorem6_hypothesis_is_checkable() {
    // The generator's instances actually satisfy the theorem's hypothesis:
    // high internal conductance, bounded leakage.
    let planted = PlantedPartition::generate(
        PlantedConfig {
            blocks: 3,
            block_size: 10,
            p_intra: 0.9,
            epsilon: 0.05,
        },
        &mut seeded(3),
    );
    let c = planted
        .min_block_conductance()
        .expect("blocks small enough");
    assert!(c > 1.0, "internal conductance {c}");
    let leak = planted.measured_leakage();
    assert!(leak < 0.2, "leakage {leak}");
}

#[test]
fn conductance_identifies_the_weak_cut() {
    // A graph of two cliques with a weak bridge: the minimum-conductance
    // cut is exactly the bridge.
    let mut g = WeightedGraph::new(8);
    for i in 0..4 {
        for j in i + 1..4 {
            g.add_edge(i, j, 1.0);
            g.add_edge(i + 4, j + 4, 1.0);
        }
    }
    g.add_edge(0, 4, 0.2);
    let exact = min_conductance_exhaustive(&g, 20).expect("small graph");
    let planted_cut: Vec<bool> = (0..8).map(|v| v < 4).collect();
    let planted_phi = conductance_of_set(&g, &planted_cut).expect("nontrivial");
    assert!((exact - planted_phi).abs() < 1e-12);
    assert!((planted_phi - 0.2 / 4.0).abs() < 1e-12);
}

#[test]
fn spectral_partition_is_deterministic_given_seeds() {
    let planted = PlantedPartition::generate(
        PlantedConfig {
            blocks: 3,
            block_size: 8,
            p_intra: 0.8,
            epsilon: 0.05,
        },
        &mut seeded(21),
    );
    let a = spectral_partition(&planted.graph, 3, &mut seeded(5)).unwrap();
    let b = spectral_partition(&planted.graph, 3, &mut seeded(5)).unwrap();
    assert_eq!(a, b);
}
