//! Okapi BM25 — the stronger classical baseline.
//!
//! The paper compares LSI against "conventional vector-based methods"; a
//! modern reader will want the comparison against BM25 too, since it is the
//! lexical baseline that actually shipped. Like plain VSM it cannot bridge
//! synonyms (no shared term, no score), which is exactly the axis the
//! paper's theory predicts LSI wins on — the retrieval-quality integration
//! test checks that shape against this implementation.

use lsi_linalg::{CsrMatrix, LinearOperator};

use crate::retrieval::{RankedList, SearchHit};

/// BM25 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k₁`); typical range 1.2–2.0.
    pub k1: f64,
    /// Length normalization strength (`b`) in `[0, 1]`.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A BM25 index over a raw **count** term–document matrix (rows = terms).
#[derive(Debug, Clone)]
pub struct Bm25Index {
    /// Postings per term: `(doc, term_frequency)`.
    postings: Vec<Vec<(usize, f64)>>,
    /// IDF per term, Lucene form `ln(1 + (N − df + 0.5)/(df + 0.5))` —
    /// strictly positive, so ubiquitous terms contribute little rather
    /// than the negative scores the raw Robertson–Sparck Jones form gives.
    idf: Vec<f64>,
    /// Precomputed length-normalization denominator term per document:
    /// `k1 · (1 − b + b · |d| / avgdl)`.
    doc_norm: Vec<f64>,
    params: Bm25Params,
}

impl Bm25Index {
    /// Builds from raw counts.
    pub fn build(counts: &CsrMatrix, params: Bm25Params) -> Self {
        let n_terms = counts.nrows();
        let n_docs = counts.ncols();

        let mut postings = Vec::with_capacity(n_terms);
        let mut doc_len = vec![0.0; n_docs];
        let mut idf = Vec::with_capacity(n_terms);
        for t in 0..n_terms {
            let plist: Vec<(usize, f64)> = counts.row_entries(t).collect();
            for &(d, tf) in &plist {
                doc_len[d] += tf;
            }
            let df = plist.len() as f64;
            idf.push((1.0 + (n_docs as f64 - df + 0.5) / (df + 0.5)).ln());
            postings.push(plist);
        }
        let total: f64 = doc_len.iter().sum();
        let avg_len = if n_docs > 0 {
            (total / n_docs as f64).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        let Bm25Params { k1, b } = params;
        let doc_norm = doc_len
            .iter()
            .map(|&len| k1 * (1.0 - b + b * len / avg_len))
            .collect();

        Bm25Index {
            postings,
            idf,
            doc_norm,
            params,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.doc_norm.len()
    }

    /// Ranked retrieval for a bag of query terms (`(term, query weight)`;
    /// the weight multiplies the term's contribution, 1.0 for plain
    /// queries). Only documents sharing at least one query term score.
    pub fn query(&self, terms: &[(usize, f64)], top_k: usize) -> RankedList {
        let k1 = self.params.k1;
        let mut scores = vec![0.0f64; self.n_docs()];
        let mut touched = vec![false; self.n_docs()];
        for &(t, qw) in terms {
            let Some(plist) = self.postings.get(t) else {
                continue;
            };
            if qw == 0.0 {
                continue;
            }
            let idf = self.idf[t]; // strictly positive by construction
            for &(d, tf) in plist {
                scores[d] += qw * idf * (tf * (k1 + 1.0)) / (tf + self.doc_norm[d]);
                touched[d] = true;
            }
        }
        let hits: Vec<SearchHit> = (0..self.n_docs())
            .filter(|&d| touched[d])
            .map(|d| SearchHit {
                doc: d,
                score: scores[d],
            })
            .collect();
        RankedList::from_hits(hits).truncated(top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> Bm25Index {
        // 3 terms × 4 docs. Term 0 is rare (doc 0 only); term 1 is common.
        let counts = CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 3.0),
                (1, 0, 1.0),
                (1, 1, 2.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 5.0),
            ],
        )
        .unwrap();
        Bm25Index::build(&counts, Bm25Params::default())
    }

    #[test]
    fn rare_terms_score_higher_than_common() {
        let idx = index();
        let rare = idx.query(&[(0, 1.0)], 4);
        let common = idx.query(&[(1, 1.0)], 4);
        assert_eq!(rare.hits()[0].doc, 0);
        assert!(
            rare.hits()[0].score > common.hits()[0].score,
            "rare {} vs common {}",
            rare.hits()[0].score,
            common.hits()[0].score
        );
    }

    #[test]
    fn ubiquitous_terms_contribute_little_but_positively() {
        // Term 1 appears in all 4 docs: idf = ln(1 + 0.5/4.5), small but
        // positive (no negative-score pathology).
        let idx = index();
        let r = idx.query(&[(1, 1.0)], 4);
        assert_eq!(r.len(), 4);
        assert!(r.hits().iter().all(|h| h.score > 0.0), "{r:?}");
        // Doc 1 (tf 2, short) outranks doc 0 (tf 1, longer).
        assert_eq!(r.hits()[0].doc, 1, "{r:?}");
    }

    #[test]
    fn tf_saturates() {
        // Doubling tf must increase the score by less than 2x (k1 saturation).
        let a = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let idx = Bm25Index::build(&a, Bm25Params::default());
        let r = idx.query(&[(0, 1.0)], 3);
        let s: std::collections::HashMap<usize, f64> =
            r.hits().iter().map(|h| (h.doc, h.score)).collect();
        assert!(s[&1] > s[&0]);
        assert!(s[&1] < 2.0 * s[&0], "no saturation: {s:?}");
    }

    #[test]
    fn length_normalization_penalizes_long_docs() {
        // Same tf, one doc padded with another term.
        let a =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 1, 2.0), (1, 1, 20.0), (2, 2, 1.0)])
                .unwrap();
        let idx = Bm25Index::build(&a, Bm25Params::default());
        let r = idx.query(&[(0, 1.0)], 3);
        assert_eq!(r.hits()[0].doc, 0, "short doc should win: {r:?}");
    }

    #[test]
    fn oov_and_empty_queries() {
        let idx = index();
        assert!(idx.query(&[(99, 1.0)], 3).is_empty());
        assert!(idx.query(&[], 3).is_empty());
    }

    #[test]
    fn empty_corpus() {
        let idx = Bm25Index::build(&CsrMatrix::zeros(3, 0), Bm25Params::default());
        assert_eq!(idx.n_docs(), 0);
        assert!(idx.query(&[(0, 1.0)], 3).is_empty());
    }
}
