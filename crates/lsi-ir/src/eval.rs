//! Retrieval-quality evaluation: precision, recall, average precision, MAP.
//!
//! The paper's headline claim is that LSI improves "precision and recall in
//! standard collections and query workloads" over plain vector-space
//! retrieval; this harness is what the integration tests and benchmarks use
//! to check that the claim's *shape* holds on our synthetic workloads.

use std::collections::HashSet;

/// Relevance judgments for one query: the set of relevant document ids.
#[derive(Debug, Clone, Default)]
pub struct Judgments {
    relevant: HashSet<usize>,
}

impl Judgments {
    /// Builds from a list of relevant document ids.
    pub fn new(relevant: impl IntoIterator<Item = usize>) -> Self {
        Judgments {
            // lsi-lint: allow(D3-hasher-order, "iterates the caller-supplied sequence, not the HashSet field it shadows")
            relevant: relevant.into_iter().collect(),
        }
    }

    /// Number of relevant documents.
    pub fn n_relevant(&self) -> usize {
        self.relevant.len()
    }

    /// Is `doc` relevant?
    pub fn is_relevant(&self, doc: usize) -> bool {
        self.relevant.contains(&doc)
    }
}

/// Precision at cutoff `k`: fraction of the top `k` ranked docs that are
/// relevant. Returns `0.0` when `k == 0`. Duplicate occurrences of a
/// relevant document are counted once (a ranking should not be rewarded for
/// repeating itself).
pub fn precision_at(ranking: &[usize], judgments: &Judgments, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let mut seen = HashSet::new();
    let hits = ranking
        .iter()
        .take(k)
        .filter(|d| judgments.is_relevant(**d) && seen.insert(**d))
        .count();
    hits as f64 / k.min(ranking.len()).max(1) as f64
}

/// Recall at cutoff `k`: fraction of all relevant docs found in the top `k`.
/// Returns `0.0` when there are no relevant documents. Duplicates count
/// once, so recall never exceeds 1.
pub fn recall_at(ranking: &[usize], judgments: &Judgments, k: usize) -> f64 {
    let total = judgments.n_relevant();
    if total == 0 {
        return 0.0;
    }
    let mut seen = HashSet::new();
    let hits = ranking
        .iter()
        .take(k)
        .filter(|d| judgments.is_relevant(**d) && seen.insert(**d))
        .count();
    hits as f64 / total as f64
}

/// Average precision: the mean of precision values at each relevant rank,
/// normalized by the total number of relevant documents (uninterpolated
/// AP). Only a relevant document's **first** occurrence scores.
pub fn average_precision(ranking: &[usize], judgments: &Judgments) -> f64 {
    let total = judgments.n_relevant();
    if total == 0 {
        return 0.0;
    }
    let mut seen = HashSet::new();
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, doc) in ranking.iter().enumerate() {
        if judgments.is_relevant(*doc) && seen.insert(*doc) {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / total as f64
}

/// Mean average precision over a query workload of `(ranking, judgments)`.
pub fn mean_average_precision(runs: &[(Vec<usize>, Judgments)]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(r, j)| average_precision(r, j))
        .sum::<f64>()
        / runs.len() as f64
}

/// 11-point interpolated precision: precision interpolated at recall levels
/// `0.0, 0.1, …, 1.0` — the classical IR summary curve.
pub fn eleven_point_precision(ranking: &[usize], judgments: &Judgments) -> [f64; 11] {
    let total = judgments.n_relevant();
    let mut out = [0.0f64; 11];
    if total == 0 {
        return out;
    }
    // Precision/recall after each rank (first occurrences only).
    let mut points: Vec<(f64, f64)> = Vec::new(); // (recall, precision)
    let mut seen = HashSet::new();
    let mut hits = 0usize;
    for (rank, doc) in ranking.iter().enumerate() {
        if judgments.is_relevant(*doc) && seen.insert(*doc) {
            hits += 1;
            points.push((hits as f64 / total as f64, hits as f64 / (rank + 1) as f64));
        }
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let level = i as f64 / 10.0;
        *slot = points
            .iter()
            .filter(|&&(r, _)| r >= level - 1e-12)
            .map(|&(_, p)| p)
            .fold(0.0, f64::max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(rel: &[usize]) -> Judgments {
        Judgments::new(rel.iter().copied())
    }

    #[test]
    fn precision_and_recall_basic() {
        let ranking = vec![3, 1, 4, 1, 5]; // doc ids
        let jd = j(&[3, 4]);
        assert!((precision_at(&ranking, &jd, 1) - 1.0).abs() < 1e-15);
        assert!((precision_at(&ranking, &jd, 2) - 0.5).abs() < 1e-15);
        assert!((precision_at(&ranking, &jd, 3) - 2.0 / 3.0).abs() < 1e-15);
        assert!((recall_at(&ranking, &jd, 1) - 0.5).abs() < 1e-15);
        assert!((recall_at(&ranking, &jd, 3) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn precision_k_zero_and_empty() {
        let jd = j(&[1]);
        assert_eq!(precision_at(&[], &jd, 5), 0.0);
        assert_eq!(precision_at(&[1], &jd, 0), 0.0);
        assert_eq!(recall_at(&[1, 2], &j(&[]), 2), 0.0);
    }

    #[test]
    fn average_precision_perfect_ranking() {
        let jd = j(&[0, 1]);
        assert!((average_precision(&[0, 1, 2, 3], &jd) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn average_precision_worst_case_ordering() {
        let jd = j(&[2, 3]);
        // Relevant docs at ranks 3 and 4: AP = (1/3 + 2/4)/2.
        let ap = average_precision(&[0, 1, 2, 3], &jd);
        assert!((ap - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-15);
    }

    #[test]
    fn duplicate_docs_count_once() {
        // A degenerate ranking repeating one relevant doc must not inflate
        // any metric (caught originally by the property suite).
        let jd = j(&[3]);
        let ranking = vec![3, 3, 3];
        assert!((average_precision(&ranking, &jd) - 1.0).abs() < 1e-15);
        assert!((recall_at(&ranking, &jd, 3) - 1.0).abs() < 1e-15);
        assert!((precision_at(&ranking, &jd, 3) - 1.0 / 3.0).abs() < 1e-15);
        let pts = eleven_point_precision(&ranking, &jd);
        assert!(pts.iter().all(|&p| p <= 1.0));
    }

    #[test]
    fn average_precision_missing_relevant_penalized() {
        let jd = j(&[0, 9]); // doc 9 never retrieved
        let ap = average_precision(&[0, 1], &jd);
        assert!((ap - 0.5).abs() < 1e-15);
    }

    #[test]
    fn map_averages_queries() {
        let runs = vec![
            (vec![0, 1], j(&[0])), // AP 1.0
            (vec![1, 0], j(&[0])), // AP 0.5
        ];
        assert!((mean_average_precision(&runs) - 0.75).abs() < 1e-15);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn eleven_point_is_monotone_nonincreasing() {
        let ranking = vec![0, 5, 1, 6, 2, 7, 3, 8, 4, 9];
        let jd = j(&[0, 1, 2, 3, 4]);
        let pts = eleven_point_precision(&ranking, &jd);
        for w in pts.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "{pts:?}");
        }
        // Recall level 0 precision is max precision anywhere = 1.0 (rank 1 hit).
        assert!((pts[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn eleven_point_no_relevant() {
        let pts = eleven_point_precision(&[0, 1], &j(&[]));
        assert!(pts.iter().all(|&p| p == 0.0));
    }
}
