#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vector-space information-retrieval substrate.
//!
//! The paper's baseline is "conventional vector-based methods": documents as
//! vectors in term space, cosine-ranked retrieval. This crate provides that
//! baseline plus everything LSI sits on top of:
//!
//! * [`text`] — tokenization and in-memory text documents (for the
//!   examples; the experiments work directly on generated term ids).
//! * [`dictionary`] — term ↔ id interning.
//! * [`term_doc`] — building the `n × m` term–document matrix (terms are
//!   rows, documents are columns, matching the paper's convention) from a
//!   generated corpus or tokenized text.
//! * [`weighting`] — the entry transforms of §2 ("0-1, frequency, etc."):
//!   binary, raw counts, log-tf, tf-idf, and log-entropy.
//! * [`retrieval`] — cosine-ranked retrieval through an inverted index, and
//!   dense retrieval in a projected (LSI) space.
//! * [`eval`] — precision/recall/MAP evaluation harness.

pub mod bm25;
pub mod dictionary;
pub mod eval;
pub mod retrieval;
pub mod term_doc;
pub mod text;
pub mod weighting;

pub use bm25::{Bm25Index, Bm25Params};
pub use dictionary::Dictionary;
pub use retrieval::{RankedList, SearchHit, VectorSpaceIndex};
pub use term_doc::TermDocumentMatrix;
pub use weighting::Weighting;
