//! Cosine-ranked vector-space retrieval — the "conventional vector-based
//! method" the paper uses as its baseline.

use lsi_linalg::{CsrMatrix, LinearOperator};

/// One retrieved document with its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document (column) index.
    pub doc: usize,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub score: f64,
}

/// A score-descending ranked result list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankedList {
    hits: Vec<SearchHit>,
}

impl RankedList {
    /// Builds from unordered hits, sorting by descending score (ties broken
    /// by ascending doc id for determinism).
    pub fn from_hits(mut hits: Vec<SearchHit>) -> Self {
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                // lsi-lint: allow(E1-panic-policy, "invariant: cosine scores of finite vectors are finite")
                .expect("scores are finite")
                .then(a.doc.cmp(&b.doc))
        });
        RankedList { hits }
    }

    /// The hits, best first.
    pub fn hits(&self) -> &[SearchHit] {
        &self.hits
    }

    /// Document ids in rank order.
    pub fn doc_ids(&self) -> Vec<usize> {
        self.hits.iter().map(|h| h.doc).collect()
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when no documents matched.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Keeps only the top `k`.
    pub fn truncated(mut self, k: usize) -> Self {
        self.hits.truncate(k);
        self
    }
}

/// An inverted-index cosine retriever over a weighted term–document matrix.
///
/// The index stores, per term, the posting list of `(doc, weight)` pairs;
/// query scoring touches only the postings of the query's terms — the
/// standard sparse VSM evaluation strategy.
///
/// # Examples
///
/// ```
/// use lsi_ir::retrieval::VectorSpaceIndex;
/// use lsi_linalg::CsrMatrix;
///
/// let weighted = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
/// let index = VectorSpaceIndex::build(&weighted);
/// let hits = index.query(&[(1, 1.0)], 10);
/// assert_eq!(hits.hits()[0].doc, 1);
/// ```
#[derive(Debug, Clone)]
pub struct VectorSpaceIndex {
    /// Postings: for each term, `(doc, weight)` pairs.
    postings: Vec<Vec<(usize, f64)>>,
    /// Euclidean norm of each document column.
    doc_norms: Vec<f64>,
    n_docs: usize,
}

impl VectorSpaceIndex {
    /// Builds the index from a weighted `n × m` term–document matrix.
    pub fn build(weighted: &CsrMatrix) -> Self {
        let n_terms = weighted.nrows();
        let n_docs = weighted.ncols();
        let mut postings = Vec::with_capacity(n_terms);
        for t in 0..n_terms {
            postings.push(weighted.row_entries(t).collect());
        }
        VectorSpaceIndex {
            postings,
            doc_norms: weighted.column_norms(),
            n_docs,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Number of terms in the index's universe.
    pub fn n_terms(&self) -> usize {
        self.postings.len()
    }

    /// Cosine-ranked retrieval for a sparse query of `(term, weight)` pairs.
    /// Out-of-vocabulary terms are ignored. Only documents sharing at least
    /// one query term are returned.
    pub fn query(&self, terms: &[(usize, f64)], top_k: usize) -> RankedList {
        let mut scores = vec![0.0f64; self.n_docs];
        let mut touched = vec![false; self.n_docs];
        let mut q_norm_sq = 0.0;
        for &(t, w) in terms {
            q_norm_sq += w * w;
            if let Some(posting) = self.postings.get(t) {
                for &(doc, dw) in posting {
                    scores[doc] += w * dw;
                    touched[doc] = true;
                }
            }
        }
        let q_norm = q_norm_sq.sqrt();
        if q_norm <= 0.0 {
            return RankedList::default();
        }
        let hits: Vec<SearchHit> = (0..self.n_docs)
            .filter(|&d| touched[d])
            .map(|d| {
                let denom = q_norm * self.doc_norms[d].max(f64::MIN_POSITIVE);
                SearchHit {
                    doc: d,
                    score: (scores[d] / denom).clamp(-1.0, 1.0),
                }
            })
            .collect();
        RankedList::from_hits(hits).truncated(top_k)
    }

    /// Appends a new document column to the index (the term-space analogue
    /// of LSI fold-in), returning its id. `terms` must already be weighted
    /// consistently with the matrix the index was built from; unknown term
    /// ids and zero weights are skipped, exactly as in querying.
    ///
    /// This keeps a raw-VSM fallback index in lockstep with an
    /// [`LsiIndex`](https://docs.rs/lsi-core)-style spectral index that
    /// grows by folding in, so degraded-mode retrieval sees the same
    /// document set.
    pub fn add_document(&mut self, terms: &[(usize, f64)]) -> usize {
        let doc = self.n_docs;
        let mut norm_sq = 0.0f64;
        for &(t, w) in terms {
            if w == 0.0 {
                continue;
            }
            if let Some(posting) = self.postings.get_mut(t) {
                posting.push((doc, w));
                norm_sq += w * w;
            }
        }
        self.doc_norms.push(norm_sq.sqrt());
        self.n_docs += 1;
        doc
    }

    /// Cosine similarity between two indexed documents, computed from the
    /// postings (O(nnz) — fine for tests and small corpora; batch work
    /// should use the matrix directly).
    pub fn doc_cosine(&self, i: usize, j: usize) -> f64 {
        let mut dot = 0.0;
        for posting in &self.postings {
            let wi = posting.iter().find(|&&(d, _)| d == i).map(|&(_, w)| w);
            let wj = posting.iter().find(|&&(d, _)| d == j).map(|&(_, w)| w);
            if let (Some(a), Some(b)) = (wi, wj) {
                dot += a * b;
            }
        }
        let denom = self.doc_norms[i] * self.doc_norms[j];
        if denom <= 0.0 {
            0.0
        } else {
            (dot / denom).clamp(-1.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> VectorSpaceIndex {
        // 4 terms × 3 docs:
        //   doc0: t0=1, t1=1
        //   doc1: t1=2
        //   doc2: t2=3
        let m =
            CsrMatrix::from_triplets(4, 3, &[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)])
                .unwrap();
        VectorSpaceIndex::build(&m)
    }

    #[test]
    fn query_ranks_by_cosine() {
        let idx = index();
        let r = idx.query(&[(1, 1.0)], 10);
        // doc1 is a pure t1 document (cosine 1); doc0 splits mass.
        assert_eq!(r.hits()[0].doc, 1);
        assert!((r.hits()[0].score - 1.0).abs() < 1e-12);
        assert_eq!(r.hits()[1].doc, 0);
        assert!((r.hits()[1].score - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(r.len(), 2); // doc2 shares no terms
    }

    #[test]
    fn query_ignores_oov_terms() {
        let idx = index();
        let r = idx.query(&[(99, 1.0)], 10);
        assert!(r.is_empty());
    }

    #[test]
    fn query_zero_weight_returns_empty() {
        let idx = index();
        assert!(idx.query(&[], 5).is_empty());
        assert!(idx.query(&[(0, 0.0)], 5).is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let idx = index();
        let r = idx.query(&[(1, 1.0)], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.hits()[0].doc, 1);
    }

    #[test]
    fn ranked_list_tie_break_deterministic() {
        let l = RankedList::from_hits(vec![
            SearchHit { doc: 5, score: 0.5 },
            SearchHit { doc: 1, score: 0.5 },
            SearchHit { doc: 3, score: 0.9 },
        ]);
        assert_eq!(l.doc_ids(), vec![3, 1, 5]);
    }

    #[test]
    fn doc_cosine_basics() {
        let idx = index();
        // doc0 and doc1 share t1.
        let c01 = idx.doc_cosine(0, 1);
        assert!((c01 - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        // doc0 and doc2 share nothing.
        assert_eq!(idx.doc_cosine(0, 2), 0.0);
        // Self-similarity.
        assert!((idx.doc_cosine(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn index_dimensions() {
        let idx = index();
        assert_eq!(idx.n_docs(), 3);
        assert_eq!(idx.n_terms(), 4);
    }

    #[test]
    fn add_document_appends_searchable_column() {
        let mut idx = index();
        let id = idx.add_document(&[(0, 2.0), (2, 1.0), (99, 5.0), (1, 0.0)]);
        assert_eq!(id, 3);
        assert_eq!(idx.n_docs(), 4);
        // Only the in-vocabulary, nonzero weights count toward the norm.
        let r = idx.query(&[(0, 1.0), (2, 0.5)], 10);
        assert!(r.doc_ids().contains(&id));
        // Norm reflects exactly the stored weights: (2, 1).
        let hit = r.hits().iter().find(|h| h.doc == id).unwrap();
        assert!(hit.score.is_finite() && hit.score > 0.0);
        // doc_cosine with the new document works too.
        assert!((idx.doc_cosine(id, id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_term_query() {
        let idx = index();
        let r = idx.query(&[(0, 1.0), (1, 1.0)], 10);
        // doc0 matches the query direction exactly.
        assert_eq!(r.hits()[0].doc, 0);
        assert!((r.hits()[0].score - 1.0).abs() < 1e-12);
    }
}
