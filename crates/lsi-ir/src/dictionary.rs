//! Term ↔ id interning.

use std::collections::HashMap;

/// A bidirectional mapping between term strings and dense ids `0..len`.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_term: HashMap<String, usize>,
    by_id: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.by_id.len();
        self.by_term.insert(term.to_owned(), id);
        self.by_id.push(term.to_owned());
        id
    }

    /// Looks up a term's id without interning.
    pub fn id(&self, term: &str) -> Option<usize> {
        self.by_term.get(term).copied()
    }

    /// The term string for an id.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.by_id.get(id).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates `(id, term)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.by_id.iter().enumerate().map(|(i, s)| (i, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("car");
        let b = d.intern("auto");
        assert_eq!(d.intern("car"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut d = Dictionary::new();
        let id = d.intern("galaxy");
        assert_eq!(d.id("galaxy"), Some(id));
        assert_eq!(d.term(id), Some("galaxy"));
        assert_eq!(d.id("missing"), None);
        assert_eq!(d.term(99), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        let pairs: Vec<(usize, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
