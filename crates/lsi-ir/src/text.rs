//! Tokenization and in-memory text documents.
//!
//! Deliberately simple: lowercase, split on non-alphanumerics, optional
//! stop-word removal and minimum token length. The paper notes that corpora
//! "are usually preprocessed to eliminate commonly-occurring stop-words" —
//! that preprocessing is what justifies treating models as ε-separable, so
//! the tokenizer supports it directly.

/// A small default English stop-word list.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "he", "in", "is",
    "it", "its", "of", "on", "or", "she", "that", "the", "their", "they", "this", "to", "was",
    "we", "were", "will", "with",
];

/// Tokenizer configuration.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Minimum token length to keep (after lowercasing).
    pub min_len: usize,
    /// Stop words to drop; empty disables stop-word filtering.
    pub stopwords: Vec<String>,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer {
            min_len: 2,
            stopwords: DEFAULT_STOPWORDS.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

impl Tokenizer {
    /// A tokenizer that keeps everything (no stop words, length ≥ 1).
    pub fn keep_all() -> Self {
        Tokenizer {
            min_len: 1,
            stopwords: Vec::new(),
        }
    }

    /// Splits text into normalized tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .filter(|t| t.chars().count() >= self.min_len)
            .filter(|t| !self.stopwords.iter().any(|s| s == t))
            .collect()
    }
}

/// A raw text document with an external identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextDocument {
    /// Caller-supplied identifier (file name, URL, title, …).
    pub id: String,
    /// The document body.
    pub body: String,
}

impl TextDocument {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, body: impl Into<String>) -> Self {
        TextDocument {
            id: id.into(),
            body: body.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        let t = Tokenizer::keep_all();
        assert_eq!(
            t.tokenize("Hello, World! 42x"),
            vec!["hello", "world", "42x"]
        );
    }

    #[test]
    fn tokenize_drops_stopwords() {
        let t = Tokenizer::default();
        let toks = t.tokenize("The car is on the highway");
        assert_eq!(toks, vec!["car", "highway"]);
    }

    #[test]
    fn tokenize_min_len() {
        let t = Tokenizer {
            min_len: 4,
            stopwords: Vec::new(),
        };
        assert_eq!(t.tokenize("a bb ccc dddd eeeee"), vec!["dddd", "eeeee"]);
    }

    #[test]
    fn tokenize_empty_and_punctuation_only() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn tokenize_unicode() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("naïve café"), vec!["naïve", "café"]);
    }

    #[test]
    fn text_document_constructor() {
        let d = TextDocument::new("doc1", "body text");
        assert_eq!(d.id, "doc1");
        assert_eq!(d.body, "body text");
    }
}
