//! Term-weighting schemes.
//!
//! Section 2 of the paper: "The i-th coordinate of a vector represents some
//! function of the number of times the i-th term occurs in the document…
//! There are several candidates for the right function to be used here (0-1,
//! frequency, etc.), and the precise choice does not affect our results."
//! The benchmark suite's ablation E10 verifies that empirically; this module
//! implements the standard candidates.

use lsi_linalg::{CsrMatrix, LinearOperator};

/// A term-weighting scheme applied to a raw count matrix (rows = terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Raw occurrence counts (the identity transform).
    #[default]
    Count,
    /// 0/1 presence.
    Binary,
    /// `1 + ln(tf)` for nonzero counts (dampened term frequency).
    LogTf,
    /// `tf · ln(m / df)` — raw counts scaled by inverse document frequency.
    TfIdf,
    /// Log-entropy: `(1 + ln tf) · (1 + H(term)/ln m)` where `H` is the
    /// (negative) entropy of the term's distribution across documents; the
    /// weighting classically paired with LSI in the literature.
    LogEntropy,
}

impl Weighting {
    /// All schemes, for sweeps and ablations.
    pub const ALL: [Weighting; 5] = [
        Weighting::Count,
        Weighting::Binary,
        Weighting::LogTf,
        Weighting::TfIdf,
        Weighting::LogEntropy,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Weighting::Count => "count",
            Weighting::Binary => "binary",
            Weighting::LogTf => "log-tf",
            Weighting::TfIdf => "tf-idf",
            Weighting::LogEntropy => "log-entropy",
        }
    }

    /// Applies the scheme to raw counts, producing the weighted matrix.
    pub fn apply(self, counts: &CsrMatrix) -> CsrMatrix {
        let m = counts.ncols();
        let mut out = counts.clone();
        match self {
            Weighting::Count => {}
            Weighting::Binary => out.map_values_inplace(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Weighting::LogTf => {
                out.map_values_inplace(|v| if v > 0.0 { 1.0 + v.ln() } else { 0.0 })
            }
            Weighting::TfIdf => {
                let dfs = counts.row_nnz();
                for (t, &df) in dfs.iter().enumerate() {
                    if df > 0 {
                        let idf = ((m as f64) / (df as f64)).ln();
                        out.scale_row(t, idf);
                    }
                }
            }
            Weighting::LogEntropy => {
                if m <= 1 {
                    // Entropy weight degenerates with one document; fall
                    // back to log-tf.
                    out.map_values_inplace(|v| if v > 0.0 { 1.0 + v.ln() } else { 0.0 });
                    return out;
                }
                let log_m = (m as f64).ln();
                // Global weight g_t = 1 + Σ_j p_tj ln p_tj / ln m.
                let n = counts.nrows();
                let mut global = vec![1.0; n];
                for (t, g) in global.iter_mut().enumerate() {
                    let total: f64 = counts.row_entries(t).map(|(_, v)| v).sum();
                    if total <= 0.0 {
                        continue;
                    }
                    let mut h = 0.0;
                    for (_, v) in counts.row_entries(t) {
                        let p = v / total;
                        if p > 0.0 {
                            h += p * p.ln();
                        }
                    }
                    *g = 1.0 + h / log_m;
                }
                out.map_values_inplace(|v| if v > 0.0 { 1.0 + v.ln() } else { 0.0 });
                for (t, &g) in global.iter().enumerate() {
                    out.scale_row(t, g);
                }
            }
        }
        out
    }
}

/// Normalizes every column (document vector) to unit Euclidean length.
/// Zero columns are left untouched.
pub fn normalize_columns(a: &mut CsrMatrix) {
    let norms = a.column_norms();
    let factors: Vec<f64> = norms
        .iter()
        .map(|&n| if n > 0.0 { 1.0 / n } else { 1.0 })
        .collect();
    a.scale_cols(&factors)
        // lsi-lint: allow(E1-panic-policy, "invariant: both factors derive from the same matrix dimensions")
        .expect("factors built from the same matrix always match");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // 3 terms × 4 docs.
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_is_identity() {
        let c = sample();
        assert_eq!(Weighting::Count.apply(&c), c);
    }

    #[test]
    fn binary_flattens() {
        let w = Weighting::Binary.apply(&sample());
        assert_eq!(w.get(0, 0), 1.0);
        assert_eq!(w.get(1, 0), 1.0);
        assert_eq!(w.get(2, 2), 1.0);
        assert_eq!(w.get(2, 0), 0.0);
    }

    #[test]
    fn log_tf_dampens() {
        let w = Weighting::LogTf.apply(&sample());
        assert!((w.get(0, 0) - (1.0 + 2f64.ln())).abs() < 1e-12);
        assert!((w.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tf_idf_downweights_ubiquitous_terms() {
        let w = Weighting::TfIdf.apply(&sample());
        // Term 0 occurs in all 4 docs: idf = ln(4/4) = 0 → weight 0.
        assert_eq!(w.get(0, 0), 0.0);
        // Term 2 occurs in 1 of 4 docs: idf = ln 4.
        assert!((w.get(2, 2) - 4.0 * 4f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn log_entropy_bounds() {
        let w = Weighting::LogEntropy.apply(&sample());
        // Term 1 occurs in a single document: entropy 0 → global weight 1.
        assert!((w.get(1, 0) - (1.0 + 3f64.ln())).abs() < 1e-12);
        // Term 0 spread across all docs: global weight in (0, 1).
        let g = w.get(0, 1); // local weight is 1.0, so entry = global
        assert!(g > 0.0 && g < 1.0, "{g}");
    }

    #[test]
    fn log_entropy_single_doc_fallback() {
        let c = CsrMatrix::from_triplets(2, 1, &[(0, 0, 2.0)]).unwrap();
        let w = Weighting::LogEntropy.apply(&c);
        assert!((w.get(0, 0) - (1.0 + 2f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn normalize_columns_unit_norms() {
        let mut a = sample();
        normalize_columns(&mut a);
        for (j, n) in a.column_norms().iter().enumerate() {
            if j == 3 || *n > 0.0 {
                assert!((n - 1.0).abs() < 1e-12, "col {j}: {n}");
            }
        }
    }

    #[test]
    fn normalize_handles_zero_columns() {
        let mut a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 3.0)]).unwrap();
        normalize_columns(&mut a);
        assert_eq!(a.get(0, 0), 1.0);
        // Columns 1–2 are zero and untouched.
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn all_schemes_preserve_sparsity_pattern() {
        let c = sample();
        for w in Weighting::ALL {
            let applied = w.apply(&c);
            assert!(applied.nnz() <= c.nnz(), "{}", w.name());
            // Zero cells stay zero.
            assert_eq!(applied.get(2, 0), 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Weighting::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Weighting::ALL.len());
    }
}
