//! Property-based tests for the IR substrate.

use proptest::prelude::*;

use lsi_ir::eval::{average_precision, precision_at, recall_at, Judgments};
use lsi_ir::retrieval::VectorSpaceIndex;
use lsi_ir::{TermDocumentMatrix, Weighting};

/// Strategy: a small random term–document count matrix as triplets.
fn triplets_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (2usize..12, 2usize..12).prop_flat_map(|(n, m)| {
        proptest::collection::vec(
            ((0..n), (0..m), 1.0f64..9.0).prop_map(|(t, d, v)| (t, d, v.round())),
            1..40,
        )
        .prop_map(move |trips| (n, m, trips))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every weighting scheme produces finite, nonnegative entries on count
    /// data and keeps the shape.
    #[test]
    fn weightings_well_behaved((n, m, trips) in triplets_strategy()) {
        let td = TermDocumentMatrix::from_triplets(n, m, &trips).expect("in bounds");
        for w in Weighting::ALL {
            let applied = td.weighted(w);
            let dense = applied.to_dense_matrix();
            prop_assert_eq!(dense.shape(), (n, m));
            prop_assert!(dense.as_slice().iter().all(|x| x.is_finite()), "{}", w.name());
            prop_assert!(dense.as_slice().iter().all(|&x| x >= -1e-12), "{}", w.name());
        }
    }

    /// Query scores are valid cosines and rankings are sorted.
    #[test]
    fn vsm_scores_are_cosines((n, m, trips) in triplets_strategy()) {
        let td = TermDocumentMatrix::from_triplets(n, m, &trips).expect("in bounds");
        let idx = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
        let query: Vec<(usize, f64)> = (0..n.min(3)).map(|t| (t, 1.0)).collect();
        let result = idx.query(&query, m);
        for h in result.hits() {
            prop_assert!(h.score >= -1.0 - 1e-12 && h.score <= 1.0 + 1e-12);
        }
        for w in result.hits().windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
    }

    /// A document is its own best match when queried with its exact terms.
    #[test]
    fn self_query_ranks_self_first((n, m, trips) in triplets_strategy()) {
        let td = TermDocumentMatrix::from_triplets(n, m, &trips).expect("in bounds");
        let dense = td.to_dense();
        let idx = VectorSpaceIndex::build(&td.weighted(Weighting::Count));
        // Pick the first nonzero document.
        for j in 0..m {
            let col = dense.col(j);
            let query: Vec<(usize, f64)> = col
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v > 0.0)
                .map(|(t, &v)| (t, v))
                .collect();
            if query.is_empty() {
                continue;
            }
            let result = idx.query(&query, m);
            let top = result.hits().first().expect("nonempty");
            prop_assert!((top.score - 1.0).abs() < 1e-9 || top.doc == j,
                "doc {j} not a perfect self-match: top {} at {}", top.doc, top.score);
            break;
        }
    }

    /// Precision/recall/AP stay within [0, 1] for arbitrary rankings.
    #[test]
    fn eval_metrics_bounded(
        ranking in proptest::collection::vec(0usize..50, 0..30),
        relevant in proptest::collection::hash_set(0usize..50, 0..20),
        k in 0usize..35,
    ) {
        let j = Judgments::new(relevant);
        let p = precision_at(&ranking, &j, k);
        let r = recall_at(&ranking, &j, k);
        let ap = average_precision(&ranking, &j);
        prop_assert!((0.0..=1.0).contains(&p), "precision {p}");
        prop_assert!((0.0..=1.0).contains(&r), "recall {r}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap), "AP {ap}");
    }

    /// Recall is monotone nondecreasing in k.
    #[test]
    fn recall_monotone_in_k(
        ranking in proptest::collection::vec(0usize..20, 1..20),
        relevant in proptest::collection::hash_set(0usize..20, 1..10),
    ) {
        let j = Judgments::new(relevant);
        let mut prev = 0.0;
        for k in 0..=ranking.len() {
            let r = recall_at(&ranking, &j, k);
            prop_assert!(r >= prev - 1e-12);
            prev = r;
        }
    }
}
