//! Write-ahead durability for mutating indexes.
//!
//! The paper's index is static, but the fold-in update path
//! ([`LsiIndex::add_document`]) serves live mutating traffic, and an
//! accepted update that exists only in memory is an accepted update a
//! crash silently loses. This module closes that window with a classic
//! write-ahead log:
//!
//! * [`Journal`] — an append-only file of CRC-framed, length-prefixed
//!   mutation records ([`MutationRecord`]). Every append is flushed and
//!   fsynced **before** the caller applies the mutation in memory, so an
//!   acknowledged mutation is always recoverable.
//! * [`DurableIndex`] — an [`LsiIndex`] paired with its snapshot path and
//!   journal. [`DurableIndex::open_durable`] loads the last checkpointed
//!   `.lsix` snapshot and replays the journal tail, truncating at the
//!   first torn or corrupt frame instead of erroring; a crash at **any**
//!   byte boundary therefore recovers to exactly the pre- or
//!   post-mutation state (enforced exhaustively by `tests/crash_matrix.rs`
//!   at the workspace root).
//! * [`DurableIndex::checkpoint`] — compaction: rewrite the snapshot
//!   atomically ([`write_index_atomic`]), then rotate the journal down to
//!   a single [`MutationRecord::Checkpoint`] frame.
//!
//! Replay is idempotent by construction: every mutation record carries the
//! sequence number (`seq`) equal to the document count at the moment it
//! was applied, and each successful fold-in grows the index by exactly one
//! document. Recovery skips records with `seq` below the snapshot's
//! document count, so replaying the same journal twice equals replaying it
//! once, and a crash between checkpoint's snapshot rename and its journal
//! rotation is harmless.
//!
//! ## On-disk format (`.lsij`, version 1, little-endian)
//!
//! ```text
//! magic  b"LSIJ" | version u32
//! frame* :=  len u32 | body (len bytes) | crc u32
//! body   :=  tag u8 | seq u64 | payload
//!   tag 0 FoldIn      payload = n u32 | (term u64, weight f64) * n
//!   tag 1 AddDocument payload = id_len u32 | id utf-8 | n u32 | (term, weight) * n
//!   tag 2 Checkpoint  payload = (empty)
//!   tag 3 AddVector   payload = id_len u32 | id utf-8 | k u32 | coord f64 * k
//!   tag 4 Retire      payload = doc u64
//! ```
//!
//! The CRC-32 covers the length prefix *and* the body, so a corrupted
//! length field cannot redirect the checksum window undetected.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::index::{BadQuery, LsiError, LsiIndex};
use crate::iofault::{io_faults, RetryPolicy};
use crate::sections::SectionId;
use crate::storage::{self, write_index_atomic, Crc32, StorageError};

/// Journal file magic.
const MAGIC: [u8; 4] = *b"LSIJ";
/// Journal format version.
const VERSION: u32 = 1;
/// Header length in bytes (magic + version).
const HEADER_LEN: usize = 8;
/// Upper bound on one frame body, rejected before any allocation so a
/// corrupt length prefix cannot drive memory use.
const MAX_FRAME: usize = 1 << 24;
/// Upper bound on terms per record (same spirit as `MAX_FRAME`).
const MAX_TERMS: u32 = 1 << 22;
/// Upper bound on a document-id string, in bytes.
const MAX_DOC_ID: u32 = 1 << 20;
/// Upper bound on an [`MutationRecord::AddVector`] coordinate count (LSI
/// ranks are small; this is purely a corrupt-length guard).
const MAX_COORDS: u32 = 1 << 16;
/// Smallest possible body: tag byte plus sequence number.
const MIN_BODY: usize = 9;

/// One durable mutation, as written to and replayed from the journal.
///
/// `seq` is the index's document count at the moment the mutation was
/// applied (equivalently: the id the folded-in document received). It is
/// the idempotence key for replay — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationRecord {
    /// A fold-in of raw `(term, weight)` pairs with no external identity.
    FoldIn {
        /// Document count when this mutation was applied.
        seq: u64,
        /// The (already weighted) query-style term vector folded in.
        terms: Vec<(usize, f64)>,
    },
    /// A fold-in that also carries a caller-side document id (the CLI's
    /// container keeps ids alongside the index and journals through this
    /// variant so recovery can restore both).
    AddDocument {
        /// Document count when this mutation was applied.
        seq: u64,
        /// Caller-side document identifier.
        doc_id: String,
        /// The (already weighted) term vector folded in.
        terms: Vec<(usize, f64)>,
    },
    /// A compaction marker written by journal rotation: everything with
    /// `seq` below this value is contained in the snapshot.
    Checkpoint {
        /// Document count captured by the checkpointed snapshot.
        seq: u64,
    },
    /// A document appended by its already-computed LSI-space coordinates
    /// (no fold-in at replay time). This is the sharding transplant
    /// record: the coordinate bits are stored verbatim, so a replayed
    /// document scores bitwise identically to the donor index's row.
    AddVector {
        /// Document count when this mutation was applied.
        seq: u64,
        /// Caller-side document identifier (shards store the global doc
        /// id here).
        doc_id: String,
        /// The length-`rank` LSI-space representation, bit-exact.
        coords: Vec<f64>,
    },
    /// Retirement of a previously added document: its representation is
    /// zeroed so cosine scans skip it. `seq` is the document count at
    /// append time (retirement does not change the count); replay is
    /// idempotent because zeroing twice equals zeroing once.
    Retire {
        /// Document count when the retirement was applied.
        seq: u64,
        /// Local id of the retired document.
        doc: u64,
    },
}

impl MutationRecord {
    /// The record's sequence number (document count at apply time).
    pub fn seq(&self) -> u64 {
        match self {
            Self::FoldIn { seq, .. }
            | Self::AddDocument { seq, .. }
            | Self::Checkpoint { seq }
            | Self::AddVector { seq, .. }
            | Self::Retire { seq, .. } => *seq,
        }
    }
}

/// Why journal replay stopped before the file's physical end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationCause {
    /// The final frame was cut short — the classic torn write.
    TornFrame,
    /// A frame's CRC-32 did not match its contents.
    ChecksumMismatch,
    /// A frame's checksum held but its body did not decode (bad tag,
    /// non-finite weight, absurd count).
    MalformedRecord,
    /// A record's sequence number skipped ahead of the index state, or a
    /// structurally valid record failed to apply — replay cannot safely
    /// continue past it.
    SequenceGap,
}

impl std::fmt::Display for TruncationCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TornFrame => write!(f, "torn frame"),
            Self::ChecksumMismatch => write!(f, "checksum mismatch"),
            Self::MalformedRecord => write!(f, "malformed record"),
            Self::SequenceGap => write!(f, "sequence gap"),
        }
    }
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone)]
pub struct JournalRecovery {
    /// The records of the valid frame prefix, in append order.
    pub records: Vec<MutationRecord>,
    /// Bytes discarded past the last valid frame (0 for a clean journal).
    pub truncated_bytes: u64,
    /// Why the tail was discarded, if it was.
    pub truncation: Option<TruncationCause>,
    /// True when the journal file was missing or its header was torn and a
    /// fresh journal was (re)created in its place.
    pub created: bool,
}

/// An append-only write-ahead log of [`MutationRecord`]s.
///
/// Appends are fsynced before they return; opening scans the file and
/// truncates it back to the last intact frame. See the module docs for the
/// frame format.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// The sidecar journal path for a snapshot: the file name with `.lsij`
/// appended (`index.lsix` → `index.lsix.lsij`).
pub fn journal_path(snapshot: &Path) -> PathBuf {
    let mut name = snapshot
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".lsij");
    snapshot.with_file_name(name)
}

/// The bytes of a freshly rotated journal: header plus, when given, a
/// single [`MutationRecord::Checkpoint`] frame. Public so crash-injection
/// harnesses can enumerate byte-exact intermediate disk states.
pub fn fresh_journal_bytes(checkpoint: Option<u64>) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + 32);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    if let Some(seq) = checkpoint {
        bytes.extend_from_slice(&encode_frame(&MutationRecord::Checkpoint { seq }));
    }
    bytes
}

/// The bytes of a journal holding exactly `records` (header plus one frame
/// per record, in order). Public so crash-injection harnesses can
/// enumerate byte-exact intermediate disk states of a record-list
/// rotation ([`Journal::rotate_with`]).
pub fn journal_bytes(records: &[MutationRecord]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + 64 * records.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    for record in records {
        bytes.extend_from_slice(&encode_frame(record));
    }
    bytes
}

/// Encodes one record as a complete journal frame (length prefix, body,
/// CRC trailer). Public for the crash-matrix and fuzz harnesses.
pub fn encode_frame(record: &MutationRecord) -> Vec<u8> {
    let body = encode_body(record);
    let len = body.len() as u32;
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&body);
    let mut crc = Crc32::new();
    crc.update(&len.to_le_bytes());
    crc.update(&body);
    frame.extend_from_slice(&crc.finalize().to_le_bytes());
    frame
}

fn encode_body(record: &MutationRecord) -> Vec<u8> {
    let mut b = Vec::new();
    match record {
        MutationRecord::FoldIn { seq, terms } => {
            b.push(0);
            b.extend_from_slice(&seq.to_le_bytes());
            encode_terms(&mut b, terms);
        }
        MutationRecord::AddDocument { seq, doc_id, terms } => {
            b.push(1);
            b.extend_from_slice(&seq.to_le_bytes());
            b.extend_from_slice(&(doc_id.len() as u32).to_le_bytes());
            b.extend_from_slice(doc_id.as_bytes());
            encode_terms(&mut b, terms);
        }
        MutationRecord::Checkpoint { seq } => {
            b.push(2);
            b.extend_from_slice(&seq.to_le_bytes());
        }
        MutationRecord::AddVector {
            seq,
            doc_id,
            coords,
        } => {
            b.push(3);
            b.extend_from_slice(&seq.to_le_bytes());
            b.extend_from_slice(&(doc_id.len() as u32).to_le_bytes());
            b.extend_from_slice(doc_id.as_bytes());
            b.extend_from_slice(&(coords.len() as u32).to_le_bytes());
            for &c in coords {
                b.extend_from_slice(&c.to_le_bytes());
            }
        }
        MutationRecord::Retire { seq, doc } => {
            b.push(4);
            b.extend_from_slice(&seq.to_le_bytes());
            b.extend_from_slice(&doc.to_le_bytes());
        }
    }
    b
}

fn encode_terms(b: &mut Vec<u8>, terms: &[(usize, f64)]) {
    b.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for &(t, w) in terms {
        b.extend_from_slice(&(t as u64).to_le_bytes());
        b.extend_from_slice(&w.to_le_bytes());
    }
}

/// A bounds-checked little-endian byte cursor for frame decoding.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_terms(r: &mut ByteReader<'_>) -> Option<Vec<(usize, f64)>> {
    let n = r.u32()?;
    if n > MAX_TERMS {
        return None;
    }
    let mut terms = Vec::with_capacity(n.min(1 << 16) as usize);
    for _ in 0..n {
        let t = r.u64()?;
        let w = r.f64()?;
        if !w.is_finite() || usize::try_from(t).is_err() {
            return None;
        }
        terms.push((t as usize, w));
    }
    Some(terms)
}

/// Decodes one frame body. `None` means the bytes are structurally invalid
/// even though the checksum held (possible only for bytes never produced
/// by [`encode_frame`]).
fn decode_body(body: &[u8]) -> Option<MutationRecord> {
    let mut r = ByteReader::new(body);
    let tag = r.u8()?;
    let seq = r.u64()?;
    let record = match tag {
        0 => MutationRecord::FoldIn {
            seq,
            terms: decode_terms(&mut r)?,
        },
        1 => {
            let id_len = r.u32()?;
            if id_len > MAX_DOC_ID {
                return None;
            }
            let id_bytes = r.take(id_len as usize)?;
            let doc_id = std::str::from_utf8(id_bytes).ok()?.to_string();
            MutationRecord::AddDocument {
                seq,
                doc_id,
                terms: decode_terms(&mut r)?,
            }
        }
        2 => MutationRecord::Checkpoint { seq },
        3 => {
            let id_len = r.u32()?;
            if id_len > MAX_DOC_ID {
                return None;
            }
            let id_bytes = r.take(id_len as usize)?;
            let doc_id = std::str::from_utf8(id_bytes).ok()?.to_string();
            let k = r.u32()?;
            if k > MAX_COORDS {
                return None;
            }
            let mut coords = Vec::with_capacity(k as usize);
            for _ in 0..k {
                let c = r.f64()?;
                if !c.is_finite() {
                    return None;
                }
                coords.push(c);
            }
            MutationRecord::AddVector {
                seq,
                doc_id,
                coords,
            }
        }
        4 => MutationRecord::Retire { seq, doc: r.u64()? },
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(record)
}

/// Scans the frame region of a journal (everything after the header) and
/// returns the decoded valid prefix, its byte length, and — if the scan
/// stopped early — why. Public for the fuzz and crash-matrix harnesses.
pub fn decode_frames(bytes: &[u8]) -> (Vec<MutationRecord>, usize, Option<TruncationCause>) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            return (records, pos, Some(TruncationCause::TornFrame));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if !(MIN_BODY..=MAX_FRAME).contains(&len) {
            return (records, pos, Some(TruncationCause::MalformedRecord));
        }
        if rest.len() < 4 + len + 4 {
            return (records, pos, Some(TruncationCause::TornFrame));
        }
        let body = &rest[4..4 + len];
        let stored = u32::from_le_bytes([
            rest[4 + len],
            rest[4 + len + 1],
            rest[4 + len + 2],
            rest[4 + len + 3],
        ]);
        let mut crc = Crc32::new();
        crc.update(&rest[0..4]);
        crc.update(body);
        if crc.finalize() != stored {
            return (records, pos, Some(TruncationCause::ChecksumMismatch));
        }
        match decode_body(body) {
            Some(record) => records.push(record),
            None => return (records, pos, Some(TruncationCause::MalformedRecord)),
        }
        pos += 4 + len + 4;
    }
    (records, pos, None)
}

/// Writes a complete journal image crash-safely: bytes go to a `.tmp`
/// sibling, are synced, renamed over the destination, and the parent
/// directory is synced so the rename survives a crash.
fn write_fresh_bytes(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    // Transient I/O faults retry the whole attempt; every failed attempt
    // removes its `.tmp`, so each retry starts from the same clean
    // pre-state and a hard fault leaves the destination untouched.
    RetryPolicy::default().run(|| write_fresh_bytes_once(path, bytes))
}

fn write_fresh_bytes_once(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = journal_tmp_path(path);
    if tmp.exists() {
        let _ = std::fs::remove_file(&tmp);
    }
    let mut file = io_faults::MaybeFaulty::new(File::create(&tmp)?);
    let result = file.write_all(bytes).and_then(|()| file.inner().sync_all());
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(StorageError::Io(e));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StorageError::Io(e)
    })?;
    storage::sync_parent_dir(path)
}

/// Writes a fresh journal (header, plus a checkpoint frame when given)
/// crash-safely via [`write_fresh_bytes`].
fn write_fresh(path: &Path, checkpoint: Option<u64>) -> Result<(), StorageError> {
    write_fresh_bytes(path, &fresh_journal_bytes(checkpoint))
}

/// The temporary sibling used by journal rotation (`<name>.tmp`).
pub fn journal_tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

impl Journal {
    /// Creates a fresh, empty journal at `path`, replacing whatever was
    /// there. The file and its parent directory are synced before this
    /// returns.
    pub fn create(path: &Path) -> Result<Self, StorageError> {
        write_fresh(path, None)?;
        Self::open_append(path.to_path_buf())
    }

    /// Creates a journal at `path` holding exactly `records`, replacing
    /// whatever was there, in one crash-safe write (a shard seeding its
    /// document list appends nothing frame-by-frame). The file and its
    /// parent directory are synced before this returns.
    pub fn create_with(path: &Path, records: &[MutationRecord]) -> Result<Self, StorageError> {
        write_fresh_bytes(path, &journal_bytes(records))?;
        Self::open_append(path.to_path_buf())
    }

    /// Opens the journal at `path`, scanning its frames and truncating the
    /// file back to the last intact frame. A missing file — or one whose
    /// header itself was torn mid-create — is replaced by a fresh journal
    /// (`created` in the recovery report). A file with a foreign magic or
    /// an unsupported version is a real error, not crash damage, and is
    /// reported as such rather than clobbered.
    ///
    /// A stale `<name>.tmp` sibling — the residue of a crash between a
    /// rotation's temp-file write and its rename — is swept here (the
    /// rename never happened, so the rotation was never acknowledged and
    /// the temp bytes are garbage), mirroring `write_index_atomic`'s
    /// stale-`.tmp` sweep for snapshots.
    pub fn open(path: &Path) -> Result<(Self, JournalRecovery), StorageError> {
        let stale_tmp = journal_tmp_path(path);
        if stale_tmp.exists() {
            let _ = std::fs::remove_file(&stale_tmp);
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let journal = Self::create(path)?;
                return Ok((
                    journal,
                    JournalRecovery {
                        records: Vec::new(),
                        truncated_bytes: 0,
                        truncation: None,
                        created: true,
                    },
                ));
            }
            Err(e) => return Err(StorageError::Io(e)),
        };
        if bytes.len() < HEADER_LEN {
            // Torn header: the journal died mid-create, before any frame
            // could have been acknowledged. Start over.
            let truncated = bytes.len() as u64;
            let journal = Self::create(path)?;
            return Ok((
                journal,
                JournalRecovery {
                    records: Vec::new(),
                    truncated_bytes: truncated,
                    truncation: Some(TruncationCause::TornFrame),
                    created: true,
                },
            ));
        }
        if bytes[0..4] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let (records, valid_len, truncation) = decode_frames(&bytes[HEADER_LEN..]);
        let keep = (HEADER_LEN + valid_len) as u64;
        let truncated_bytes = bytes.len() as u64 - keep;
        let file = OpenOptions::new().append(true).open(path)?;
        if truncated_bytes > 0 {
            file.set_len(keep)?;
            file.sync_all()?;
        }
        Ok((
            Self {
                path: path.to_path_buf(),
                file,
            },
            JournalRecovery {
                records,
                truncated_bytes,
                truncation,
                created: false,
            },
        ))
    }

    fn open_append(path: PathBuf) -> Result<Self, StorageError> {
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Self { path, file })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it to disk. Only after this returns
    /// `Ok` may the caller apply (and acknowledge) the mutation.
    ///
    /// The append is all-or-nothing on disk: a failed write (device full,
    /// short write, torn write) truncates the file back to its exact
    /// pre-append length before the error is surfaced, so a failed append
    /// never leaves a partial frame for recovery to find. Transient
    /// faults are retried with bounded backoff; recovery would also
    /// truncate a torn tail, but an *unacknowledged* frame must not
    /// survive either.
    pub fn append(&mut self, record: &MutationRecord) -> Result<(), StorageError> {
        let frame = encode_frame(record);
        let pre_len = self.file.metadata()?.len();
        RetryPolicy::default().run(|| {
            let result =
                io_faults::write_all(&mut self.file, &frame).and_then(|()| self.file.sync_all());
            if let Err(e) = result {
                // Roll back to the exact pre-append length; best-effort —
                // if even the truncate fails, recovery's torn-tail scan
                // still discards the partial frame.
                let _ = self.file.set_len(pre_len);
                let _ = self.file.sync_all();
                return Err(StorageError::Io(e));
            }
            Ok(())
        })
    }

    /// Rotates the journal after a checkpoint: atomically replaces the
    /// file with a fresh one holding a single
    /// [`MutationRecord::Checkpoint`] frame at `checkpoint_seq`. The new
    /// file and the parent directory are synced before this returns.
    pub fn rotate(&mut self, checkpoint_seq: u64) -> Result<(), StorageError> {
        write_fresh(&self.path, Some(checkpoint_seq))?;
        // The old handle points at the replaced inode; reopen.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// Rotates the journal down to an explicit record list: atomically
    /// replaces the file with one holding exactly `records`. This is the
    /// compaction primitive for journals that *are* the canonical document
    /// list (sharded serving): the unbounded mutation history is replaced
    /// by a bounded state dump whose replay reproduces the live state. A
    /// crash at any byte leaves either the old journal or the new one —
    /// never a blend — because the swap is a single `rename`.
    pub fn rotate_with(&mut self, records: &[MutationRecord]) -> Result<(), StorageError> {
        write_fresh_bytes(&self.path, &journal_bytes(records))?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// An error from the durable mutation path: either the journal/snapshot
/// I/O failed (nothing was applied) or the mutation itself was invalid
/// (rejected before it was journaled).
#[derive(Debug)]
pub enum DurabilityError {
    /// Journal or snapshot I/O failed; the mutation was not applied.
    Storage(StorageError),
    /// The mutation was rejected by index validation before journaling.
    Index(LsiError),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "durable mutation failed in storage: {e}"),
            Self::Index(e) => write!(f, "durable mutation rejected: {e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Index(e) => Some(e),
        }
    }
}

impl From<StorageError> for DurabilityError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<LsiError> for DurabilityError {
    fn from(e: LsiError) -> Self {
        Self::Index(e)
    }
}

/// What [`DurableIndex::open_durable`] did to reconstruct the index.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Documents in the loaded snapshot.
    pub snapshot_docs: usize,
    /// Intact frames found in the journal.
    pub frames_read: usize,
    /// Frames applied on top of the snapshot.
    pub frames_replayed: usize,
    /// Frames already contained in the snapshot (sequence number below the
    /// snapshot's document count) or checkpoint markers — skipped.
    pub frames_skipped: usize,
    /// Intact frames that could not be applied (sequence gap); replay
    /// stopped at the first one.
    pub frames_dropped: usize,
    /// Bytes discarded past the last intact frame.
    pub truncated_bytes: u64,
    /// Why the journal tail was discarded, if it was.
    pub truncation: Option<TruncationCause>,
    /// Snapshot sections that were damaged and quarantined by the
    /// tolerant open (empty for intact snapshots and v1/v2 formats). A
    /// quarantined [`SectionId::DocVectors`] leaves every snapshot-held
    /// document row zeroed — queries degrade to the term-space fallback
    /// until [`DurableIndex::rebuild_quarantined`] repairs the section.
    pub quarantined: Vec<SectionId>,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot {} docs; journal {} frame(s): {} replayed, {} skipped, {} dropped",
            self.snapshot_docs,
            self.frames_read,
            self.frames_replayed,
            self.frames_skipped,
            self.frames_dropped
        )?;
        match self.truncation {
            Some(cause) => write!(f, "; truncated {} byte(s) ({cause})", self.truncated_bytes)?,
            None => write!(f, "; clean tail")?,
        }
        if !self.quarantined.is_empty() {
            write!(f, "; quarantined:")?;
            for s in &self.quarantined {
                write!(f, " {s}")?;
            }
        }
        Ok(())
    }
}

/// What [`DurableIndex::rebuild_quarantined`] repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildReport {
    /// Factorization-covered document rows recomputed from `D_k V_kᵀ`.
    pub rebuilt: usize,
    /// Journal retirements re-applied after the rebuild (the rebuild
    /// resurrects retired rows; their Retire records zero them again).
    pub retires_reapplied: usize,
    /// Folded-in rows that stayed zero: their fold-in frames were
    /// compacted away before the damage, so nothing can recompute them.
    pub unrecovered: usize,
}

impl std::fmt::Display for RebuildReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} row(s) rebuilt, {} retirement(s) re-applied, {} unrecoverable",
            self.rebuilt, self.retires_reapplied, self.unrecovered
        )
    }
}

/// An [`LsiIndex`] with crash-consistent mutations: every
/// [`add_document`](Self::add_document) is journaled and fsynced before it
/// is applied in memory, and [`open_durable`](Self::open_durable) replays
/// the journal tail over the last snapshot.
#[derive(Debug)]
pub struct DurableIndex {
    index: LsiIndex,
    journal: Journal,
    snapshot: PathBuf,
    /// Checkpoint automatically once this many frames have been appended
    /// since the last checkpoint (`None` = never — the default, because
    /// callers whose journal is the canonical document list, e.g. cluster
    /// shards, must not have it compacted away beneath them).
    auto_compact_frames: Option<u64>,
    /// Frames appended since the last checkpoint (or open).
    frames_since_checkpoint: u64,
    /// The error from the last failed auto-compaction, if any. The
    /// triggering mutation itself was already durable and applied, so the
    /// failure is parked here instead of failing the mutation; the next
    /// mutation retries the compaction.
    pending_compaction_error: Option<StorageError>,
}

impl DurableIndex {
    /// Establishes durable state at `snapshot`: writes the index there
    /// atomically and creates a fresh sidecar journal
    /// ([`journal_path`]`(snapshot)`).
    pub fn create(snapshot: &Path, index: LsiIndex) -> Result<Self, StorageError> {
        write_index_atomic(snapshot, &index)?;
        let journal = Journal::create(&journal_path(snapshot))?;
        Ok(Self {
            index,
            journal,
            snapshot: snapshot.to_path_buf(),
            auto_compact_frames: None,
            frames_since_checkpoint: 0,
            pending_compaction_error: None,
        })
    }

    /// Recovers durable state from `snapshot` and its sidecar journal:
    /// loads the snapshot, scans the journal (truncating a torn or corrupt
    /// tail), and replays every record whose sequence number is at or past
    /// the snapshot's document count. A missing journal is treated as
    /// empty and recreated.
    ///
    /// Crash damage is never an error here — any prefix of acknowledged
    /// bytes recovers to a valid index. Errors mean the snapshot itself is
    /// unreadable (surface those; the snapshot has its own CRC) or the
    /// journal file belongs to a different format entirely.
    pub fn open_durable(snapshot: &Path) -> Result<(Self, RecoveryReport), StorageError> {
        let (durable, report, _) = Self::open_durable_with_records(snapshot)?;
        Ok((durable, report))
    }

    /// [`open_durable`](Self::open_durable), additionally returning the
    /// intact journal records so callers that keep state *alongside* the
    /// index (e.g. a shard's local→global document-id map, reconstructed
    /// from [`MutationRecord::AddVector`] ids) can rebuild it from the
    /// exact record list the replay saw.
    pub fn open_durable_with_records(
        snapshot: &Path,
    ) -> Result<(Self, RecoveryReport, Vec<MutationRecord>), StorageError> {
        let file = File::open(snapshot)?;
        let total_len = file.metadata()?.len();
        let mut reader = std::io::BufReader::new(file);
        // Tolerant open: degradable-section damage in a v3 snapshot
        // quarantines the section (reported below) instead of failing the
        // whole recovery; the journal replays over the degraded index.
        let (mut index, damage) = storage::open_index_tolerant(&mut reader, Some(total_len))?;
        let snapshot_docs = index.n_docs();
        let (journal, recovery) = Journal::open(&journal_path(snapshot))?;
        let mut report = RecoveryReport {
            snapshot_docs,
            frames_read: recovery.records.len(),
            frames_replayed: 0,
            frames_skipped: 0,
            frames_dropped: 0,
            truncated_bytes: recovery.truncated_bytes,
            truncation: recovery.truncation,
            quarantined: damage.iter().map(|d| d.section).collect(),
        };
        for (i, record) in recovery.records.iter().enumerate() {
            let n = index.n_docs() as u64;
            let applied = match record {
                MutationRecord::Checkpoint { seq } => {
                    // `seq > n` means the snapshot this checkpoint refers
                    // to is not the one we loaded — replay cannot bridge
                    // the gap.
                    (*seq <= n).then_some(false)
                }
                MutationRecord::FoldIn { seq, terms }
                | MutationRecord::AddDocument { seq, terms, .. } => {
                    if *seq < n {
                        Some(false)
                    } else if *seq == n && index.try_add_document(terms).is_ok() {
                        Some(true)
                    } else {
                        None
                    }
                }
                MutationRecord::AddVector { seq, coords, .. } => {
                    if *seq < n {
                        Some(false)
                    } else if *seq == n && index.add_document_vector(coords).is_ok() {
                        Some(true)
                    } else {
                        None
                    }
                }
                MutationRecord::Retire { seq, doc } => {
                    if *seq <= n && index.retire_document(*doc as usize).is_ok() {
                        Some(true)
                    } else {
                        None
                    }
                }
            };
            match applied {
                Some(true) => report.frames_replayed += 1,
                Some(false) => report.frames_skipped += 1,
                None => {
                    report.frames_dropped = recovery.records.len() - i;
                    report
                        .truncation
                        .get_or_insert(TruncationCause::SequenceGap);
                    break;
                }
            }
        }
        let replay_len = recovery.records.len() - report.frames_dropped;
        let mut records = recovery.records;
        records.truncate(replay_len);
        // A basis-only snapshot (zero document rows) quarantining
        // `doc-vectors` loses nothing: every row the index now holds was
        // reconstructed by the replay above, so the quarantine is lifted.
        if snapshot_docs == 0 && report.quarantined.contains(&SectionId::DocVectors) {
            report.quarantined.retain(|s| *s != SectionId::DocVectors);
            let remaining: Vec<SectionId> = index
                .quarantined_sections()
                .iter()
                .copied()
                .filter(|s| *s != SectionId::DocVectors)
                .collect();
            index.set_quarantined(remaining);
        }
        Ok((
            Self {
                index,
                journal,
                snapshot: snapshot.to_path_buf(),
                auto_compact_frames: None,
                // Replayed frames count toward the next auto-compaction:
                // a long journal tail is exactly the replay cost a
                // compaction bound exists to cap.
                frames_since_checkpoint: replay_len as u64,
                pending_compaction_error: None,
            },
            report,
            records,
        ))
    }

    /// The live index (read-only; mutate through
    /// [`add_document`](Self::add_document)).
    pub fn index(&self) -> &LsiIndex {
        &self.index
    }

    /// The snapshot path this durable state is anchored to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot
    }

    /// The sidecar journal path.
    pub fn journal_file(&self) -> &Path {
        self.journal.path()
    }

    /// Durably folds in a document: validates the terms, appends a
    /// [`MutationRecord::FoldIn`] frame (fsynced), and only then applies
    /// the mutation in memory. Returns the new document's id.
    ///
    /// On a storage error the in-memory index is untouched — the caller
    /// must not acknowledge the mutation.
    pub fn add_document(&mut self, terms: &[(usize, f64)]) -> Result<usize, DurabilityError> {
        self.index.validate_query(terms)?;
        let seq = self.index.n_docs() as u64;
        self.journal.append(&MutationRecord::FoldIn {
            seq,
            terms: terms.to_vec(),
        })?;
        let id = self.index.add_document(terms);
        self.note_mutation();
        Ok(id)
    }

    /// Durably appends a document by its already-computed LSI-space
    /// coordinates (the sharding transplant path): validates the vector,
    /// appends a [`MutationRecord::AddVector`] frame carrying `doc_id` and
    /// the bit-exact coordinates (fsynced), and only then applies the
    /// mutation in memory. Returns the new document's local id.
    pub fn add_document_vector(
        &mut self,
        doc_id: &str,
        coords: &[f64],
    ) -> Result<usize, DurabilityError> {
        if coords.len() != self.index.rank() {
            return Err(DurabilityError::Index(
                BadQuery::WrongDimension {
                    got: coords.len(),
                    expected: self.index.rank(),
                }
                .into(),
            ));
        }
        if coords.iter().any(|x| !x.is_finite()) {
            return Err(DurabilityError::Index(BadQuery::NonFiniteQuery.into()));
        }
        let seq = self.index.n_docs() as u64;
        self.journal.append(&MutationRecord::AddVector {
            seq,
            doc_id: doc_id.to_string(),
            coords: coords.to_vec(),
        })?;
        // Length and finiteness were checked above; apply cannot fail.
        let id = self.index.add_document_vector(coords)?;
        self.note_mutation();
        Ok(id)
    }

    /// Durably retires document `doc`: appends a
    /// [`MutationRecord::Retire`] frame (fsynced), then zeroes the live
    /// representation so cosine scans skip it. The id stays allocated.
    pub fn retire_document(&mut self, doc: usize) -> Result<(), DurabilityError> {
        if doc >= self.index.n_docs() {
            return Err(DurabilityError::Index(
                BadQuery::DocOutOfRange {
                    doc,
                    n_docs: self.index.n_docs(),
                }
                .into(),
            ));
        }
        self.journal.append(&MutationRecord::Retire {
            seq: self.index.n_docs() as u64,
            doc: doc as u64,
        })?;
        self.index.retire_document(doc)?;
        self.note_mutation();
        Ok(())
    }

    /// Journals a [`MutationRecord::Retire`] frame (fsynced) **without**
    /// zeroing the live representation. For callers that keep their own
    /// visibility map above the index (sharded serving): the document
    /// must become invisible through that map, while the live row stays
    /// intact so queries already scoring against it stay consistent. On
    /// replay the retirement *is* applied, which matches — a reopened
    /// index has no in-flight readers.
    pub fn log_retire(&mut self, doc: usize) -> Result<(), DurabilityError> {
        if doc >= self.index.n_docs() {
            return Err(DurabilityError::Index(
                BadQuery::DocOutOfRange {
                    doc,
                    n_docs: self.index.n_docs(),
                }
                .into(),
            ));
        }
        self.journal.append(&MutationRecord::Retire {
            seq: self.index.n_docs() as u64,
            doc: doc as u64,
        })?;
        self.note_mutation();
        Ok(())
    }

    /// Rotates the sidecar journal down to an explicit record list
    /// ([`Journal::rotate_with`]) without touching the snapshot. This is
    /// the compaction path for durable state whose snapshot is an
    /// immutable basis and whose journal is the canonical document list
    /// (sharded serving); the caller supplies a state dump whose replay
    /// over the snapshot reproduces the live index.
    pub fn rotate_journal_with(&mut self, records: &[MutationRecord]) -> Result<(), StorageError> {
        self.journal.rotate_with(records)
    }

    /// Compacts durable state: atomically rewrites the snapshot from the
    /// live index, then rotates the journal down to a single checkpoint
    /// frame. Logically a no-op — a crash at any point leaves a state that
    /// recovers to exactly the live index (old snapshot + old journal, or
    /// new snapshot + old journal with every frame skipped, or new
    /// snapshot + rotated journal).
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        // A checkpoint of a quarantined index would bake the degraded
        // (zeroed) state into the new snapshot and rotate away the very
        // journal a rebuild needs. Repair first:
        // [`rebuild_quarantined`](Self::rebuild_quarantined).
        if let Some(&section) = self.index.quarantined_sections().first() {
            return Err(StorageError::DamagedSection { section });
        }
        write_index_atomic(&self.snapshot, &self.index)?;
        self.journal.rotate(self.index.n_docs() as u64)?;
        self.frames_since_checkpoint = 0;
        self.pending_compaction_error = None;
        Ok(())
    }

    /// Enables (or disables, with `None`) automatic checkpoint compaction:
    /// once `frames` mutations have accumulated since the last checkpoint,
    /// the next mutation triggers [`checkpoint`](Self::checkpoint), so
    /// recovery replay cost stays bounded by `frames` regardless of how
    /// long the index lives.
    ///
    /// Off by default, deliberately: a caller whose journal is the
    /// canonical document list rather than a replayable tail (cluster
    /// shards, which pair a basis-only snapshot with an
    /// [`MutationRecord::AddVector`] journal) must never have its journal
    /// rotated down beneath it. Only enable this when the snapshot alone
    /// fully captures the index state.
    ///
    /// # Panics
    /// Panics if `frames` is `Some(0)` — a zero threshold would checkpoint
    /// on every mutation, which is [`checkpoint`](Self::checkpoint) called
    /// directly, not a policy.
    pub fn set_auto_compact(&mut self, frames: Option<u64>) {
        assert!(
            frames != Some(0),
            "auto-compaction threshold must be at least 1"
        );
        self.auto_compact_frames = frames;
    }

    /// Frames appended (or replayed at open) since the last checkpoint —
    /// the journal length the next recovery would have to replay.
    pub fn frames_since_checkpoint(&self) -> u64 {
        self.frames_since_checkpoint
    }

    /// The error from the last failed auto-compaction, if one is pending.
    /// The mutation that triggered it was already durable and applied —
    /// compaction is an optimization, so its failure is parked here (and
    /// retried on the next mutation) instead of failing the mutation.
    pub fn pending_compaction_error(&self) -> Option<&StorageError> {
        self.pending_compaction_error.as_ref()
    }

    /// Bookkeeping after a durably applied mutation: counts the frame and
    /// runs auto-compaction when the policy says so.
    fn note_mutation(&mut self) {
        self.frames_since_checkpoint += 1;
        let Some(limit) = self.auto_compact_frames else {
            return;
        };
        if self.frames_since_checkpoint >= limit {
            if let Err(e) = self.checkpoint() {
                self.pending_compaction_error = Some(e);
            }
        }
    }

    /// Rebuilds a quarantined document-vector section in place and
    /// persists the repair: recomputes every factorization-covered row
    /// from `D_k V_kᵀ` (bitwise identical to the build), re-applies the
    /// retirements in `records` (their zeroed rows were just
    /// resurrected), and checkpoints so the repaired state is durable.
    ///
    /// `records` should be the intact record list returned by
    /// [`open_durable_with_records`](Self::open_durable_with_records):
    /// folded-in rows past the factorization were already recovered by
    /// replaying those records, and their retirements are re-applied
    /// here. Rows whose fold-in frames were compacted away before the
    /// damage are unrecoverable and stay zero (reported in
    /// [`RebuildReport::unrecovered`]).
    ///
    /// Returns `Ok` with the rebuild summary; a quarantined
    /// [`SectionId::DocFactors`] cannot be rebuilt from the same file (it
    /// *is* the rebuild source) and yields
    /// [`StorageError::DamagedSection`] without touching anything.
    pub fn rebuild_quarantined(
        &mut self,
        records: &[MutationRecord],
    ) -> Result<RebuildReport, StorageError> {
        let quarantined = self.index.quarantined_sections();
        if quarantined.contains(&SectionId::DocFactors) {
            // `vt` was the damaged section: there is nothing on this file
            // to rebuild doc vectors from. A full re-index (or a shard
            // re-seed) is the only repair.
            return Err(StorageError::DamagedSection {
                section: SectionId::DocFactors,
            });
        }
        if !quarantined.contains(&SectionId::DocVectors) {
            // No rows to rebuild. The in-memory state is already whole (a
            // quarantined FoldInMeta is derived bookkeeping), so clearing
            // the flags and checkpointing rewrites every section intact.
            self.index.set_quarantined(Vec::new());
            self.checkpoint()?;
            return Ok(RebuildReport {
                rebuilt: 0,
                retires_reapplied: 0,
                unrecovered: 0,
            });
        }

        let rebuilt = self.index.rebuild_doc_vectors();
        let mut retires_reapplied = 0usize;
        for record in records {
            if let MutationRecord::Retire { doc, .. } = record {
                if self.index.retire_document(*doc as usize).is_ok() {
                    retires_reapplied += 1;
                }
            }
        }
        // Folded-in rows beyond the factorization recover only through
        // journal replay; any still-zero row among them was lost to a
        // compacted journal (or was genuinely retired — already counted).
        let retired: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                MutationRecord::Retire { doc, .. } => Some(*doc),
                _ => None,
            })
            .collect();
        let unrecovered = (rebuilt..self.index.n_docs())
            .filter(|&j| {
                !retired.contains(&(j as u64)) && self.index.doc_vector(j).iter().all(|&x| x == 0.0)
            })
            .count();
        // Every repairable section is repaired; clear the remaining flags
        // (e.g. FoldInMeta, which is derived bookkeeping) so the
        // checkpoint below persists a fully intact snapshot.
        self.index.set_quarantined(Vec::new());
        self.checkpoint()?;
        Ok(RebuildReport {
            rebuilt,
            retires_reapplied,
            unrecovered,
        })
    }

    /// Consumes the wrapper, returning the in-memory index.
    pub fn into_index(self) -> LsiIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsiConfig;
    use crate::index::LsiIndex;
    use lsi_ir::TermDocumentMatrix;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsi_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_index() -> LsiIndex {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
                (3, 2, 1.0),
                (3, 3, 2.0),
                (4, 3, 1.0),
                (4, 4, 2.0),
                (5, 4, 1.0),
            ],
        )
        .expect("valid triplets");
        LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("build sample index")
    }

    fn sample_records() -> Vec<MutationRecord> {
        vec![
            MutationRecord::FoldIn {
                seq: 5,
                terms: vec![(0, 1.0), (3, 0.5)],
            },
            MutationRecord::AddDocument {
                seq: 6,
                doc_id: "doc-six".to_string(),
                terms: vec![(1, 2.0)],
            },
            MutationRecord::Checkpoint { seq: 7 },
            MutationRecord::AddVector {
                seq: 7,
                doc_id: "42".to_string(),
                coords: vec![0.25, -1.5, 3.0],
            },
            MutationRecord::Retire { seq: 8, doc: 2 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut bytes = Vec::new();
        for r in sample_records() {
            bytes.extend_from_slice(&encode_frame(&r));
        }
        let (records, valid, cause) = decode_frames(&bytes);
        assert_eq!(records, sample_records());
        assert_eq!(valid, bytes.len());
        assert!(cause.is_none());
    }

    #[test]
    fn torn_tail_truncates_to_frame_boundary() {
        let records = sample_records();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(&records[0]));
        let boundary = bytes.len();
        bytes.extend_from_slice(&encode_frame(&records[1]));
        for cut in (boundary + 1)..bytes.len() {
            let (got, valid, cause) = decode_frames(&bytes[..cut]);
            assert_eq!(got, records[..1], "cut at {cut}");
            assert_eq!(valid, boundary, "cut at {cut}");
            assert!(cause.is_some(), "cut at {cut} should report a cause");
        }
    }

    #[test]
    fn corrupt_byte_never_yields_a_mutated_record() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_frame(r));
        }
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0xFF;
            let (got, _, _) = decode_frames(&dirty);
            assert!(
                got.len() <= records.len() && got[..] == records[..got.len()],
                "flip at {i} produced a non-prefix decode"
            );
        }
    }

    #[test]
    fn journal_lifecycle_append_reopen_rotate() {
        let dir = temp_dir("lifecycle");
        let path = dir.join("m.lsij");
        let mut j = Journal::create(&path).expect("create");
        for r in &sample_records() {
            j.append(r).expect("append");
        }
        drop(j);
        let (mut j, rec) = Journal::open(&path).expect("open");
        assert_eq!(rec.records, sample_records());
        assert_eq!(rec.truncated_bytes, 0);
        j.rotate(9).expect("rotate");
        drop(j);
        let (_, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.records, vec![MutationRecord::Checkpoint { seq: 9 }]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_truncates_torn_tail_on_disk() {
        let dir = temp_dir("torn");
        let path = dir.join("m.lsij");
        let mut j = Journal::create(&path).expect("create");
        j.append(&sample_records()[0]).expect("append");
        drop(j);
        // Simulate a torn second frame: append half of one.
        let frame = encode_frame(&sample_records()[1]);
        let mut bytes = std::fs::read(&path).expect("read");
        let clean_len = bytes.len();
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&path, &bytes).expect("write torn");
        let (_, rec) = Journal::open(&path).expect("open torn");
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.truncation, Some(TruncationCause::TornFrame));
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            clean_len as u64,
            "torn tail must be physically truncated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_torn_header_recreate() {
        let dir = temp_dir("header");
        let path = dir.join("m.lsij");
        let (_, rec) = Journal::open(&path).expect("open missing");
        assert!(rec.created);
        std::fs::write(&path, b"LSI").expect("torn header");
        let (_, rec) = Journal::open(&path).expect("open torn header");
        assert!(rec.created);
        std::fs::write(&path, b"NOPEnope").expect("foreign file");
        assert!(matches!(Journal::open(&path), Err(StorageError::BadMagic)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_index_mutate_checkpoint_reopen() {
        let dir = temp_dir("durable");
        let snapshot = dir.join("index.lsix");
        let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
        let base = d.index().n_docs();
        d.add_document(&[(0, 1.0), (2, 0.5)]).expect("add 1");
        d.add_document(&[(1, 1.0)]).expect("add 2");
        let live = d.index().n_docs();
        assert_eq!(live, base + 2);

        // Reopen without checkpoint: journal replay restores both.
        let (d2, report) = DurableIndex::open_durable(&snapshot).expect("reopen");
        assert_eq!(d2.index().n_docs(), live);
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.frames_dropped, 0);
        drop(d2);

        // Checkpoint, then reopen: everything comes from the snapshot.
        d.checkpoint().expect("checkpoint");
        let (d3, report) = DurableIndex::open_durable(&snapshot).expect("reopen 2");
        assert_eq!(d3.index().n_docs(), live);
        assert_eq!(report.snapshot_docs, live);
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(report.frames_skipped, 1, "checkpoint marker is skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_rotation_tmp() {
        let dir = temp_dir("sweep");
        let path = dir.join("m.lsij");
        let mut j = Journal::create(&path).expect("create");
        j.append(&sample_records()[0]).expect("append");
        drop(j);
        // A crash between rotation's tmp write and its rename leaves a
        // stale sibling; open must sweep it (the rotation was never
        // acknowledged) and keep the real journal intact.
        let tmp = journal_tmp_path(&path);
        std::fs::write(&tmp, b"half a rotation").expect("stale tmp");
        let (_, rec) = Journal::open(&path).expect("open");
        assert!(!tmp.exists(), "stale .tmp must be swept on open");
        assert_eq!(rec.records, sample_records()[..1]);
        assert_eq!(rec.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_with_replaces_journal_with_record_list() {
        let dir = temp_dir("rotate_with");
        let path = dir.join("m.lsij");
        let mut j = Journal::create_with(&path, &sample_records()).expect("create_with");
        let compacted = vec![
            MutationRecord::AddVector {
                seq: 0,
                doc_id: "7".to_string(),
                coords: vec![1.0, 0.0],
            },
            MutationRecord::AddVector {
                seq: 1,
                doc_id: "9".to_string(),
                coords: vec![0.0, 1.0],
            },
        ];
        j.rotate_with(&compacted).expect("rotate_with");
        // The handle must keep appending to the *new* inode.
        j.append(&MutationRecord::Retire { seq: 2, doc: 0 })
            .expect("append after rotate");
        drop(j);
        let (_, rec) = Journal::open(&path).expect("reopen");
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[..2], compacted[..]);
        assert_eq!(rec.records[2], MutationRecord::Retire { seq: 2, doc: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_vector_lifecycle_add_retire_reopen() {
        let dir = temp_dir("vector");
        let snapshot = dir.join("index.lsix");
        let index = sample_index();
        let k = index.rank();
        let donor_row: Vec<f64> = index.doc_vector(0).to_vec();
        let mut d = DurableIndex::create(&snapshot, index.basis_clone()).expect("create");
        assert_eq!(d.index().n_docs(), 0, "basis snapshot starts empty");

        let id = d.add_document_vector("100", &donor_row).expect("add");
        assert_eq!(id, 0);
        d.add_document_vector("101", &vec![0.5; k]).expect("add 2");
        d.retire_document(0).expect("retire");
        assert_eq!(d.index().doc_vector(0), vec![0.0; k].as_slice());

        // Bad vectors are rejected before journaling.
        assert!(matches!(
            d.add_document_vector("102", &vec![1.0; k + 1]),
            Err(DurabilityError::Index(_))
        ));
        assert!(matches!(
            d.retire_document(99),
            Err(DurabilityError::Index(_))
        ));

        // Replay restores both documents and the retirement, and returns
        // the record list for sidecar state reconstruction.
        let (d2, report, records) =
            DurableIndex::open_durable_with_records(&snapshot).expect("reopen");
        assert_eq!(d2.index().n_docs(), 2);
        assert_eq!(report.frames_replayed, 3);
        assert_eq!(report.frames_dropped, 0);
        assert_eq!(d2.index().doc_vector(0), vec![0.0; k].as_slice());
        assert_eq!(
            d2.index().doc_vector(1),
            vec![0.5; k].as_slice(),
            "transplanted bits must survive replay verbatim"
        );
        assert_eq!(records.len(), 3);
        assert!(matches!(
            &records[0],
            MutationRecord::AddVector { doc_id, .. } if doc_id == "100"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_add_rejects_bad_terms_before_journaling() {
        let dir = temp_dir("reject");
        let snapshot = dir.join("index.lsix");
        let mut d = DurableIndex::create(&snapshot, sample_index()).expect("create");
        let journal_len = std::fs::metadata(d.journal_file()).expect("stat").len();
        let err = d.add_document(&[(999, 1.0)]).expect_err("must reject");
        assert!(matches!(err, DurabilityError::Index(_)));
        assert_eq!(
            std::fs::metadata(d.journal_file()).expect("stat").len(),
            journal_len,
            "rejected mutation must not reach the journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
