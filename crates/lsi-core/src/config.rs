//! LSI build configuration.

use lsi_ir::Weighting;
use lsi_linalg::lanczos::LanczosOptions;
use lsi_linalg::randomized::RandomizedSvdOptions;
use lsi_linalg::solver::{BackendSpec, SolvePlan};

/// Which truncated-SVD algorithm computes the factors.
#[derive(Debug, Clone)]
pub enum SvdBackend {
    /// Dense Golub–Reinsch SVD of the full matrix, then truncate. Exact;
    /// `O(m n min(m,n))` — the right choice for small corpora and tests.
    Dense,
    /// Golub–Kahan–Lanczos on the sparse matrix (the SVDPACK-equivalent
    /// path). The default.
    Lanczos(LanczosOptions),
    /// Randomized range-finder SVD; fastest, slightly less accurate.
    Randomized(RandomizedSvdOptions),
}

impl Default for SvdBackend {
    fn default() -> Self {
        SvdBackend::Lanczos(LanczosOptions::default())
    }
}

impl SvdBackend {
    /// Short stable name for reports and benchmarks.
    pub fn name(&self) -> &'static str {
        match self {
            SvdBackend::Dense => "dense",
            SvdBackend::Lanczos(_) => "lanczos",
            SvdBackend::Randomized(_) => "randomized",
        }
    }

    /// The solver-driver spec equivalent to this backend choice.
    pub fn to_spec(&self) -> BackendSpec {
        match self {
            SvdBackend::Dense => BackendSpec::Dense,
            SvdBackend::Lanczos(o) => BackendSpec::Lanczos(o.clone()),
            SvdBackend::Randomized(o) => BackendSpec::Randomized(o.clone()),
        }
    }

    /// The resilient escalation chain starting from this backend: retries
    /// with escalated options, then the other iterative family, then the
    /// dense last resort (see [`SolvePlan::resilient_from`]).
    pub fn solve_plan(&self) -> SolvePlan {
        SolvePlan::resilient_from(self.to_spec())
    }
}

/// Configuration for building an [`crate::LsiIndex`].
#[derive(Debug, Clone)]
pub struct LsiConfig {
    /// Truncation rank `k` — "small enough to enable fast retrieval and
    /// large enough to adequately capture the structure of the corpus" (§2).
    pub rank: usize,
    /// Term-weighting scheme applied to raw counts before the SVD.
    pub weighting: Weighting,
    /// SVD algorithm.
    pub backend: SvdBackend,
}

impl LsiConfig {
    /// A config with the given rank and default weighting/backend.
    pub fn with_rank(rank: usize) -> Self {
        LsiConfig {
            rank,
            weighting: Weighting::Count,
            backend: SvdBackend::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_lanczos() {
        assert_eq!(SvdBackend::default().name(), "lanczos");
    }

    #[test]
    fn with_rank_sets_rank() {
        let c = LsiConfig::with_rank(20);
        assert_eq!(c.rank, 20);
        assert_eq!(c.weighting, Weighting::Count);
    }

    #[test]
    fn backend_names() {
        assert_eq!(SvdBackend::Dense.name(), "dense");
        assert_eq!(
            SvdBackend::Randomized(RandomizedSvdOptions::default()).name(),
            "randomized"
        );
    }
}
