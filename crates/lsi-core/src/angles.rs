//! Pairwise angle statistics — the paper's experimental table.
//!
//! The Section 4 experiment measures "the angle (not some function of the
//! angle such as the cosine) between all pairs of documents in the original
//! space and in the rank 20 LSI space", split into intratopic and intertopic
//! pairs, reporting min / max / average / standard deviation of each.

use lsi_linalg::{vector, Matrix};

/// Summary statistics over a set of angles (radians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleStats {
    /// Smallest angle.
    pub min: f64,
    /// Largest angle.
    pub max: f64,
    /// Mean angle.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of pairs aggregated.
    pub count: usize,
}

impl AngleStats {
    fn from_angles(angles: &[f64]) -> Option<Self> {
        if angles.is_empty() {
            return None;
        }
        let n = angles.len() as f64;
        let mean = angles.iter().sum::<f64>() / n;
        let var = angles.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n;
        Some(AngleStats {
            min: angles.iter().copied().fold(f64::INFINITY, f64::min),
            max: angles.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean,
            std: var.sqrt(),
            count: angles.len(),
        })
    }
}

/// Intratopic and intertopic angle statistics for one representation.
#[derive(Debug, Clone, PartialEq)]
pub struct PairAngleReport {
    /// Statistics over pairs of documents from the same topic.
    pub intratopic: Option<AngleStats>,
    /// Statistics over pairs from different topics.
    pub intertopic: Option<AngleStats>,
}

/// Computes pairwise-angle statistics over documents given as **rows** of
/// `reps`, split by ground-truth label. Unlabeled documents are skipped.
///
/// To reproduce the paper's table, call this twice: once with the columns of
/// the term–document matrix as rows ("original space") and once with the LSI
/// document representations ("LSI space").
pub fn pairwise_angle_stats(reps: &Matrix, labels: &[Option<usize>]) -> PairAngleReport {
    assert_eq!(
        reps.nrows(),
        labels.len(),
        "pairwise_angle_stats: one label per document row"
    );
    let live: Vec<(usize, usize)> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|t| (i, t)))
        .collect();

    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for (a, &(i, ti)) in live.iter().enumerate() {
        for &(j, tj) in &live[a + 1..] {
            let theta = vector::angle(reps.row(i), reps.row(j));
            if ti == tj {
                intra.push(theta);
            } else {
                inter.push(theta);
            }
        }
    }

    PairAngleReport {
        intratopic: AngleStats::from_angles(&intra),
        intertopic: AngleStats::from_angles(&inter),
    }
}

/// Formats a report as the paper's two-row table (radians, 3 significant
/// digits), for the reproduce binary and examples.
pub fn format_report(original: &PairAngleReport, lsi: &PairAngleReport) -> String {
    fn row(label: &str, s: &Option<AngleStats>) -> String {
        match s {
            Some(s) => format!(
                "{label:<16} {:>8.3} {:>8.3} {:>8.4} {:>9.4}",
                s.min, s.max, s.mean, s.std
            ),
            None => format!("{label:<16} {:>8} {:>8} {:>8} {:>9}", "-", "-", "-", "-"),
        }
    }
    let mut out = String::new();
    out.push_str("Intratopic            Min      Max  Average      Std.\n");
    out.push_str(&row("  Original space", &original.intratopic));
    out.push('\n');
    out.push_str(&row("  LSI space", &lsi.intratopic));
    out.push('\n');
    out.push_str("Intertopic            Min      Max  Average      Std.\n");
    out.push_str(&row("  Original space", &original.intertopic));
    out.push('\n');
    out.push_str(&row("  LSI space", &lsi.intertopic));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn stats_of_known_angles() {
        // Three docs: two parallel (topic 0), one orthogonal (topic 1).
        let reps = m(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 1.0]]);
        let labels = vec![Some(0), Some(0), Some(1)];
        let r = pairwise_angle_stats(&reps, &labels);
        let intra = r.intratopic.unwrap();
        assert_eq!(intra.count, 1);
        assert!(intra.mean.abs() < 1e-12);
        let inter = r.intertopic.unwrap();
        assert_eq!(inter.count, 2);
        assert!((inter.mean - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(inter.std.abs() < 1e-12);
    }

    #[test]
    fn empty_classes_are_none() {
        let reps = m(&[&[1.0], &[1.0]]);
        let r = pairwise_angle_stats(&reps, &[Some(0), Some(0)]);
        assert!(r.intratopic.is_some());
        assert!(r.intertopic.is_none());
    }

    #[test]
    fn unlabeled_skipped() {
        let reps = m(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let r = pairwise_angle_stats(&reps, &[Some(0), Some(1), None]);
        assert_eq!(r.intertopic.unwrap().count, 1);
        assert!(r.intratopic.is_none());
    }

    #[test]
    fn min_max_ordering() {
        let reps = m(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]);
        let labels = vec![Some(0), Some(0), Some(0)];
        let s = pairwise_angle_stats(&reps, &labels).intratopic.unwrap();
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert_eq!(s.count, 3);
        assert!((s.min - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((s.max - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn format_report_contains_rows() {
        let reps = m(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = pairwise_angle_stats(&reps, &[Some(0), Some(1)]);
        let text = format_report(&r, &r);
        assert!(text.contains("Intratopic"));
        assert!(text.contains("Intertopic"));
        assert!(text.contains("LSI space"));
        // Intratopic side is empty here → dashes.
        assert!(text.contains('-'));
    }
}
