//! On-disk persistence for LSI indexes.
//!
//! The SVD is the expensive step of LSI ("at the expense of some
//! considerable preprocessing", §1); a deployable system computes it once
//! and serves many queries. This module defines a small, versioned,
//! self-describing binary format:
//!
//! ```text
//! magic "LSIX" | version u32 | weighting u8 | rank u32 |
//! n_terms u64 | n_docs u64 | n_vt_docs u64 |
//! singular_values  k × f64 |
//! u        (n_terms × k) × f64 row-major |
//! vt       (k × n_vt_docs) × f64 row-major |
//! doc_reps (n_docs × k) × f64 row-major
//! ```
//!
//! All integers and floats are little-endian. Document representations are
//! stored explicitly (not recomputed from `vt`) because
//! [`LsiIndex::add_document`] can fold in documents beyond the build-time
//! factorization — `n_docs ≥ n_vt_docs`. Document norms are recomputed on
//! load. Readers validate magic, version, dimensional consistency, and
//! finiteness, so a truncated or corrupted file yields an error rather than
//! a quietly broken index.

use std::io::{Read, Write};

use lsi_ir::Weighting;
use lsi_linalg::{vector, Matrix, TruncatedSvd};

use crate::config::{LsiConfig, SvdBackend};
use crate::index::LsiIndex;

const MAGIC: &[u8; 4] = b"LSIX";
const VERSION: u32 = 1;

/// Errors from reading or writing an index file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `LSIX` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// An unknown weighting tag.
    UnknownWeighting(u8),
    /// Declared dimensions are inconsistent or implausibly large.
    BadDimensions(String),
    /// A stored float is NaN or infinite.
    CorruptData,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an LSI index file (bad magic)"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::UnknownWeighting(t) => write!(f, "unknown weighting tag {t}"),
            StorageError::BadDimensions(d) => write!(f, "bad dimensions: {d}"),
            StorageError::CorruptData => write!(f, "corrupt data (non-finite value)"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

fn weighting_tag(w: Weighting) -> u8 {
    match w {
        Weighting::Count => 0,
        Weighting::Binary => 1,
        Weighting::LogTf => 2,
        Weighting::TfIdf => 3,
        Weighting::LogEntropy => 4,
    }
}

fn weighting_from_tag(t: u8) -> Result<Weighting, StorageError> {
    Ok(match t {
        0 => Weighting::Count,
        1 => Weighting::Binary,
        2 => Weighting::LogTf,
        3 => Weighting::TfIdf,
        4 => Weighting::LogEntropy,
        other => return Err(StorageError::UnknownWeighting(other)),
    })
}

fn write_f64s<W: Write>(w: &mut W, xs: &[f64]) -> Result<(), StorageError> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f64s<R: Read>(r: &mut R, count: usize) -> Result<Vec<f64>, StorageError> {
    // Cap the up-front allocation: a crafted header must not force a huge
    // allocation before any payload bytes have been validated.
    let mut out = Vec::with_capacity(count.min(1 << 16));
    let mut buf = [0u8; 8];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        let x = f64::from_le_bytes(buf);
        if !x.is_finite() {
            return Err(StorageError::CorruptData);
        }
        out.push(x);
    }
    Ok(out)
}

/// Serializes an index to any writer.
pub fn write_index<W: Write>(w: &mut W, index: &LsiIndex) -> Result<(), StorageError> {
    let f = index.factors();
    let k = index.rank();
    let n = index.n_terms();
    let m_docs = index.n_docs(); // may exceed vt's columns after add_document
    let m_vt = f.vt.ncols();

    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[weighting_tag(index.config().weighting)])?;
    w.write_all(&(k as u32).to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&(m_docs as u64).to_le_bytes())?;
    w.write_all(&(m_vt as u64).to_le_bytes())?;
    write_f64s(w, &f.singular_values)?;
    write_f64s(w, f.u.as_slice())?;
    write_f64s(w, f.vt.as_slice())?;
    write_f64s(w, index.doc_representations().as_slice())?;
    Ok(())
}

/// Deserializes an index from any reader.
///
/// The loaded index reports [`SvdBackend::Dense`] as its backend (the
/// factors are already computed; the backend only matters at build time).
pub fn read_index<R: Read>(r: &mut R) -> Result<LsiIndex, StorageError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let weighting = weighting_from_tag(tag[0])?;
    r.read_exact(&mut u32buf)?;
    let k = u32::from_le_bytes(u32buf) as usize;
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let m_docs = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let m_vt = u64::from_le_bytes(u64buf) as usize;

    // Sanity caps: reject absurd headers (≈1 GiB per array at most).
    const MAX_ELEMS: usize = 1 << 27;
    if k == 0
        || n == 0
        || m_vt == 0
        || m_docs < m_vt
        || k > n.min(m_vt)
        || n.saturating_mul(k) > MAX_ELEMS
        || m_vt.saturating_mul(k) > MAX_ELEMS
        || m_docs.saturating_mul(k) > MAX_ELEMS
    {
        return Err(StorageError::BadDimensions(format!(
            "k={k}, n_terms={n}, n_docs={m_docs}, n_vt_docs={m_vt}"
        )));
    }

    let singular_values = read_f64s(r, k)?;
    if singular_values.iter().any(|&s| s < 0.0) {
        return Err(StorageError::CorruptData);
    }
    let u_data = read_f64s(r, n * k)?;
    let vt_data = read_f64s(r, k * m_vt)?;
    let rep_data = read_f64s(r, m_docs * k)?;

    let u = Matrix::from_vec(n, k, u_data)
        .map_err(|e| StorageError::BadDimensions(e.to_string()))?;
    let vt = Matrix::from_vec(k, m_vt, vt_data)
        .map_err(|e| StorageError::BadDimensions(e.to_string()))?;
    let doc_reps = Matrix::from_vec(m_docs, k, rep_data)
        .map_err(|e| StorageError::BadDimensions(e.to_string()))?;

    let factors = TruncatedSvd {
        u,
        singular_values,
        vt,
    };
    let doc_norms: Vec<f64> = (0..m_docs).map(|j| vector::norm(doc_reps.row(j))).collect();

    Ok(LsiIndex::from_parts(
        factors,
        doc_reps,
        doc_norms,
        LsiConfig {
            rank: k,
            weighting,
            backend: SvdBackend::Dense,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_ir::TermDocumentMatrix;

    fn sample_index() -> LsiIndex {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (2, 2, 3.0),
                (3, 2, 1.0),
                (2, 3, 2.0),
                (4, 4, 1.0),
                (5, 4, 2.0),
            ],
        )
        .unwrap();
        LsiIndex::build(
            &td,
            LsiConfig {
                rank: 3,
                weighting: Weighting::LogTf,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let idx = sample_index();
        let mut buf = Vec::new();
        write_index(&mut buf, &idx).unwrap();
        let loaded = read_index(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.rank(), idx.rank());
        assert_eq!(loaded.n_terms(), idx.n_terms());
        assert_eq!(loaded.n_docs(), idx.n_docs());
        assert_eq!(loaded.config().weighting, Weighting::LogTf);
        assert_eq!(loaded.singular_values(), idx.singular_values());
        // Query behaviour is identical.
        let q = vec![(0usize, 1.0), (1, 2.0)];
        let a = idx.query(&q, 5);
        let b = loaded.query(&q, 5);
        assert_eq!(a.doc_ids(), b.doc_ids());
        for (x, y) in a.hits().iter().zip(b.hits()) {
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_unknown_weighting() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        buf[8] = 42;
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::UnknownWeighting(42))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        for cut in [3usize, 10, 20, buf.len() / 2, buf.len() - 1] {
            let r = read_index(&mut buf[..cut].to_vec().as_slice());
            assert!(r.is_err(), "accepted a file truncated at {cut}");
        }
    }

    #[test]
    fn rejects_nan_payload() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        // Overwrite the first singular value with NaN.
        let offset = 4 + 4 + 1 + 4 + 8 + 8 + 8;
        buf[offset..offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::CorruptData)
        ));
    }

    #[test]
    fn round_trip_preserves_folded_in_documents() {
        let mut idx = sample_index();
        // Fold in a new document after the build.
        let new_id = idx.add_document(&[(0usize, 3.0), (1, 1.0)]);
        let mut buf = Vec::new();
        write_index(&mut buf, &idx).unwrap();
        let loaded = read_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_docs(), idx.n_docs());
        // The folded document's representation survives byte-for-byte.
        assert_eq!(loaded.doc_vector(new_id), idx.doc_vector(new_id));
        // And it is still searchable in the loaded index.
        let hits = loaded.query(&[(0, 1.0)], loaded.n_docs());
        assert!(hits.doc_ids().contains(&new_id));
    }

    #[test]
    fn rejects_absurd_dimensions() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        // Claim 2^40 terms.
        let offset = 4 + 4 + 1 + 4;
        buf[offset..offset + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::BadDimensions(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let idx = sample_index();
        let path = std::env::temp_dir().join("lsi_storage_test.lsix");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_index(&mut f, &idx).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let loaded = read_index(&mut f).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        std::fs::remove_file(&path).ok();
    }
}
