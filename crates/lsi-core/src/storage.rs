//! On-disk persistence for LSI indexes.
//!
//! The SVD is the expensive step of LSI ("at the expense of some
//! considerable preprocessing", §1); a deployable system computes it once
//! and serves many queries. This module defines a small, versioned,
//! self-describing binary format. The current version (3) is *sectioned*:
//! a CRC'd offset directory indexes independently length-prefixed,
//! independently CRC-trailed sections (see [`crate::sections`] for the
//! exact layout and the quarantine policy), so corruption is localized and
//! large indexes can be opened lazily ([`crate::lazy`]). Legacy layouts:
//!
//! ```text
//! v1/v2: magic "LSIX" | version u32 | weighting u8 | rank u32 |
//!        n_terms u64 | n_docs u64 | n_vt_docs u64 |
//!        singular_values  k × f64 |
//!        u        (n_terms × k) × f64 row-major |
//!        vt       (k × n_vt_docs) × f64 row-major |
//!        doc_reps (n_docs × k) × f64 row-major
//!        [v2 only: crc32 u32 over every preceding byte]
//! ```
//!
//! All integers and floats are little-endian. Document representations are
//! stored explicitly (not recomputed from `vt`) because
//! [`LsiIndex::add_document`] can fold in documents beyond the build-time
//! factorization — `n_docs ≥ n_vt_docs`. Document norms are recomputed on
//! load. Readers validate magic, version, dimensional consistency, and
//! finiteness, so a truncated or corrupted file yields an error rather than
//! a quietly broken index; when the caller knows the file size
//! ([`read_index_sized`]), every declared length is additionally checked
//! against the bytes actually available *before* anything is allocated.
//!
//! [`write_index`] emits version 3. [`read_index`] reads versions 1–3
//! strictly (any damage is a typed error); [`open_index_tolerant`]
//! additionally offers the v3 degraded partial-open, where damage to a
//! non-essential section quarantines that section instead of failing.

use std::io::{Read, Write};

use lsi_ir::Weighting;
use lsi_linalg::{vector, Matrix, TruncatedSvd};

use crate::config::{LsiConfig, SvdBackend};
use crate::index::LsiIndex;
use crate::iofault::{io_faults, RetryPolicy};
use crate::sections::{self, SectionDamage, SectionId};

pub(crate) const MAGIC: &[u8; 4] = b"LSIX";
/// The monolithic CRC-trailed format (still read, no longer written by
/// default; [`write_index_v2`] keeps it writable for compatibility tests
/// and benchmarks).
const VERSION: u32 = 2;
/// Last format version without the CRC-32 trailer.
const VERSION_NO_CRC: u32 = 1;
/// The sectioned, offset-indexed format written by [`write_index`].
pub(crate) const VERSION_SECTIONED: u32 = 3;

/// Element-count cap per stored array (≈1 GiB of f64s): headers declaring
/// more are rejected before any allocation.
pub(crate) const MAX_ELEMS: usize = 1 << 27;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental IEEE CRC-32 (the polynomial used by zip, gzip, PNG).
///
/// Table-driven, dependency-free; used for the version-2 file trailer and
/// reusable by any container format that embeds this one.
///
/// ```
/// use lsi_core::storage::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finalize(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// A writer adapter that checksums every byte it forwards.
pub struct Crc32Writer<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
}

impl<'a, W: Write> Crc32Writer<'a, W> {
    /// Wraps `inner`; all writes pass through and update the checksum.
    pub fn new(inner: &'a mut W) -> Self {
        Crc32Writer {
            inner,
            crc: Crc32::new(),
        }
    }

    /// The checksum of everything written so far.
    pub fn crc(&self) -> u32 {
        self.crc.finalize()
    }
}

impl<W: Write> Write for Crc32Writer<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that checksums every byte it yields.
pub struct Crc32Reader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<'a, R: Read> Crc32Reader<'a, R> {
    /// Wraps `inner`; all reads pass through and update the checksum.
    pub fn new(inner: &'a mut R) -> Self {
        Crc32Reader {
            inner,
            crc: Crc32::new(),
        }
    }

    /// Feeds already-consumed bytes (e.g. a header parsed before wrapping)
    /// into the checksum as if they had been read through this adapter.
    pub fn absorb(&mut self, bytes: &[u8]) {
        self.crc.update(bytes);
    }

    /// The checksum of everything read so far.
    pub fn crc(&self) -> u32 {
        self.crc.finalize()
    }

    /// The wrapped reader (to read past the checksummed region).
    pub fn inner(&mut self) -> &mut R {
        self.inner
    }
}

impl<R: Read> Read for Crc32Reader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Errors from reading or writing an index file.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `LSIX` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// An unknown weighting tag.
    UnknownWeighting(u8),
    /// Declared dimensions are inconsistent or implausibly large.
    BadDimensions(String),
    /// A stored float is NaN or infinite.
    CorruptData,
    /// The CRC-32 trailer does not match the file contents (bit rot, a
    /// partial overwrite, or tampering).
    ChecksumMismatch {
        /// The checksum stored in the file trailer.
        stored: u32,
        /// The checksum computed over the bytes actually read.
        computed: u32,
    },
    /// A v3 section directory failed its own CRC or describes an
    /// impossible layout. The directory is the map to everything else, so
    /// this damage cannot be isolated — the file is unreadable.
    DamagedDirectory,
    /// A v3 section failed its integrity checks. For essential sections
    /// this fails the open; for degradable ones the tolerant open
    /// quarantines the section instead of erroring.
    DamagedSection {
        /// The damaged section.
        section: SectionId,
    },
    /// The header declares more payload than the file holds: a short read
    /// or a crafted length, caught before any allocation.
    TruncatedFile {
        /// Bytes the header claims the file needs.
        declared: u64,
        /// Bytes actually available.
        available: u64,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an LSI index file (bad magic)"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::UnknownWeighting(t) => write!(f, "unknown weighting tag {t}"),
            StorageError::BadDimensions(d) => write!(f, "bad dimensions: {d}"),
            StorageError::CorruptData => write!(f, "corrupt data (non-finite value)"),
            StorageError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            StorageError::DamagedDirectory => {
                write!(
                    f,
                    "section directory damaged (unrecoverable from this file)"
                )
            }
            StorageError::DamagedSection { section } => {
                write!(f, "section {section} damaged")
            }
            StorageError::TruncatedFile {
                declared,
                available,
            } => write!(
                f,
                "file truncated: header declares {declared} byte(s), only {available} available"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

pub(crate) fn weighting_tag(w: Weighting) -> u8 {
    match w {
        Weighting::Count => 0,
        Weighting::Binary => 1,
        Weighting::LogTf => 2,
        Weighting::TfIdf => 3,
        Weighting::LogEntropy => 4,
    }
}

pub(crate) fn weighting_from_tag(t: u8) -> Result<Weighting, StorageError> {
    Ok(match t {
        0 => Weighting::Count,
        1 => Weighting::Binary,
        2 => Weighting::LogTf,
        3 => Weighting::TfIdf,
        4 => Weighting::LogEntropy,
        other => return Err(StorageError::UnknownWeighting(other)),
    })
}

fn write_f64s<W: Write>(w: &mut W, xs: &[f64]) -> Result<(), StorageError> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f64s<R: Read>(r: &mut R, count: usize) -> Result<Vec<f64>, StorageError> {
    // Cap the up-front allocation: a crafted header must not force a huge
    // allocation before any payload bytes have been validated.
    let mut out = Vec::with_capacity(count.min(1 << 16));
    let mut buf = [0u8; 8];
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        let x = f64::from_le_bytes(buf);
        if !x.is_finite() {
            return Err(StorageError::CorruptData);
        }
        out.push(x);
    }
    Ok(out)
}

/// Decodes a little-endian `u32` from a fixed 4-byte window.
///
/// # Panics
///
/// Panics if `bytes` is not exactly 4 bytes long; call sites pass
/// fixed-width windows of buffers whose length was already checked.
pub(crate) fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("caller passes a 4-byte window"))
}

/// Decodes a little-endian `u64` from a fixed 8-byte window.
///
/// # Panics
///
/// Panics if `bytes` is not exactly 8 bytes long; call sites pass
/// fixed-width windows of buffers whose length was already checked.
pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("caller passes an 8-byte window"))
}

/// Decodes a little-endian `f64` from a fixed 8-byte window.
///
/// # Panics
///
/// Panics if `bytes` is not exactly 8 bytes long; call sites pass
/// fixed-width windows of buffers whose length was already checked.
pub(crate) fn le_f64(bytes: &[u8]) -> f64 {
    f64::from_le_bytes(bytes.try_into().expect("caller passes an 8-byte window"))
}

/// Decodes exactly `count` little-endian f64s from an in-memory payload,
/// rejecting non-finite values. The payload length was validated against
/// `count` by the caller (a CRC-verified section), so this never
/// over-allocates.
pub(crate) fn read_f64s_exact(payload: &[u8], count: usize) -> Result<Vec<f64>, StorageError> {
    debug_assert_eq!(payload.len(), count * 8);
    let mut out = Vec::with_capacity(count.min(payload.len() / 8));
    for chunk in payload.chunks_exact(8) {
        let x = le_f64(chunk);
        if !x.is_finite() {
            return Err(StorageError::CorruptData);
        }
        out.push(x);
    }
    Ok(out)
}

/// Serializes an index to any writer in the current (sectioned, version-3)
/// format. See [`crate::sections`] for the layout.
pub fn write_index<W: Write>(w: &mut W, index: &LsiIndex) -> Result<(), StorageError> {
    sections::write_index_v3(w, index)
}

/// Serializes an index in the legacy monolithic version-2 format (one
/// whole-file CRC-32 trailer). Kept writable so compatibility tests and
/// the open-latency benchmark can produce v2 files; new snapshots should
/// use [`write_index`].
pub fn write_index_v2<W: Write>(w: &mut W, index: &LsiIndex) -> Result<(), StorageError> {
    let f = index.factors();
    let k = index.rank();
    let n = index.n_terms();
    let m_docs = index.n_docs(); // may exceed vt's columns after add_document
    let m_vt = f.vt.ncols();

    let mut cw = Crc32Writer::new(w);
    cw.write_all(MAGIC)?;
    cw.write_all(&VERSION.to_le_bytes())?;
    cw.write_all(&[weighting_tag(index.config().weighting)])?;
    cw.write_all(&(k as u32).to_le_bytes())?;
    cw.write_all(&(n as u64).to_le_bytes())?;
    cw.write_all(&(m_docs as u64).to_le_bytes())?;
    cw.write_all(&(m_vt as u64).to_le_bytes())?;
    write_f64s(&mut cw, &f.singular_values)?;
    write_f64s(&mut cw, f.u.as_slice())?;
    write_f64s(&mut cw, f.vt.as_slice())?;
    write_f64s(&mut cw, index.doc_representations().as_slice())?;
    let crc = cw.crc();
    w.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Writes an index to `path` atomically, mirroring the crash-safe pattern
/// of the CLI's `.lsic` container: the bytes go to a temporary sibling
/// (`<name>.tmp`), are flushed and synced, and only then renamed over the
/// destination — after which the parent directory is synced too, so the
/// rename itself survives a crash. A crash or I/O failure mid-write
/// therefore never destroys an existing index file — at worst it leaves a
/// stale `.tmp`, which the next atomic write cleans up.
pub fn write_index_atomic(path: &std::path::Path, index: &LsiIndex) -> Result<(), StorageError> {
    // Transient I/O faults (EINTR-like hiccups) retry the whole attempt
    // with bounded backoff; each failed attempt removes its .tmp, so every
    // retry starts from the same clean pre-state.
    RetryPolicy::default().run(|| write_index_atomic_once(path, index))
}

fn write_index_atomic_once(path: &std::path::Path, index: &LsiIndex) -> Result<(), StorageError> {
    let tmp = stale_tmp_path(path);
    // A leftover .tmp from a crashed previous writer is dead weight; remove
    // it so this write starts from a clean slate (File::create would
    // truncate anyway, but a failed create should not be masked by it).
    if tmp.exists() {
        let _ = std::fs::remove_file(&tmp);
    }
    let file = std::fs::File::create(&tmp)?;
    let mut w = std::io::BufWriter::new(io_faults::MaybeFaulty::new(file));
    let write_result = write_index(&mut w, index)
        .and_then(|()| w.flush().map_err(StorageError::from))
        .and_then(|()| w.get_ref().inner().sync_all().map_err(StorageError::from));
    if let Err(e) = write_result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StorageError::Io(e)
    })?;
    sync_parent_dir(path)
}

/// Fsyncs the directory containing `path`, making a just-completed rename
/// (or create) of `path` durable: POSIX only guarantees that a rename
/// survives a crash once the *parent directory* has been synced — syncing
/// the file alone pins its bytes, not its name.
///
/// Platform note: on filesystems/OSes where a directory cannot be opened
/// for synchronization (notably Windows), the open fails and this function
/// is a documented no-op — directory metadata there is already as durable
/// as the platform makes it, and failing the write would be strictly worse.
pub fn sync_parent_dir(path: &std::path::Path) -> Result<(), StorageError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    match std::fs::File::open(&parent) {
        Ok(dir) => dir.sync_all().map_err(StorageError::from),
        // Directories are not openable on every platform; treat that as
        // the documented no-op rather than failing an otherwise-complete
        // write.
        Err(_) => Ok(()),
    }
}

/// The temporary sibling used by [`write_index_atomic`]: the destination
/// file name with `.tmp` appended (so `idx.lsix` → `idx.lsix.tmp`).
fn stale_tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Deserializes an index from any reader, strictly: any damage anywhere
/// is a typed error.
///
/// Accepts the sectioned version-3 format, version-2 (whole-file CRC-32
/// trailer, verified), and legacy version-1 files (no trailer). The loaded
/// index reports [`SvdBackend::Dense`] as its backend (the factors are
/// already computed; the backend only matters at build time).
///
/// When the total byte size of the source is known, prefer
/// [`read_index_sized`], which rejects oversized declared lengths before
/// allocating.
pub fn read_index<R: Read>(r: &mut R) -> Result<LsiIndex, StorageError> {
    read_index_sized(r, None)
}

/// [`read_index`] with the source's total byte size: every
/// header-declared payload length is validated against the bytes actually
/// available *before* any allocation, so a short file or a crafted length
/// prefix is a typed [`StorageError::TruncatedFile`] instead of an
/// out-of-memory abort.
pub fn read_index_sized<R: Read>(
    r: &mut R,
    total_len: Option<u64>,
) -> Result<LsiIndex, StorageError> {
    match read_header_version(r)? {
        VERSION_NO_CRC => read_body(r, total_len.map(|t| t.saturating_sub(8))),
        VERSION => {
            let mut cr = Crc32Reader::new(r);
            cr.absorb(MAGIC);
            cr.absorb(&VERSION.to_le_bytes());
            // The v2 trailer consumes 4 of the remaining bytes.
            let remaining = total_len.map(|t| t.saturating_sub(8 + 4));
            let index = read_body(&mut cr, remaining)?;
            let computed = cr.crc();
            let mut trailer = [0u8; 4];
            cr.inner().read_exact(&mut trailer)?;
            let stored = u32::from_le_bytes(trailer);
            if stored != computed {
                return Err(StorageError::ChecksumMismatch { stored, computed });
            }
            Ok(index)
        }
        VERSION_SECTIONED => sections::read_index_v3(r, total_len),
        other => Err(StorageError::UnsupportedVersion(other)),
    }
}

/// Deserializes an index tolerantly: damage to a *degradable* section of a
/// version-3 file quarantines that section (returned as
/// [`SectionDamage`], and marked on the index via
/// [`LsiIndex::quarantined_sections`]) instead of failing the open.
/// Essential-section or directory damage is still a typed error, as is any
/// damage at all in the monolithic v1/v2 formats (they have no sections to
/// isolate).
pub fn open_index_tolerant<R: Read>(
    r: &mut R,
    total_len: Option<u64>,
) -> Result<(LsiIndex, Vec<SectionDamage>), StorageError> {
    match read_header_version(r)? {
        VERSION_SECTIONED => sections::open_index_tolerant_v3(r),
        VERSION => {
            let mut cr = Crc32Reader::new(r);
            cr.absorb(MAGIC);
            cr.absorb(&VERSION.to_le_bytes());
            let remaining = total_len.map(|t| t.saturating_sub(8 + 4));
            let index = read_body(&mut cr, remaining)?;
            let computed = cr.crc();
            let mut trailer = [0u8; 4];
            cr.inner().read_exact(&mut trailer)?;
            let stored = u32::from_le_bytes(trailer);
            if stored != computed {
                return Err(StorageError::ChecksumMismatch { stored, computed });
            }
            Ok((index, Vec::new()))
        }
        VERSION_NO_CRC => Ok((
            read_body(r, total_len.map(|t| t.saturating_sub(8)))?,
            Vec::new(),
        )),
        other => Err(StorageError::UnsupportedVersion(other)),
    }
}

/// Consumes and validates the magic, returning the declared version.
fn read_header_version<R: Read>(r: &mut R) -> Result<u32, StorageError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    Ok(u32::from_le_bytes(u32buf))
}

/// Reads everything after the magic/version header: the weighting tag,
/// dimensions, and factor payload. `remaining` is the byte budget past the
/// magic/version (minus the v2 trailer), when the caller knows it.
fn read_body<R: Read>(r: &mut R, remaining: Option<u64>) -> Result<LsiIndex, StorageError> {
    let mut u32buf = [0u8; 4];
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let weighting = weighting_from_tag(tag[0])?;
    r.read_exact(&mut u32buf)?;
    let k = u32::from_le_bytes(u32buf) as usize;
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let m_docs = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let m_vt = u64::from_le_bytes(u64buf) as usize;

    // Sanity caps: reject absurd headers (≈1 GiB per array at most).
    // `m_vt == 0` with `m_docs == 0` is legal: a basis-only snapshot (the
    // sharding layer's immutable spectral basis, populated later through
    // journal replay). A populated `vt` must still cover the rank.
    if k == 0
        || n == 0
        || m_docs < m_vt
        || k > n
        || (m_vt > 0 && k > m_vt)
        || n.saturating_mul(k) > MAX_ELEMS
        || m_vt.saturating_mul(k) > MAX_ELEMS
        || m_docs.saturating_mul(k) > MAX_ELEMS
    {
        return Err(StorageError::BadDimensions(format!(
            "k={k}, n_terms={n}, n_docs={m_docs}, n_vt_docs={m_vt}"
        )));
    }

    // With a known byte budget, check the declared payload fits *before*
    // allocating anything: a short read or an oversized length prefix is a
    // typed error here, never an OOM abort mid-read.
    if let Some(remaining) = remaining {
        const HEADER: u64 = (1 + 4 + 8 + 8 + 8) as u64;
        let elems = (k + n * k + k * m_vt + m_docs * k) as u64;
        let declared = HEADER + elems * 8;
        if declared > remaining {
            return Err(StorageError::TruncatedFile {
                declared,
                available: remaining,
            });
        }
    }

    let singular_values = read_f64s(r, k)?;
    if singular_values.iter().any(|&s| s < 0.0) {
        return Err(StorageError::CorruptData);
    }
    let u_data = read_f64s(r, n * k)?;
    let vt_data = read_f64s(r, k * m_vt)?;
    let rep_data = read_f64s(r, m_docs * k)?;

    let u =
        Matrix::from_vec(n, k, u_data).map_err(|e| StorageError::BadDimensions(e.to_string()))?;
    let vt = Matrix::from_vec(k, m_vt, vt_data)
        .map_err(|e| StorageError::BadDimensions(e.to_string()))?;
    let doc_reps = Matrix::from_vec(m_docs, k, rep_data)
        .map_err(|e| StorageError::BadDimensions(e.to_string()))?;

    let factors = TruncatedSvd {
        u,
        singular_values,
        vt,
    };
    let doc_norms: Vec<f64> = (0..m_docs).map(|j| vector::norm(doc_reps.row(j))).collect();

    Ok(LsiIndex::from_parts(
        factors,
        doc_reps,
        doc_norms,
        LsiConfig {
            rank: k,
            weighting,
            backend: SvdBackend::Dense,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_ir::TermDocumentMatrix;

    fn sample_index() -> LsiIndex {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (2, 2, 3.0),
                (3, 2, 1.0),
                (2, 3, 2.0),
                (4, 4, 1.0),
                (5, 4, 2.0),
            ],
        )
        .unwrap();
        LsiIndex::build(
            &td,
            LsiConfig {
                rank: 3,
                weighting: Weighting::LogTf,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let idx = sample_index();
        let mut buf = Vec::new();
        write_index(&mut buf, &idx).unwrap();
        let loaded = read_index(&mut buf.as_slice()).unwrap();

        assert_eq!(loaded.rank(), idx.rank());
        assert_eq!(loaded.n_terms(), idx.n_terms());
        assert_eq!(loaded.n_docs(), idx.n_docs());
        assert_eq!(loaded.config().weighting, Weighting::LogTf);
        assert_eq!(loaded.singular_values(), idx.singular_values());
        // Query behaviour is identical.
        let q = vec![(0usize, 1.0), (1, 2.0)];
        let a = idx.query(&q, 5);
        let b = loaded.query(&q, 5);
        assert_eq!(a.doc_ids(), b.doc_ids());
        for (x, y) in a.hits().iter().zip(b.hits()) {
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_unknown_weighting() {
        // v2 layout: the weighting tag sits at a fixed offset. (In v3 the
        // tag lives inside the CRC-protected meta section, so a flipped
        // tag surfaces as section damage before it is ever interpreted.)
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &sample_index()).unwrap();
        buf[8] = 42;
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::UnknownWeighting(42))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let mut buf = Vec::new();
        write_index(&mut buf, &sample_index()).unwrap();
        for cut in [3usize, 10, 20, buf.len() / 2, buf.len() - 1] {
            let r = read_index(&mut buf[..cut].to_vec().as_slice());
            assert!(r.is_err(), "accepted a file truncated at {cut}");
        }
    }

    #[test]
    fn rejects_nan_payload() {
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &sample_index()).unwrap();
        // Overwrite the first singular value with NaN (v2 fixed offsets).
        let offset = 4 + 4 + 1 + 4 + 8 + 8 + 8;
        buf[offset..offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::CorruptData)
        ));
    }

    #[test]
    fn round_trip_preserves_folded_in_documents() {
        let mut idx = sample_index();
        // Fold in a new document after the build.
        let new_id = idx.add_document(&[(0usize, 3.0), (1, 1.0)]);
        let mut buf = Vec::new();
        write_index(&mut buf, &idx).unwrap();
        let loaded = read_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_docs(), idx.n_docs());
        // The folded document's representation survives byte-for-byte.
        assert_eq!(loaded.doc_vector(new_id), idx.doc_vector(new_id));
        // And it is still searchable in the loaded index.
        let hits = loaded.query(&[(0, 1.0)], loaded.n_docs());
        assert!(hits.doc_ids().contains(&new_id));
    }

    #[test]
    fn rejects_absurd_dimensions() {
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &sample_index()).unwrap();
        // Claim 2^40 terms (v2 fixed offsets).
        let offset = 4 + 4 + 1 + 4;
        buf[offset..offset + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::BadDimensions(_))
        ));
    }

    #[test]
    fn v2_files_still_read_back() {
        let idx = sample_index();
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &idx).unwrap();
        let loaded = read_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        assert_eq!(loaded.n_docs(), idx.n_docs());
        let q = vec![(0usize, 1.0), (1, 2.0)];
        assert_eq!(loaded.query(&q, 5).doc_ids(), idx.query(&q, 5).doc_ids());
    }

    #[test]
    fn sized_read_rejects_oversized_length_prefix_before_allocating() {
        let idx = sample_index();
        for v2 in [false, true] {
            let mut buf = Vec::new();
            if v2 {
                write_index_v2(&mut buf, &idx).unwrap();
            } else {
                write_index_v2(&mut buf, &idx).unwrap();
                buf[4..8].copy_from_slice(&1u32.to_le_bytes());
                buf.truncate(buf.len() - 4);
            }
            // Claim far more documents than the file holds — small enough
            // to pass the element cap, so only the size check can refuse.
            let offset = 4 + 4 + 1 + 4 + 8;
            buf[offset..offset + 8].copy_from_slice(&(50_000u64).to_le_bytes());
            let total = buf.len() as u64;
            assert!(
                matches!(
                    read_index_sized(&mut buf.as_slice(), Some(total)),
                    Err(StorageError::TruncatedFile { .. })
                ),
                "v2={v2}: oversized length prefix must be TruncatedFile"
            );
        }
    }

    #[test]
    fn sized_read_accepts_exact_sizes() {
        let idx = sample_index();
        let mut v3 = Vec::new();
        write_index(&mut v3, &idx).unwrap();
        let loaded = read_index_sized(&mut v3.as_slice(), Some(v3.len() as u64)).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        let mut v2 = Vec::new();
        write_index_v2(&mut v2, &idx).unwrap();
        let loaded = read_index_sized(&mut v2.as_slice(), Some(v2.len() as u64)).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
    }

    #[test]
    fn sized_read_rejects_truncated_v3_directory_claims() {
        let idx = sample_index();
        let mut v3 = Vec::new();
        write_index(&mut v3, &idx).unwrap();
        let total = v3.len() as u64;
        // Physically cut the file: the directory's declared extent now
        // exceeds the available bytes.
        assert!(matches!(
            read_index_sized(
                &mut v3[..v3.len() - 10].to_vec().as_slice(),
                Some(total - 10)
            ),
            Err(StorageError::TruncatedFile { .. })
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn rejects_single_bit_flip_via_checksum() {
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &sample_index()).unwrap();
        // Flip a low mantissa bit deep in the doc-representation payload:
        // the float stays finite, so only the checksum can catch it.
        let target = buf.len() - 12; // inside the last f64 before the trailer
        buf[target] ^= 0x01;
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncated_trailer() {
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &sample_index()).unwrap();
        buf.truncate(buf.len() - 2); // payload intact, trailer cut short
        assert!(matches!(
            read_index(&mut buf.as_slice()),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn reads_legacy_version_1_files_without_trailer() {
        let idx = sample_index();
        let mut buf = Vec::new();
        write_index_v2(&mut buf, &idx).unwrap();
        // Rewrite as a v1 file: patch the version field, drop the trailer.
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        buf.truncate(buf.len() - 4);
        let loaded = read_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        assert_eq!(loaded.n_docs(), idx.n_docs());
    }

    #[test]
    fn checksum_error_display_names_both_values() {
        let e = StorageError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("checksum"), "{msg}");
        assert!(
            msg.contains("0x00000001") && msg.contains("0x00000002"),
            "{msg}"
        );
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_tmp() {
        let idx = sample_index();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lsi_atomic_{}.lsix", std::process::id()));
        write_index_atomic(&path, &idx).unwrap();
        assert!(!stale_tmp_path(&path).exists(), "tmp sibling left behind");
        let mut f = std::fs::File::open(&path).unwrap();
        let loaded = read_index(&mut f).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_mid_write_never_destroys_existing_index() {
        // The crash model: a previous writer died after emitting only part
        // of the payload into the .tmp sibling. The destination file must
        // stay valid throughout, and the next atomic write must clean the
        // stale .tmp up and succeed.
        let idx = sample_index();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lsi_atomic_crash_{}.lsix", std::process::id()));
        write_index_atomic(&path, &idx).unwrap();

        // Simulate the crashed writer: a truncated payload in the .tmp.
        let mut full = Vec::new();
        write_index(&mut full, &idx).unwrap();
        let tmp = stale_tmp_path(&path);
        std::fs::write(&tmp, &full[..full.len() / 3]).unwrap();

        // The destination is untouched by the crashed write.
        let mut f = std::fs::File::open(&path).unwrap();
        let loaded = read_index(&mut f).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        // The truncated .tmp itself is unreadable garbage, as expected.
        let mut g = std::fs::File::open(&tmp).unwrap();
        assert!(read_index(&mut g).is_err());

        // A fresh atomic write clears the stale .tmp and installs cleanly.
        let mut idx2 = idx.clone();
        idx2.add_document(&[(0, 1.0)]);
        write_index_atomic(&path, &idx2).unwrap();
        assert!(!tmp.exists(), "stale tmp survived the rewrite");
        let mut f2 = std::fs::File::open(&path).unwrap();
        let reloaded = read_index(&mut f2).unwrap();
        assert_eq!(reloaded.n_docs(), idx.n_docs() + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip() {
        let idx = sample_index();
        let path = std::env::temp_dir().join("lsi_storage_test.lsix");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_index(&mut f, &idx).unwrap();
        }
        let mut f = std::fs::File::open(&path).unwrap();
        let loaded = read_index(&mut f).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        std::fs::remove_file(&path).ok();
    }
}
