//! Bounded, CRC-framed byte envelopes — the journal's framing discipline
//! lifted to a reusable codec for stream transports.
//!
//! The shard RPC transport (`lsi-serve`) speaks the same paranoid wire
//! grammar the write-ahead journal applies to disk bytes: every message is
//! one frame of
//!
//! ```text
//! | len: u32 le | payload: len bytes | crc: u32 le |
//! ```
//!
//! where the CRC-32 covers the length prefix *and* the payload, so neither
//! a flipped length byte nor flipped payload bytes can pass. Decoding is
//! incremental ([`scan_frame`] over an accumulation buffer) so a reader
//! can interleave bounded socket reads with frame scans without ever
//! trusting a declared length: a length prefix above [`MAX_FRAME`] is
//! rejected *before* any allocation, and an incomplete frame allocates
//! nothing at all.
//!
//! # Examples
//!
//! ```
//! use lsi_core::frame::{encode_frame, scan_frame, FrameScan};
//!
//! let wire = encode_frame(b"hello");
//! match scan_frame(&wire).unwrap() {
//!     FrameScan::Complete { payload, consumed } => {
//!         assert_eq!(payload, b"hello");
//!         assert_eq!(consumed, wire.len());
//!     }
//!     FrameScan::Incomplete => unreachable!("whole frame present"),
//! }
//! // A prefix of the wire bytes is merely incomplete, never an error.
//! assert!(matches!(
//!     scan_frame(&wire[..3]).unwrap(),
//!     FrameScan::Incomplete
//! ));
//! ```

use crate::storage::Crc32;

/// Upper bound on one frame payload, rejected before any allocation so a
/// corrupt or hostile length prefix cannot drive memory use (mirrors the
/// journal's cap).
pub const MAX_FRAME: usize = 1 << 24;

/// Frame-level overhead: the `u32` length prefix plus the `u32` CRC
/// trailer.
pub const FRAME_OVERHEAD: usize = 8;

/// Why a byte sequence is not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix declares a payload above [`MAX_FRAME`].
    TooLarge {
        /// The declared payload length.
        len: usize,
        /// The enforced maximum ([`MAX_FRAME`]).
        max: usize,
    },
    /// The CRC-32 trailer does not match the length prefix + payload.
    ChecksumMismatch {
        /// CRC stored in the frame trailer.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload length {len} exceeds the {max}-byte cap")
            }
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Outcome of scanning an accumulation buffer for one complete frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameScan {
    /// A complete, checksum-valid frame sat at the front of the buffer.
    Complete {
        /// The frame's payload bytes.
        payload: Vec<u8>,
        /// Total bytes the frame occupied (drain this many from the
        /// buffer before scanning for the next frame).
        consumed: usize,
    },
    /// The buffer holds only a prefix of a frame; read more bytes and
    /// scan again. Nothing was allocated.
    Incomplete,
}

/// Wraps `payload` in a complete frame: length prefix, payload, CRC-32
/// trailer over both.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME`] bytes — callers own the
/// encode side and must keep messages bounded.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME,
        "frame payload of {} bytes exceeds MAX_FRAME",
        payload.len()
    );
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    frame.extend_from_slice(&crc.finalize().to_le_bytes());
    frame
}

/// Scans the front of `buf` for one complete frame.
///
/// Returns [`FrameScan::Incomplete`] while the buffer holds only a frame
/// prefix (no allocation happens on that path), the decoded payload once
/// the whole frame is present and its checksum holds, or a typed
/// [`FrameError`] when the bytes can never become a valid frame (length
/// above [`MAX_FRAME`], or a checksum mismatch).
///
/// # Errors
/// [`FrameError::TooLarge`] for an over-cap length prefix;
/// [`FrameError::ChecksumMismatch`] when the CRC trailer disagrees with
/// the received length prefix + payload.
pub fn scan_frame(buf: &[u8]) -> Result<FrameScan, FrameError> {
    if buf.len() < 4 {
        return Ok(FrameScan::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    // Bound the declared length before any allocation or arithmetic that
    // depends on it (the S2 discipline: never trust wire lengths).
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME,
        });
    }
    let total = len + FRAME_OVERHEAD;
    if buf.len() < total {
        return Ok(FrameScan::Incomplete);
    }
    let payload = &buf[4..4 + len];
    let stored = u32::from_le_bytes([
        buf[4 + len],
        buf[4 + len + 1],
        buf[4 + len + 2],
        buf[4 + len + 3],
    ]);
    let mut crc = Crc32::new();
    crc.update(&buf[0..4]);
    crc.update(payload);
    let computed = crc.finalize();
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    Ok(FrameScan::Complete {
        payload: payload.to_vec(),
        consumed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_consumed_length() {
        for payload in [&b""[..], b"x", b"a longer payload with bytes \x00\xff"] {
            let wire = encode_frame(payload);
            assert_eq!(wire.len(), payload.len() + FRAME_OVERHEAD);
            match scan_frame(&wire).unwrap() {
                FrameScan::Complete {
                    payload: got,
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, wire.len());
                }
                FrameScan::Incomplete => panic!("complete frame reported incomplete"),
            }
        }
    }

    #[test]
    fn every_strict_prefix_is_incomplete() {
        let wire = encode_frame(b"prefix-sweep");
        for cut in 0..wire.len() {
            assert_eq!(
                scan_frame(&wire[..cut]).unwrap(),
                FrameScan::Incomplete,
                "prefix of {cut} bytes must be incomplete"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_scan() {
        let mut wire = encode_frame(b"one");
        let second = encode_frame(b"two");
        wire.extend_from_slice(&second);
        let FrameScan::Complete { payload, consumed } = scan_frame(&wire).unwrap() else {
            panic!("first frame complete");
        };
        assert_eq!(payload, b"one");
        let FrameScan::Complete { payload, .. } = scan_frame(&wire[consumed..]).unwrap() else {
            panic!("second frame complete");
        };
        assert_eq!(payload, b"two");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = encode_frame(b"ok");
        wire[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            scan_frame(&wire),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let wire = encode_frame(b"flip-sweep payload");
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x01;
            match scan_frame(&bad) {
                Ok(FrameScan::Complete { payload, .. }) => {
                    panic!("flip at {i} decoded as {payload:?}")
                }
                // A flip in the length prefix can shrink/grow the frame:
                // incomplete and too-large are honest outcomes; a checksum
                // mismatch is the usual one.
                Ok(FrameScan::Incomplete) | Err(_) => {}
            }
        }
    }
}
