//! Synonymy analysis (Section 4, "Synonymy").
//!
//! The paper's argument: if two terms have (near-)identical co-occurrence
//! patterns, the corresponding rows and columns of the term–term
//! autocorrelation matrix `A Aᵀ` are nearly identical, so `A Aᵀ` has a very
//! small eigenvalue whose eigenvector is (up to scale) the **difference**
//! `e_a − e_b` of the two term axes. Rank-k LSI keeps only the top of the
//! spectrum and therefore "projects out" this insignificant distinction —
//! the two synonyms collapse onto (nearly) the same point in LSI space.
//!
//! [`analyze_synonym_pair`] quantifies all of this for a concrete pair.

use lsi_linalg::eigen::symmetric_eigen;
use lsi_linalg::{vector, LinalgError, Matrix};

use crate::index::{LsiError, LsiIndex};

/// The spectral evidence for a candidate synonym pair.
#[derive(Debug, Clone)]
pub struct SynonymyReport {
    /// `|cos|` between the normalized difference vector `(e_a − e_b)/√2`
    /// and the single eigenvector of `A Aᵀ` it aligns with best.
    pub alignment: f64,
    /// Index (0 = largest eigenvalue) of that best-aligned eigenvector —
    /// the paper predicts it sits at the **bottom** of the spectrum.
    pub aligned_eigen_index: usize,
    /// Total number of eigenvalues (= number of terms).
    pub spectrum_size: usize,
    /// The eigenvalue of the aligned eigenvector.
    pub aligned_eigenvalue: f64,
    /// The largest eigenvalue, for scale.
    pub top_eigenvalue: f64,
    /// Cosine between the two term vectors in the original term space
    /// (rows of `A`).
    pub original_cosine: f64,
    /// Cosine between the two term vectors in LSI space (rows of `U_k D_k`).
    pub lsi_cosine: f64,
}

impl SynonymyReport {
    /// True when the pair behaves like the paper's synonym model: the
    /// difference direction lives in the bottom `tail_fraction` of the
    /// spectrum with strong alignment, and LSI brings the terms together.
    pub fn confirms_projection(&self, min_alignment: f64, tail_fraction: f64) -> bool {
        let tail_start = (self.spectrum_size as f64 * (1.0 - tail_fraction)).floor() as usize;
        self.alignment >= min_alignment
            && self.aligned_eigen_index >= tail_start
            && self.lsi_cosine >= self.original_cosine - 1e-12
    }
}

/// Analyzes a candidate synonym pair `(term_a, term_b)` against a built LSI
/// index and the dense term–document matrix `a` the index was built from
/// (rows = terms).
///
/// The eigendecomposition of `A Aᵀ` is `O(n³)`; intended for the modest
/// vocabularies of the synonymy experiment, not web-scale corpora.
pub fn analyze_synonym_pair(
    a: &Matrix,
    index: &LsiIndex,
    term_a: usize,
    term_b: usize,
) -> Result<SynonymyReport, LsiError> {
    let n = a.nrows();
    if term_a >= n || term_b >= n || term_a == term_b {
        return Err(LsiError::Linalg(LinalgError::InvalidDimension {
            op: "analyze_synonym_pair",
            detail: format!("invalid term pair ({term_a}, {term_b}) for {n} terms"),
        }));
    }

    // Term–term autocorrelation and its spectrum.
    let gram = a.matmul(&a.transpose())?;
    let eig = symmetric_eigen(&gram, 1e-8 * gram_scale(&gram))?;

    // Normalized difference direction.
    let mut diff = vec![0.0; n];
    diff[term_a] = std::f64::consts::FRAC_1_SQRT_2;
    diff[term_b] = -std::f64::consts::FRAC_1_SQRT_2;

    let mut best = (0usize, 0.0f64);
    for i in 0..eig.eigenvalues.len() {
        let v = eig.eigenvector(i);
        let c = vector::dot(&diff, &v).abs();
        if c > best.1 {
            best = (i, c);
        }
    }

    let original_cosine = vector::cosine(a.row(term_a), a.row(term_b));
    let lsi_cosine = vector::cosine(&index.term_vector(term_a), &index.term_vector(term_b));

    Ok(SynonymyReport {
        alignment: best.1,
        aligned_eigen_index: best.0,
        spectrum_size: eig.eigenvalues.len(),
        aligned_eigenvalue: eig.eigenvalues[best.0],
        top_eigenvalue: eig.eigenvalues.first().copied().unwrap_or(0.0),
        original_cosine,
        lsi_cosine,
    })
}

fn gram_scale(g: &Matrix) -> f64 {
    g.as_slice()
        .iter()
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LsiConfig, SvdBackend};
    use lsi_ir::{TermDocumentMatrix, Weighting};

    /// A corpus where terms 0 and 1 are perfect synonyms: they co-occur with
    /// term 2 identically, and never with term 3's context.
    fn synonym_td() -> TermDocumentMatrix {
        // 4 terms × 6 docs. Docs 0–3 are about the "vehicle" concept and use
        // term 0 ("car") or term 1 ("automobile") interchangeably alongside
        // term 2 ("engine"); docs 4–5 are about term 3 ("galaxy"). The
        // synonyms occur with *small* counts — the paper's assumption that
        // makes their difference eigenvalue land near the bottom.
        TermDocumentMatrix::from_triplets(
            4,
            6,
            &[
                (0, 0, 1.0),
                (2, 0, 3.0),
                (1, 1, 1.0),
                (2, 1, 3.0),
                (0, 2, 1.0),
                (2, 2, 3.0),
                (1, 3, 1.0),
                (2, 3, 3.0),
                (3, 4, 4.0),
                (3, 5, 4.0),
            ],
        )
        .unwrap()
    }

    fn build(td: &TermDocumentMatrix, k: usize) -> LsiIndex {
        LsiIndex::build(
            td,
            LsiConfig {
                rank: k,
                weighting: Weighting::Count,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap()
    }

    #[test]
    fn perfect_synonyms_align_with_trailing_eigenvector() {
        let td = synonym_td();
        let idx = build(&td, 2);
        let a = td.to_dense();
        let r = analyze_synonym_pair(&a, &idx, 0, 1).unwrap();
        // Identical co-occurrence ⇒ difference vector is an exact
        // eigenvector.
        assert!(r.alignment > 0.999, "alignment {}", r.alignment);
        // And it sits in the bottom half of the spectrum.
        assert!(
            r.aligned_eigen_index >= r.spectrum_size / 2,
            "index {} of {}",
            r.aligned_eigen_index,
            r.spectrum_size
        );
        assert!(r.aligned_eigenvalue < 0.1 * r.top_eigenvalue);
    }

    #[test]
    fn lsi_collapses_synonyms() {
        let td = synonym_td();
        let idx = build(&td, 2);
        let a = td.to_dense();
        let r = analyze_synonym_pair(&a, &idx, 0, 1).unwrap();
        // In raw term space "car" and "automobile" never co-occur: cosine 0.
        assert!(r.original_cosine.abs() < 1e-9, "{}", r.original_cosine);
        // In LSI space they collapse onto the same concept direction.
        assert!(r.lsi_cosine > 0.99, "lsi cosine {}", r.lsi_cosine);
        assert!(r.confirms_projection(0.9, 0.5), "{r:?}");
    }

    #[test]
    fn unrelated_terms_do_not_collapse() {
        let td = synonym_td();
        let idx = build(&td, 2);
        let a = td.to_dense();
        let r = analyze_synonym_pair(&a, &idx, 0, 3).unwrap();
        // "car" vs "galaxy": LSI keeps them apart.
        assert!(r.lsi_cosine.abs() < 0.2, "lsi cosine {}", r.lsi_cosine);
    }

    #[test]
    fn rejects_bad_pairs() {
        let td = synonym_td();
        let idx = build(&td, 2);
        let a = td.to_dense();
        assert!(analyze_synonym_pair(&a, &idx, 0, 0).is_err());
        assert!(analyze_synonym_pair(&a, &idx, 0, 99).is_err());
    }
}
