//! Streaming, lazily loaded version-3 snapshots.
//!
//! [`LazySnapshot::open`] reads only the file header, the section
//! directory, and the [`Meta`](crate::sections::SectionId::Meta)
//! dictionary — a few hundred bytes regardless of index size. The
//! expensive sections stream in on first use: the term factors and
//! singular values load (and cache) when the first query folds in, and
//! [`LazySnapshot::query_streaming`] scans the document-vector section in
//! bounded chunks without ever materializing it, verifying the section's
//! CRC before any hit is returned. Open-to-first-query cost is therefore
//! sublinear in index size — proportional to `U_k` plus one streaming
//! pass, never the whole file — and [`LazySnapshot::bytes_read`] exposes
//! the exact byte count so tests can assert it.
//!
//! Scores are bitwise identical to [`LsiIndex::query`] on the same
//! snapshot: the fold-in and cosine loops are the same expressions
//! evaluated in the same order over the same bytes.

use std::io::{Read, Seek, SeekFrom};

use lsi_ir::retrieval::{RankedList, SearchHit};
use lsi_ir::Weighting;
use lsi_linalg::{vector, Matrix};

use crate::index::LsiIndex;
use crate::sections::{MetaSection, SectionDirectory, SectionEntry, SectionId};
use crate::storage::{self, read_f64s_exact, Crc32, StorageError, MAGIC, VERSION_SECTIONED};

/// Rows of the document-vector section scored per streamed chunk. A
/// function of nothing but the format (never of thread count or load), so
/// streamed scans are deterministic by construction.
const ROWS_PER_CHUNK: usize = 512;

/// A reader adapter that counts every byte yielded, so open-cost claims
/// are measurable facts rather than assumptions.
#[derive(Debug)]
struct CountingReader<R> {
    inner: R,
    read: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

impl<R: Seek> Seek for CountingReader<R> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// A version-3 snapshot opened lazily: header, directory, and dictionary
/// up front; everything else streamed (and CRC-verified) on first use.
///
/// Only the sectioned v3 format supports lazy opens — v1/v2 monoliths
/// have no directory to navigate by, so [`LazySnapshot::open`] returns
/// [`StorageError::UnsupportedVersion`] for them and callers fall back to
/// the eager [`read_index`](crate::read_index).
///
/// ```no_run
/// use lsi_core::LazySnapshot;
///
/// let mut snap = LazySnapshot::open_path("index.lsix".as_ref())?;
/// // Only header + directory + dictionary bytes were read so far.
/// let hits = snap.query_streaming(&[(0, 1.0)], 10)?;
/// # Ok::<(), lsi_core::StorageError>(())
/// ```
#[derive(Debug)]
pub struct LazySnapshot<R> {
    src: CountingReader<R>,
    directory: SectionDirectory,
    meta: MetaSection,
    singular_values: Option<Vec<f64>>,
    term_factors: Option<Matrix>,
}

impl LazySnapshot<std::io::BufReader<std::fs::File>> {
    /// Opens the snapshot at `path` lazily.
    pub fn open_path(path: &std::path::Path) -> Result<Self, StorageError> {
        let file = std::fs::File::open(path)?;
        Self::open(std::io::BufReader::new(file))
    }
}

impl<R: Read + Seek> LazySnapshot<R> {
    /// Opens a v3 snapshot, reading only the magic, version, section
    /// directory, and [`Meta`](SectionId::Meta) dictionary section.
    ///
    /// Directory or dictionary damage is a typed error (nothing can be
    /// navigated without them); damage in any *other* section is not even
    /// noticed until that section is first streamed.
    pub fn open(src: R) -> Result<Self, StorageError> {
        let mut src = CountingReader {
            inner: src,
            read: 0,
        };
        let mut header = [0u8; 8];
        src.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = storage::le_u32(&header[4..8]);
        if version != VERSION_SECTIONED {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let directory = SectionDirectory::read_after_version(&mut src)?;
        let mut snap = LazySnapshot {
            src,
            directory,
            meta: MetaSection {
                weighting: Weighting::Count,
                rank: 0,
                n_terms: 0,
                n_docs: 0,
                n_vt_docs: 0,
            },
            singular_values: None,
            term_factors: None,
        };
        let payload = snap.read_section(SectionId::Meta)?;
        snap.meta = MetaSection::decode(&payload)?;
        Ok(snap)
    }

    /// Total bytes read from the underlying source so far (header,
    /// directory, and every streamed section byte).
    pub fn bytes_read(&self) -> u64 {
        self.src.read
    }

    /// The parsed section directory.
    pub fn directory(&self) -> &SectionDirectory {
        &self.directory
    }

    /// Number of terms in the index.
    pub fn n_terms(&self) -> usize {
        self.meta.n_terms
    }

    /// Number of documents in the index (build-time plus folded-in).
    pub fn n_docs(&self) -> usize {
        self.meta.n_docs
    }

    /// The factorization rank `k`.
    pub fn rank(&self) -> usize {
        self.meta.rank
    }

    /// The weighting scheme the index was built with.
    pub fn weighting(&self) -> Weighting {
        self.meta.weighting
    }

    fn entry(&self, id: SectionId) -> Result<SectionEntry, StorageError> {
        self.directory
            .entry(id)
            .copied()
            .ok_or(StorageError::DamagedSection { section: id })
    }

    /// Seeks to a section and reads its whole block, verifying the length
    /// prefix and both CRC copies. Any mismatch is
    /// [`StorageError::DamagedSection`].
    fn read_section(&mut self, id: SectionId) -> Result<Vec<u8>, StorageError> {
        let entry = self.entry(id)?;
        let damaged = StorageError::DamagedSection { section: id };
        self.src.seek(SeekFrom::Start(entry.offset))?;

        let mut prefix = [0u8; 8];
        self.src.read_exact(&mut prefix)?;
        let mut crc = Crc32::new();
        crc.update(&prefix);
        if u64::from_le_bytes(prefix) != entry.len {
            return Err(damaged);
        }
        // The directory's layout validation already bounded `len`, but a
        // lazy reader still never allocates more than it has streamed.
        let len = usize::try_from(entry.len).map_err(|_| StorageError::CorruptData)?;
        let mut payload = Vec::with_capacity(len.min(1 << 16));
        let mut remaining = len;
        let mut chunk = [0u8; 1 << 16];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            self.src.read_exact(&mut chunk[..take])?;
            crc.update(&chunk[..take]);
            payload.extend_from_slice(&chunk[..take]);
            remaining -= take;
        }

        let mut trailer = [0u8; 4];
        self.src.read_exact(&mut trailer)?;
        let stored = u32::from_le_bytes(trailer);
        let computed = crc.finalize();
        if stored != entry.crc || computed != entry.crc {
            return Err(damaged);
        }
        Ok(payload)
    }

    /// The singular values, loading (and caching) them on first call.
    pub fn singular_values(&mut self) -> Result<&[f64], StorageError> {
        if self.singular_values.is_none() {
            let payload = self.read_section(SectionId::SingularValues)?;
            let values = read_f64s_exact(&payload, self.meta.rank)?;
            if values.iter().any(|&s| s < 0.0) {
                return Err(StorageError::CorruptData);
            }
            self.singular_values = Some(values);
        }
        // The branch above guarantees the cache is populated; the fallback
        // keeps this panic-free without an escape hatch.
        Ok(self.singular_values.get_or_insert_with(Vec::new))
    }

    /// The term factor matrix `U_k`, loading (and caching) it on first
    /// call. This is the one large section a query *must* materialize —
    /// every fold-in multiplies through it.
    fn term_factors(&mut self) -> Result<&Matrix, StorageError> {
        if self.term_factors.is_none() {
            let payload = self.read_section(SectionId::TermFactors)?;
            let data = read_f64s_exact(&payload, self.meta.n_terms * self.meta.rank)?;
            let u = Matrix::from_vec(self.meta.n_terms, self.meta.rank, data)
                .map_err(|e| StorageError::BadDimensions(e.to_string()))?;
            self.term_factors = Some(u);
        }
        // The branch above guarantees the cache is populated; the fallback
        // keeps this panic-free without an escape hatch.
        Ok(self.term_factors.get_or_insert_with(|| Matrix::zeros(0, 0)))
    }

    /// Folds a sparse query into LSI space through the streamed `U_k`,
    /// with semantics identical to [`LsiIndex::fold_in`] (out-of-range
    /// term ids and zero weights are skipped).
    pub fn fold_in(&mut self, terms: &[(usize, f64)]) -> Result<Vec<f64>, StorageError> {
        let n_terms = self.meta.n_terms;
        let k = self.meta.rank;
        let u = self.term_factors()?;
        let mut out = vec![0.0; k];
        for &(t, w) in terms {
            if t >= n_terms || w == 0.0 {
                continue;
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o += u[(t, i)] * w;
            }
        }
        Ok(out)
    }

    /// Cosine-ranked retrieval scanning the document-vector section as a
    /// bounded-memory stream, without ever holding the full matrix.
    ///
    /// The scoring loop is the same arithmetic in the same order as
    /// [`LsiIndex::query`], so results are bitwise identical to an eager
    /// open of the same file. The section's CRC is accumulated across the
    /// scan and verified **before** any hit is returned: a damaged
    /// section yields [`StorageError::DamagedSection`] (the caller then
    /// falls back to a tolerant eager open), never silently wrong bits.
    pub fn query_streaming(
        &mut self,
        terms: &[(usize, f64)],
        top_k: usize,
    ) -> Result<RankedList, StorageError> {
        let q = self.fold_in(terms)?;
        let qn = vector::norm(&q);
        let k = self.meta.rank;
        let m = self.meta.n_docs;
        let entry = self.entry(SectionId::DocVectors)?;
        let damaged = StorageError::DamagedSection {
            section: SectionId::DocVectors,
        };
        let row_bytes = k
            .checked_mul(8)
            .and_then(|b| b.checked_mul(m))
            .ok_or(StorageError::CorruptData)?;
        if entry.len != row_bytes as u64 {
            return Err(damaged);
        }

        self.src.seek(SeekFrom::Start(entry.offset))?;
        let mut prefix = [0u8; 8];
        self.src.read_exact(&mut prefix)?;
        let mut crc = Crc32::new();
        crc.update(&prefix);
        if u64::from_le_bytes(prefix) != entry.len {
            return Err(damaged);
        }

        let mut hits: Vec<SearchHit> = Vec::new();
        let chunk_rows = ROWS_PER_CHUNK.max(1);
        let mut buf = vec![0u8; chunk_rows * k.max(1) * 8];
        let mut doc = 0usize;
        while doc < m {
            let rows = chunk_rows.min(m - doc);
            let take = rows * k * 8;
            self.src.read_exact(&mut buf[..take])?;
            crc.update(&buf[..take]);
            if qn > 0.0 {
                let floats = read_f64s_exact(&buf[..take], rows * k)?;
                for r in 0..rows {
                    let row = &floats[r * k..(r + 1) * k];
                    let norm = vector::norm(row);
                    if norm <= 0.0 {
                        continue;
                    }
                    hits.push(SearchHit {
                        doc: doc + r,
                        score: (vector::dot(&q, row) / (qn * norm)).clamp(-1.0, 1.0),
                    });
                }
            }
            doc += rows;
        }

        let mut trailer = [0u8; 4];
        self.src.read_exact(&mut trailer)?;
        let stored = u32::from_le_bytes(trailer);
        if stored != entry.crc || crc.finalize() != entry.crc {
            // The hits computed above may be garbage: discard them.
            return Err(damaged);
        }
        if qn <= 0.0 {
            return Ok(RankedList::default());
        }
        Ok(RankedList::from_hits(hits).truncated(top_k))
    }

    /// Promotes the lazy snapshot to a fully materialized [`LsiIndex`] by
    /// re-reading the file strictly from the start (every section
    /// verified). Counts toward [`LazySnapshot::bytes_read`].
    pub fn load_index(&mut self) -> Result<LsiIndex, StorageError> {
        self.src.seek(SeekFrom::Start(0))?;
        storage::read_index(&mut self.src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LsiConfig;
    use crate::storage::write_index;
    use lsi_ir::TermDocumentMatrix;
    use std::io::Cursor;

    fn sample_index() -> LsiIndex {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (2, 2, 3.0),
                (3, 2, 1.0),
                (2, 3, 2.0),
                (4, 4, 1.0),
                (5, 4, 2.0),
            ],
        )
        .unwrap();
        LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap()
    }

    fn v3_bytes(idx: &LsiIndex) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_index(&mut bytes, idx).unwrap();
        bytes
    }

    #[test]
    fn open_reads_only_header_directory_and_dictionary() {
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        let dir_len = snap.directory().header_len();
        let meta_block = snap.directory().entry(SectionId::Meta).unwrap().block_len();
        assert_eq!(
            snap.bytes_read(),
            dir_len + meta_block,
            "open must read exactly header + directory + dictionary"
        );
        assert!(snap.bytes_read() < bytes.len() as u64 / 2);
        assert_eq!(snap.n_docs(), idx.n_docs());
        assert_eq!(snap.n_terms(), idx.n_terms());
        assert_eq!(snap.rank(), idx.rank());
    }

    #[test]
    fn streaming_query_matches_eager_bitwise() {
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let mut snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        for query in [
            vec![(0usize, 1.0f64), (1, 0.5)],
            vec![(3, 2.0), (5, 1.0)],
            vec![(99_999, 1.0)],
        ] {
            let lazy = snap.query_streaming(&query, 4).unwrap();
            let eager = idx.query(&query, 4);
            assert_eq!(lazy.hits().len(), eager.hits().len());
            for (a, b) in lazy.hits().iter().zip(eager.hits()) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "scores must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn corrupt_doc_vectors_fail_before_hits_escape() {
        let idx = sample_index();
        let mut bytes = v3_bytes(&idx);
        let snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        let entry = *snap.directory().entry(SectionId::DocVectors).unwrap();
        drop(snap);
        // Flip one payload byte: the CRC check must reject the scan.
        bytes[(entry.offset + 8 + entry.len / 2) as usize] ^= 0xFF;
        let mut snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        let err = snap.query_streaming(&[(0, 1.0)], 4).unwrap_err();
        assert!(matches!(
            err,
            StorageError::DamagedSection {
                section: SectionId::DocVectors
            }
        ));
    }

    #[test]
    fn v2_files_are_refused_with_typed_error() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        crate::storage::write_index_v2(&mut bytes, &idx).unwrap();
        assert!(matches!(
            LazySnapshot::open(Cursor::new(&bytes)),
            Err(StorageError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn load_index_promotes_to_full_strict_read() {
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let mut snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        let full = snap.load_index().unwrap();
        assert_eq!(full.n_docs(), idx.n_docs());
        assert_eq!(full.singular_values(), idx.singular_values());
    }

    #[test]
    fn singular_values_stream_on_demand() {
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let mut snap = LazySnapshot::open(Cursor::new(&bytes)).unwrap();
        let before = snap.bytes_read();
        let sv = snap.singular_values().unwrap().to_vec();
        assert_eq!(sv, idx.singular_values());
        assert!(snap.bytes_read() > before);
        let after = snap.bytes_read();
        // Second call is served from cache: no further reads.
        snap.singular_values().unwrap();
        assert_eq!(snap.bytes_read(), after);
    }
}
