//! The δ-skew measure of Section 4.
//!
//! "The rank-k LSI is δ-skewed on the corpus instance C if, for each pair of
//! documents d and d′: v_d · v_d′ ≤ δ‖v_d‖‖v_d′‖ if d and d′ belong to
//! different topics, and v_d · v_d′ ≥ (1 − δ)‖v_d‖‖v_d′‖ if they belong to
//! the same topic."
//!
//! [`measure_skew`] reports the **smallest** δ for which a given document
//! representation is δ-skewed — 0 means perfect topic separation (Theorem 2),
//! and Theorems 3/6 predict δ = O(ε) for ε-separable models.

use lsi_linalg::{vector, Matrix};

/// The measured skew of a labeled document representation.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// The smallest δ such that the representation is δ-skewed.
    pub delta: f64,
    /// Largest intertopic cosine observed (contributes `max cos`).
    pub max_intertopic_cos: f64,
    /// Smallest intratopic cosine observed (contributes `1 − min cos`).
    pub min_intratopic_cos: f64,
    /// Number of intratopic pairs measured.
    pub intratopic_pairs: usize,
    /// Number of intertopic pairs measured.
    pub intertopic_pairs: usize,
}

/// Measures skew over documents given as **rows** of `reps`, with
/// ground-truth labels (unlabeled documents are skipped). Zero-norm
/// documents are skipped too: the definition compares directions, and a
/// zero vector has none.
///
/// Returns `None` when fewer than two labeled documents remain.
pub fn measure_skew(reps: &Matrix, labels: &[Option<usize>]) -> Option<SkewReport> {
    assert_eq!(
        reps.nrows(),
        labels.len(),
        "measure_skew: one label per document row"
    );
    let live: Vec<(usize, usize)> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|t| (i, t)))
        .filter(|&(i, _)| vector::norm(reps.row(i)) > 0.0)
        .collect();
    if live.len() < 2 {
        return None;
    }

    let mut max_inter = f64::NEG_INFINITY;
    let mut min_intra = f64::INFINITY;
    let mut n_intra = 0usize;
    let mut n_inter = 0usize;

    for (a, &(i, ti)) in live.iter().enumerate() {
        for &(j, tj) in &live[a + 1..] {
            let c = vector::cosine(reps.row(i), reps.row(j));
            if ti == tj {
                n_intra += 1;
                min_intra = min_intra.min(c);
            } else {
                n_inter += 1;
                max_inter = max_inter.max(c);
            }
        }
    }

    // δ must dominate both failure modes; a missing class of pairs imposes
    // no constraint.
    let from_inter = if n_inter > 0 { max_inter.max(0.0) } else { 0.0 };
    let from_intra = if n_intra > 0 { 1.0 - min_intra } else { 0.0 };
    Some(SkewReport {
        delta: from_inter.max(from_intra),
        max_intertopic_cos: if n_inter > 0 { max_inter } else { f64::NAN },
        min_intratopic_cos: if n_intra > 0 { min_intra } else { f64::NAN },
        intratopic_pairs: n_intra,
        intertopic_pairs: n_inter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn perfect_separation_is_zero_skew() {
        let reps = m(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 1.0], &[0.0, 3.0]]);
        let labels = vec![Some(0), Some(0), Some(1), Some(1)];
        let r = measure_skew(&reps, &labels).unwrap();
        assert!(r.delta.abs() < 1e-12, "{r:?}");
        assert_eq!(r.intratopic_pairs, 2);
        assert_eq!(r.intertopic_pairs, 4);
    }

    #[test]
    fn intertopic_overlap_raises_delta() {
        // 45° between topics: intertopic cosine ≈ 0.707.
        let reps = m(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let labels = vec![Some(0), Some(1)];
        let r = measure_skew(&reps, &labels).unwrap();
        assert!((r.delta - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn intratopic_spread_raises_delta() {
        // Same topic, 90° apart: 1 − cos = 1.
        let reps = m(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let labels = vec![Some(0), Some(0)];
        let r = measure_skew(&reps, &labels).unwrap();
        assert!((r.delta - 1.0).abs() < 1e-12);
        assert_eq!(r.intertopic_pairs, 0);
        assert!(r.max_intertopic_cos.is_nan());
    }

    #[test]
    fn negative_intertopic_cosines_do_not_reward() {
        // Anti-parallel across topics is still fine (δ from inter = 0).
        let reps = m(&[&[1.0, 0.0], &[-1.0, 0.0]]);
        let labels = vec![Some(0), Some(1)];
        let r = measure_skew(&reps, &labels).unwrap();
        assert_eq!(r.delta, 0.0);
    }

    #[test]
    fn unlabeled_and_zero_docs_skipped() {
        let reps = m(&[&[1.0, 0.0], &[0.0, 0.0], &[0.5, 0.0], &[0.0, 1.0]]);
        let labels = vec![Some(0), Some(0), Some(0), None];
        let r = measure_skew(&reps, &labels).unwrap();
        // Only rows 0 and 2 count: parallel, same topic.
        assert_eq!(r.intratopic_pairs, 1);
        assert_eq!(r.intertopic_pairs, 0);
        assert!(r.delta.abs() < 1e-12);
    }

    #[test]
    fn too_few_documents_is_none() {
        let reps = m(&[&[1.0, 0.0]]);
        assert!(measure_skew(&reps, &[Some(0)]).is_none());
        let reps2 = m(&[&[1.0], &[1.0]]);
        assert!(measure_skew(&reps2, &[None, None]).is_none());
    }

    #[test]
    #[should_panic(expected = "one label per document")]
    fn mismatched_labels_panic() {
        let reps = m(&[&[1.0]]);
        measure_skew(&reps, &[Some(0), Some(1)]);
    }
}
