//! The sectioned `.lsix` version-3 container: corruption isolation by
//! construction.
//!
//! Versions 1 and 2 serialize the index as one monolithic blob; a single
//! flipped byte anywhere makes the whole file unreadable (v2) or silently
//! suspect (v1). Version 3 splits the index into independently framed,
//! independently checksummed sections behind an offset-indexed directory,
//! so damage is *localized*: a corrupt section quarantines that section,
//! not the index.
//!
//! ```text
//! magic "LSIX" | version u32 = 3 |
//! n_sections u32 |
//! n × entry: tag u8 | offset u64 | len u64 | crc u32 |
//! dir_crc u32          (CRC-32 over every preceding byte)
//! then, per entry, at its offset:
//! len u64 | payload (len bytes) | crc u32   (CRC over len prefix + payload)
//! ```
//!
//! Each section's CRC is stored twice — in the directory entry and as the
//! block trailer — and the block's length prefix must agree with the
//! directory, so a reader always knows *which* copy to distrust. The
//! directory itself is CRC-trailed; directory damage is unrecoverable from
//! the same file (there is nothing trustworthy to navigate by) and is a
//! typed error.
//!
//! Section tags and their quarantine policy:
//!
//! | tag | section          | contents                    | on damage |
//! |-----|------------------|-----------------------------|-----------|
//! | 0   | `Meta`           | weighting, rank, dimensions | error     |
//! | 1   | `SingularValues` | `k × f64`                   | error     |
//! | 2   | `TermFactors`    | `U_k`, row-major            | error     |
//! | 3   | `DocFactors`     | `V_kᵀ`, row-major           | quarantine|
//! | 4   | `DocVectors`     | `D_k V_kᵀ` rows + fold-ins  | quarantine|
//! | 5   | `FoldInMeta`     | fold-in bookkeeping         | quarantine|
//!
//! `Meta`, the singular values, and the term factors are *essential*: they
//! are the dictionary of the index (how to interpret every other byte) and
//! the `U_k` basis every query folds in through — without them nothing can
//! be served, so their damage fails the open with
//! [`StorageError::DamagedSection`]. The document-side sections are
//! *degradable*: [`open_index_tolerant`] quarantines them, zeroes the
//! affected rows, and the serving layer answers from the term-space
//! fallback until `lsi recover` rebuilds them from the factors plus the
//! write-ahead journal. Unknown tags are skipped (forward compatibility).
//!
//! All integers and floats are little-endian. Readers never trust a
//! declared length further than they can see: payloads are streamed in
//! bounded chunks, so a corrupt length yields a typed error, not an
//! allocation bomb.

use std::io::Read;

use lsi_ir::Weighting;
use lsi_linalg::{vector, Matrix, TruncatedSvd};

use crate::config::{LsiConfig, SvdBackend};
use crate::index::LsiIndex;
use crate::storage::{
    self, crc32, read_f64s_exact, weighting_from_tag, weighting_tag, Crc32, StorageError, MAGIC,
    MAX_ELEMS, VERSION_SECTIONED,
};

/// A known section of a version-3 snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionId {
    /// Weighting scheme, rank, and dimensions — the dictionary that gives
    /// every other section its meaning. Essential.
    Meta,
    /// The `k` singular values. Essential.
    SingularValues,
    /// The term factor matrix `U_k` (`n_terms × k`), which every query
    /// folds in through. Essential.
    TermFactors,
    /// The document factor matrix `V_kᵀ` (`k × n_vt_docs`). Degradable:
    /// only rebuilds and recomputations need it.
    DocFactors,
    /// The scored document representations (`n_docs × k`, build-time rows
    /// plus fold-ins). Degradable: quarantine falls back to term space.
    DocVectors,
    /// Fold-in bookkeeping (folded-document count, checkpoint sequence).
    /// Degradable: informational only.
    FoldInMeta,
}

/// Every known section, in on-disk order.
pub const SECTION_ORDER: [SectionId; 6] = [
    SectionId::Meta,
    SectionId::SingularValues,
    SectionId::TermFactors,
    SectionId::DocFactors,
    SectionId::DocVectors,
    SectionId::FoldInMeta,
];

impl SectionId {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            SectionId::Meta => 0,
            SectionId::SingularValues => 1,
            SectionId::TermFactors => 2,
            SectionId::DocFactors => 3,
            SectionId::DocVectors => 4,
            SectionId::FoldInMeta => 5,
        }
    }

    /// The section for a tag byte, or `None` for a tag this build does not
    /// know (skipped for forward compatibility).
    pub fn from_tag(tag: u8) -> Option<Self> {
        SECTION_ORDER.into_iter().find(|s| s.tag() == tag)
    }

    /// Human-readable name (used by `lsi inspect` and error messages).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::SingularValues => "singular-values",
            SectionId::TermFactors => "term-factors",
            SectionId::DocFactors => "doc-factors",
            SectionId::DocVectors => "doc-vectors",
            SectionId::FoldInMeta => "foldin-meta",
        }
    }

    /// True when the index cannot open at all without this section.
    pub fn essential(self) -> bool {
        matches!(
            self,
            SectionId::Meta | SectionId::SingularValues | SectionId::TermFactors
        )
    }

    /// True when quarantining this section changes query answers, so a
    /// serving layer must degrade (zeroed document vectors lose the
    /// corpus). [`DocFactors`](Self::DocFactors) and
    /// [`FoldInMeta`](Self::FoldInMeta) damage, by contrast, affects only
    /// rebuilds and bookkeeping — query scoring never touches them.
    pub fn affects_queries(self) -> bool {
        matches!(self, SectionId::DocVectors)
    }
}

impl std::fmt::Display for SectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One directory entry: where a section lives and what its bytes hash to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// The section's on-disk tag (may be unknown to this build).
    pub tag: u8,
    /// Byte offset of the section block (its length prefix) from the start
    /// of the file.
    pub offset: u64,
    /// Payload length in bytes (excluding the 8-byte prefix and 4-byte
    /// trailer).
    pub len: u64,
    /// CRC-32 over the block's length prefix and payload.
    pub crc: u32,
}

impl SectionEntry {
    /// The known section this entry names, if any.
    pub fn id(&self) -> Option<SectionId> {
        SectionId::from_tag(self.tag)
    }

    /// Total on-disk block size: prefix + payload + trailer.
    pub fn block_len(&self) -> u64 {
        8 + self.len + 4
    }
}

/// Bytes of one directory entry on disk.
const ENTRY_BYTES: usize = 1 + 8 + 8 + 4;
/// Directory entries are bounded: this format writes six sections, and a
/// reader must not let a corrupt count drive its allocations.
const MAX_SECTIONS: u32 = 64;
/// A single section may not exceed the element cap's byte size; anything
/// larger is a corrupt or hostile directory, refused before allocation.
const MAX_SECTION_BYTES: u64 = (MAX_ELEMS as u64) * 8;
/// Fixed payload size of the [`SectionId::Meta`] section.
const META_LEN: usize = 1 + 4 + 8 + 8 + 8;
/// Fixed payload size of the [`SectionId::FoldInMeta`] section.
const FOLDIN_LEN: usize = 8 + 8;

/// The parsed section directory of a version-3 file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDirectory {
    entries: Vec<SectionEntry>,
}

impl SectionDirectory {
    /// The entries, in on-disk order.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// The entry for a known section, if present.
    pub fn entry(&self, id: SectionId) -> Option<&SectionEntry> {
        self.entries.iter().find(|e| e.tag == id.tag())
    }

    /// Total header size on disk: magic, version, count, entries, CRC.
    pub fn header_len(&self) -> u64 {
        (4 + 4 + 4 + self.entries.len() * ENTRY_BYTES + 4) as u64
    }

    /// Total file size the directory describes (header plus every block).
    pub fn file_len(&self) -> u64 {
        self.entries
            .iter()
            .map(SectionEntry::block_len)
            .fold(self.header_len(), u64::saturating_add)
    }

    /// Parses the directory from a reader positioned just past the magic
    /// and version fields. Returns the directory; its CRC (which covers
    /// the magic and version too) is verified before anything is trusted.
    pub fn read_after_version<R: Read>(r: &mut R) -> Result<Self, StorageError> {
        let mut crc = Crc32::new();
        crc.update(MAGIC);
        crc.update(&VERSION_SECTIONED.to_le_bytes());

        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf)?;
        crc.update(&u32buf);
        let n_sections = u32::from_le_bytes(u32buf);
        if n_sections == 0 || n_sections > MAX_SECTIONS {
            return Err(StorageError::DamagedDirectory);
        }

        let mut entries = Vec::with_capacity(n_sections as usize);
        let mut buf = [0u8; ENTRY_BYTES];
        for _ in 0..n_sections {
            r.read_exact(&mut buf)?;
            crc.update(&buf);
            entries.push(SectionEntry {
                tag: buf[0],
                offset: storage::le_u64(&buf[1..9]),
                len: storage::le_u64(&buf[9..17]),
                crc: storage::le_u32(&buf[17..21]),
            });
        }
        r.read_exact(&mut u32buf)?;
        if u32::from_le_bytes(u32buf) != crc.finalize() {
            return Err(StorageError::DamagedDirectory);
        }

        let dir = SectionDirectory { entries };
        dir.validate_layout()?;
        Ok(dir)
    }

    /// Rejects directories whose (CRC-valid, therefore possibly hostile)
    /// entries describe an impossible layout: blocks must tile the file
    /// back-to-back after the header, and no section may exceed the
    /// element cap's byte size.
    fn validate_layout(&self) -> Result<(), StorageError> {
        let mut expected = self.header_len();
        for e in &self.entries {
            if e.offset != expected || e.len > MAX_SECTION_BYTES {
                return Err(StorageError::DamagedDirectory);
            }
            expected = expected
                .checked_add(e.block_len())
                .ok_or(StorageError::DamagedDirectory)?;
        }
        Ok(())
    }

    /// Serializes the header (magic, version, count, entries, CRC).
    fn encode_header(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.header_len() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION_SECTIONED.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.push(e.tag);
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// The decoded [`SectionId::Meta`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MetaSection {
    pub weighting: Weighting,
    pub rank: usize,
    pub n_terms: usize,
    pub n_docs: usize,
    pub n_vt_docs: usize,
}

impl MetaSection {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(META_LEN);
        out.push(weighting_tag(self.weighting));
        out.extend_from_slice(&(self.rank as u32).to_le_bytes());
        out.extend_from_slice(&(self.n_terms as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_docs as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_vt_docs as u64).to_le_bytes());
        out
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Self, StorageError> {
        if payload.len() != META_LEN {
            return Err(StorageError::DamagedSection {
                section: SectionId::Meta,
            });
        }
        let weighting = weighting_from_tag(payload[0])?;
        let rank = storage::le_u32(&payload[1..5]) as usize;
        let n_terms = storage::le_u64(&payload[5..13]) as usize;
        let n_docs = storage::le_u64(&payload[13..21]) as usize;
        let n_vt_docs = storage::le_u64(&payload[21..29]) as usize;
        let meta = MetaSection {
            weighting,
            rank,
            n_terms,
            n_docs,
            n_vt_docs,
        };
        meta.validate_dims()?;
        Ok(meta)
    }

    /// The same dimensional sanity rules the v1/v2 reader applies: a
    /// basis-only snapshot (`n_vt_docs == 0`) is legal, a populated `vt`
    /// must cover the rank, and nothing may exceed the element cap.
    fn validate_dims(&self) -> Result<(), StorageError> {
        let (k, n, m_docs, m_vt) = (self.rank, self.n_terms, self.n_docs, self.n_vt_docs);
        if k == 0
            || n == 0
            || m_docs < m_vt
            || k > n
            || (m_vt > 0 && k > m_vt)
            || n.saturating_mul(k) > MAX_ELEMS
            || m_vt.saturating_mul(k) > MAX_ELEMS
            || m_docs.saturating_mul(k) > MAX_ELEMS
        {
            return Err(StorageError::BadDimensions(format!(
                "k={k}, n_terms={n}, n_docs={m_docs}, n_vt_docs={m_vt}"
            )));
        }
        Ok(())
    }
}

fn f64s_payload(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Serializes an index to a writer in the sectioned version-3 format.
pub fn write_index_v3<W: std::io::Write>(w: &mut W, index: &LsiIndex) -> Result<(), StorageError> {
    let f = index.factors();
    let meta = MetaSection {
        weighting: index.config().weighting,
        rank: index.rank(),
        n_terms: index.n_terms(),
        n_docs: index.n_docs(),
        n_vt_docs: f.vt.ncols(),
    };
    let foldin = {
        let mut out = Vec::with_capacity(FOLDIN_LEN);
        out.extend_from_slice(&((index.n_docs() - f.vt.ncols()) as u64).to_le_bytes());
        out.extend_from_slice(&(index.n_docs() as u64).to_le_bytes());
        out
    };
    let payloads: [(SectionId, Vec<u8>); 6] = [
        (SectionId::Meta, meta.encode()),
        (SectionId::SingularValues, f64s_payload(&f.singular_values)),
        (SectionId::TermFactors, f64s_payload(f.u.as_slice())),
        (SectionId::DocFactors, f64s_payload(f.vt.as_slice())),
        (
            SectionId::DocVectors,
            f64s_payload(index.doc_representations().as_slice()),
        ),
        (SectionId::FoldInMeta, foldin),
    ];

    let header_len = (4 + 4 + 4 + payloads.len() * ENTRY_BYTES + 4) as u64;
    let mut offset = header_len;
    let mut entries = Vec::with_capacity(payloads.len());
    for (id, payload) in &payloads {
        let len = payload.len() as u64;
        let mut crc = Crc32::new();
        crc.update(&len.to_le_bytes());
        crc.update(payload);
        let entry = SectionEntry {
            tag: id.tag(),
            offset,
            len,
            crc: crc.finalize(),
        };
        offset += entry.block_len();
        entries.push(entry);
    }
    let dir = SectionDirectory { entries };

    w.write_all(&dir.encode_header())?;
    for ((_, payload), entry) in payloads.iter().zip(dir.entries()) {
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(payload)?;
        w.write_all(&entry.crc.to_le_bytes())?;
    }
    Ok(())
}

/// Reads one section block sequentially, consuming exactly
/// `entry.block_len()` bytes. `Ok(Some(payload))` means every check passed
/// (length prefix, CRC against both the directory and the trailer);
/// `Ok(None)` means the block's bytes are present but damaged. An I/O
/// error (truncated file) propagates as `Err`.
fn read_block<R: Read>(r: &mut R, entry: &SectionEntry) -> Result<Option<Vec<u8>>, StorageError> {
    let mut prefix = [0u8; 8];
    r.read_exact(&mut prefix)?;
    let declared = u64::from_le_bytes(prefix);

    let mut crc = Crc32::new();
    crc.update(&prefix);
    // Stream the payload in bounded chunks: `entry.len` is CRC-protected,
    // but never worth a single huge up-front allocation.
    let len = entry.len as usize;
    let mut payload = Vec::with_capacity(len.min(1 << 16));
    let mut chunk = [0u8; 1 << 16];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        crc.update(&chunk[..take]);
        payload.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    let computed = crc.finalize();
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let stored = u32::from_le_bytes(trailer);

    if declared != entry.len || computed != entry.crc || stored != entry.crc {
        return Ok(None);
    }
    Ok(Some(payload))
}

/// What [`open_index_tolerant`] (via the version-3 reader) found wrong
/// with one section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionDamage {
    /// The damaged section.
    pub section: SectionId,
}

impl std::fmt::Display for SectionDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "section {} damaged", self.section)
    }
}

/// All section payloads of a v3 file, each either intact or damaged.
struct SectionSet {
    meta: MetaSection,
    payloads: std::collections::BTreeMap<u8, Option<Vec<u8>>>,
}

impl SectionSet {
    fn payload(&self, id: SectionId) -> Option<&[u8]> {
        self.payloads.get(&id.tag()).and_then(|p| p.as_deref())
    }

    fn damaged(&self, id: SectionId) -> bool {
        matches!(self.payloads.get(&id.tag()), Some(None) | None)
    }
}

/// Reads every block of a v3 stream (the magic and version already
/// consumed). Essential-section damage is a typed error; degradable
/// damage is recorded in the returned set. With `tolerant == false`, any
/// damage at all is an error (the strict `read_index` contract), and a
/// known `total_len` smaller than the directory's declared extent is
/// rejected before any section payload is allocated.
fn read_sections<R: Read>(
    r: &mut R,
    tolerant: bool,
    total_len: Option<u64>,
) -> Result<SectionSet, StorageError> {
    let dir = SectionDirectory::read_after_version(r)?;
    if !tolerant {
        if let Some(total) = total_len {
            let declared = dir.file_len();
            if declared > total {
                return Err(StorageError::TruncatedFile {
                    declared,
                    available: total,
                });
            }
        }
    }
    let mut payloads = std::collections::BTreeMap::new();
    // Once the stream is lost (truncated file), every later section is
    // unreadable too; in tolerant mode that is damage, not an error —
    // unless the section was essential.
    let mut stream_dead = false;
    for entry in dir.entries() {
        let id = entry.id();
        let block = if stream_dead {
            None
        } else {
            match read_block(r, entry) {
                Ok(b) => b,
                Err(e) => {
                    if !tolerant || matches!(id, Some(s) if s.essential()) {
                        return match id {
                            Some(section) => Err(StorageError::DamagedSection { section }),
                            None => Err(e),
                        };
                    }
                    stream_dead = true;
                    None
                }
            }
        };
        let Some(section) = id else {
            // Unknown tag: skipped for forward compatibility. Its bytes
            // were consumed above to keep the stream aligned.
            continue;
        };
        if block.is_none() && (!tolerant || section.essential()) {
            return Err(StorageError::DamagedSection { section });
        }
        payloads.insert(entry.tag, block);
    }
    let meta_payload = payloads
        .get(&SectionId::Meta.tag())
        .and_then(|p| p.as_deref())
        .ok_or(StorageError::DamagedSection {
            section: SectionId::Meta,
        })?;
    let meta = MetaSection::decode(meta_payload)?;
    Ok(SectionSet { meta, payloads })
}

/// Assembles an index from a parsed section set, zeroing what was
/// quarantined. Returns the index and the quarantined sections.
fn assemble(set: &SectionSet) -> Result<(LsiIndex, Vec<SectionId>), StorageError> {
    let MetaSection {
        weighting,
        rank: k,
        n_terms: n,
        n_docs: m_docs,
        n_vt_docs: m_vt,
    } = set.meta;

    let decode = |id: SectionId, count: usize| -> Result<Option<Vec<f64>>, StorageError> {
        match set.payload(id) {
            None => Ok(None),
            Some(payload) => {
                if payload.len() != count * 8 {
                    // The section is internally intact but disagrees with
                    // the meta dimensions: treat as damage to *this*
                    // section (meta is the dictionary; it wins).
                    if id.essential() {
                        return Err(StorageError::DamagedSection { section: id });
                    }
                    return Ok(None);
                }
                match read_f64s_exact(payload, count) {
                    Ok(xs) => Ok(Some(xs)),
                    Err(e) if id.essential() => Err(e),
                    Err(_) => Ok(None),
                }
            }
        }
    };

    let singular_values =
        decode(SectionId::SingularValues, k)?.ok_or(StorageError::DamagedSection {
            section: SectionId::SingularValues,
        })?;
    if singular_values.iter().any(|&s| s < 0.0) {
        return Err(StorageError::CorruptData);
    }
    let u_data = decode(SectionId::TermFactors, n * k)?.ok_or(StorageError::DamagedSection {
        section: SectionId::TermFactors,
    })?;

    let mut quarantined = Vec::new();
    let vt = match decode(SectionId::DocFactors, k * m_vt)? {
        Some(data) => Matrix::from_vec(k, m_vt, data)
            .map_err(|e| StorageError::BadDimensions(e.to_string()))?,
        None => {
            quarantined.push(SectionId::DocFactors);
            Matrix::zeros(k, 0)
        }
    };
    let (doc_reps, doc_norms) = match decode(SectionId::DocVectors, m_docs * k)? {
        Some(data) => {
            let reps = Matrix::from_vec(m_docs, k, data)
                .map_err(|e| StorageError::BadDimensions(e.to_string()))?;
            let norms = (0..m_docs).map(|j| vector::norm(reps.row(j))).collect();
            (reps, norms)
        }
        None => {
            // Quarantine: the document count is preserved (replay keys on
            // it) but every row is zero, so cosine scans skip them all and
            // the serving layer falls back to term space.
            quarantined.push(SectionId::DocVectors);
            (Matrix::zeros(m_docs, k), vec![0.0; m_docs])
        }
    };
    if set.damaged(SectionId::FoldInMeta) {
        quarantined.push(SectionId::FoldInMeta);
    }

    let u =
        Matrix::from_vec(n, k, u_data).map_err(|e| StorageError::BadDimensions(e.to_string()))?;
    let mut index = LsiIndex::from_parts(
        TruncatedSvd {
            u,
            singular_values,
            vt,
        },
        doc_reps,
        doc_norms,
        LsiConfig {
            rank: k,
            weighting,
            backend: SvdBackend::Dense,
        },
    );
    index.set_quarantined(quarantined.clone());
    Ok((index, quarantined))
}

/// Strict version-3 reader (magic and version already consumed): any
/// damage anywhere — directory or section, essential or not — is a typed
/// error. This is the v3 arm of [`crate::storage::read_index`].
pub(crate) fn read_index_v3<R: Read>(
    r: &mut R,
    total_len: Option<u64>,
) -> Result<LsiIndex, StorageError> {
    let set = read_sections(r, false, total_len)?;
    let (index, quarantined) = assemble(&set)?;
    debug_assert!(quarantined.is_empty(), "strict read cannot quarantine");
    Ok(index)
}

/// Tolerant version-3 reader (magic and version already consumed):
/// degradable damage quarantines the section instead of failing the open.
pub(crate) fn open_index_tolerant_v3<R: Read>(
    r: &mut R,
) -> Result<(LsiIndex, Vec<SectionDamage>), StorageError> {
    let set = read_sections(r, true, None)?;
    let (index, quarantined) = assemble(&set)?;
    Ok((
        index,
        quarantined
            .into_iter()
            .map(|section| SectionDamage { section })
            .collect(),
    ))
}

/// CRC status of one section (or, for v1/v2, the whole monolithic body)
/// as reported by [`inspect_snapshot`].
#[derive(Debug, Clone)]
pub struct SectionStatus {
    /// On-disk tag byte (0 for the v1/v2 pseudo-section).
    pub tag: u8,
    /// Known section, if the tag is recognized.
    pub id: Option<SectionId>,
    /// Display name: the section name, or a format-level label for v1/v2.
    pub name: String,
    /// Offset of the section block in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Whether every integrity check on this section passed.
    pub ok: bool,
}

/// What [`inspect_snapshot`] found in a snapshot file.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Declared format version.
    pub version: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Whether the section directory itself (v3) or the header (v1/v2)
    /// parsed and verified.
    pub directory_ok: bool,
    /// Per-section status rows.
    pub sections: Vec<SectionStatus>,
}

impl SnapshotReport {
    /// True when any known section (or the directory) is damaged.
    pub fn damaged(&self) -> bool {
        !self.directory_ok || self.sections.iter().any(|s| !s.ok)
    }
}

/// Examines a snapshot's framing without constructing an index: version,
/// section directory, and per-section CRC status. Works on all format
/// versions; v1/v2 report a single monolithic pseudo-section. Only a file
/// too foreign to interpret at all (bad magic, unknown version, short
/// header) is an error.
pub fn inspect_snapshot(bytes: &[u8]) -> Result<SnapshotReport, StorageError> {
    if bytes.len() < 8 {
        return Err(StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "file shorter than the magic and version fields",
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = storage::le_u32(&bytes[4..8]);
    let file_len = bytes.len() as u64;
    match version {
        1 => Ok(SnapshotReport {
            version,
            file_len,
            directory_ok: true,
            sections: vec![SectionStatus {
                tag: 0,
                id: None,
                name: "monolith (v1, no checksum)".into(),
                offset: 8,
                len: file_len - 8,
                ok: true,
            }],
        }),
        2 => {
            let ok = bytes.len() >= 12 && {
                let stored = storage::le_u32(&bytes[bytes.len() - 4..]);
                crc32(&bytes[..bytes.len() - 4]) == stored
            };
            Ok(SnapshotReport {
                version,
                file_len,
                directory_ok: true,
                sections: vec![SectionStatus {
                    tag: 0,
                    id: None,
                    name: "monolith (v2, whole-file CRC)".into(),
                    offset: 8,
                    len: file_len.saturating_sub(12),
                    ok,
                }],
            })
        }
        VERSION_SECTIONED => {
            let mut cursor = &bytes[8..];
            let dir = match SectionDirectory::read_after_version(&mut cursor) {
                Ok(d) => d,
                Err(_) => {
                    return Ok(SnapshotReport {
                        version,
                        file_len,
                        directory_ok: false,
                        sections: Vec::new(),
                    })
                }
            };
            let sections = dir
                .entries()
                .iter()
                .map(|entry| {
                    let end = entry.offset.saturating_add(entry.block_len());
                    let ok = end <= file_len && {
                        let block = &bytes[entry.offset as usize..end as usize];
                        let declared = storage::le_u64(&block[..8]);
                        let stored = storage::le_u32(&block[block.len() - 4..]);
                        declared == entry.len
                            && stored == entry.crc
                            && crc32(&block[..block.len() - 4]) == entry.crc
                    };
                    SectionStatus {
                        tag: entry.tag,
                        id: entry.id(),
                        name: entry
                            .id()
                            .map(|s| s.name().to_string())
                            .unwrap_or_else(|| format!("unknown (tag {})", entry.tag)),
                        offset: entry.offset,
                        len: entry.len,
                        ok,
                    }
                })
                .collect();
            Ok(SnapshotReport {
                version,
                file_len,
                directory_ok: true,
                sections,
            })
        }
        other => Err(StorageError::UnsupportedVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{read_index, write_index};
    use lsi_ir::TermDocumentMatrix;

    fn sample_index() -> LsiIndex {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (2, 2, 3.0),
                (3, 2, 1.0),
                (2, 3, 2.0),
                (4, 4, 1.0),
                (5, 4, 2.0),
            ],
        )
        .unwrap();
        LsiIndex::build(
            &td,
            LsiConfig {
                rank: 3,
                weighting: Weighting::LogTf,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap()
    }

    fn v3_bytes(idx: &LsiIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        write_index(&mut buf, idx).unwrap();
        buf
    }

    fn directory_of(bytes: &[u8]) -> SectionDirectory {
        let mut cursor = &bytes[8..];
        SectionDirectory::read_after_version(&mut cursor).unwrap()
    }

    #[test]
    fn tags_round_trip() {
        for id in SECTION_ORDER {
            assert_eq!(SectionId::from_tag(id.tag()), Some(id));
        }
        assert_eq!(SectionId::from_tag(200), None);
    }

    #[test]
    fn directory_describes_the_whole_file() {
        let bytes = v3_bytes(&sample_index());
        let dir = directory_of(&bytes);
        assert_eq!(dir.entries().len(), SECTION_ORDER.len());
        assert_eq!(dir.file_len(), bytes.len() as u64);
        for (entry, id) in dir.entries().iter().zip(SECTION_ORDER) {
            assert_eq!(entry.tag, id.tag());
        }
    }

    #[test]
    fn doc_vector_damage_opens_degraded_with_zeroed_rows() {
        let idx = sample_index();
        let mut bytes = v3_bytes(&idx);
        let dir = directory_of(&bytes);
        let entry = *dir.entry(SectionId::DocVectors).unwrap();
        // Flip a payload byte deep inside the doc-vector section.
        bytes[(entry.offset + 8 + entry.len / 2) as usize] ^= 0x01;

        // Strict read refuses.
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(StorageError::DamagedSection {
                section: SectionId::DocVectors
            })
        ));
        // Tolerant open quarantines.
        let mut cursor = &bytes[8..];
        let (degraded, damage) = open_index_tolerant_v3(&mut cursor).unwrap();
        assert_eq!(damage.len(), 1);
        assert_eq!(damage[0].section, SectionId::DocVectors);
        assert_eq!(
            degraded.quarantined_sections(),
            &[SectionId::DocVectors],
            "quarantine marker must ride on the index"
        );
        assert_eq!(degraded.n_docs(), idx.n_docs(), "ids stay allocated");
        // Every row zeroed: cosine scans return nothing.
        assert!(degraded.query(&[(0, 1.0)], 10).hits().is_empty());
        // The basis is intact: fold-in still works bit-for-bit.
        assert_eq!(degraded.fold_in(&[(0, 1.0)]), idx.fold_in(&[(0, 1.0)]));
    }

    #[test]
    fn essential_damage_is_a_typed_error_even_tolerantly() {
        let idx = sample_index();
        for id in [
            SectionId::Meta,
            SectionId::SingularValues,
            SectionId::TermFactors,
        ] {
            let mut bytes = v3_bytes(&idx);
            let dir = directory_of(&bytes);
            let entry = *dir.entry(id).unwrap();
            bytes[(entry.offset + 8) as usize] ^= 0xFF;
            let mut cursor = &bytes[8..];
            match open_index_tolerant_v3(&mut cursor) {
                Err(StorageError::DamagedSection { section }) => assert_eq!(section, id),
                other => panic!("expected DamagedSection({id}), got {other:?}"),
            }
        }
    }

    #[test]
    fn doc_factor_damage_quarantines_but_still_serves() {
        let idx = sample_index();
        let mut bytes = v3_bytes(&idx);
        let dir = directory_of(&bytes);
        let entry = *dir.entry(SectionId::DocFactors).unwrap();
        bytes[(entry.offset + 8) as usize] ^= 0xFF;
        let mut cursor = &bytes[8..];
        let (degraded, damage) = open_index_tolerant_v3(&mut cursor).unwrap();
        assert_eq!(damage[0].section, SectionId::DocFactors);
        // Document vectors are intact, so retrieval is unimpaired.
        let q = [(0usize, 1.0)];
        assert_eq!(degraded.query(&q, 5).doc_ids(), idx.query(&q, 5).doc_ids());
    }

    #[test]
    fn directory_damage_is_unrecoverable() {
        let idx = sample_index();
        let mut bytes = v3_bytes(&idx);
        // Flip a byte inside the entry table.
        bytes[14] ^= 0xFF;
        let mut cursor = &bytes[8..];
        assert!(matches!(
            open_index_tolerant_v3(&mut cursor),
            Err(StorageError::DamagedDirectory)
        ));
    }

    #[test]
    fn truncation_inside_doc_vectors_opens_degraded() {
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let dir = directory_of(&bytes);
        let entry = *dir.entry(SectionId::DocVectors).unwrap();
        let cut = (entry.offset + 8 + entry.len / 2) as usize;
        let mut cursor = &bytes[8..cut];
        let (degraded, damage) = open_index_tolerant_v3(&mut cursor).unwrap();
        // Doc vectors and everything after them are gone; the basis opened.
        assert!(damage.iter().any(|d| d.section == SectionId::DocVectors));
        assert_eq!(degraded.rank(), idx.rank());
    }

    #[test]
    fn inspect_reports_per_section_status() {
        let idx = sample_index();
        let mut bytes = v3_bytes(&idx);
        let report = inspect_snapshot(&bytes).unwrap();
        assert_eq!(report.version, VERSION_SECTIONED);
        assert!(report.directory_ok);
        assert!(!report.damaged());
        assert_eq!(report.sections.len(), SECTION_ORDER.len());

        let dir = directory_of(&bytes);
        let entry = *dir.entry(SectionId::DocVectors).unwrap();
        bytes[(entry.offset + 8) as usize] ^= 0x01;
        let report = inspect_snapshot(&bytes).unwrap();
        assert!(report.damaged());
        let row = report
            .sections
            .iter()
            .find(|s| s.id == Some(SectionId::DocVectors))
            .unwrap();
        assert!(!row.ok);
        assert!(report
            .sections
            .iter()
            .filter(|s| s.id != Some(SectionId::DocVectors))
            .all(|s| s.ok));
    }

    #[test]
    fn inspect_handles_legacy_versions() {
        let idx = sample_index();
        let mut v2 = Vec::new();
        crate::storage::write_index_v2(&mut v2, &idx).unwrap();
        let report = inspect_snapshot(&v2).unwrap();
        assert_eq!(report.version, 2);
        assert!(!report.damaged());
        let mut flipped = v2.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(inspect_snapshot(&flipped).unwrap().damaged());

        // v1: patch the version and drop the trailer.
        let mut v1 = v2.clone();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        v1.truncate(v1.len() - 4);
        let report = inspect_snapshot(&v1).unwrap();
        assert_eq!(report.version, 1);
        assert!(!report.damaged());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        // Hand-build a v3 file with an extra unknown section appended:
        // readers must skip it and still produce the index.
        let idx = sample_index();
        let bytes = v3_bytes(&idx);
        let dir = directory_of(&bytes);

        let extra_payload = b"future-extension";
        let mut extra_crc = Crc32::new();
        extra_crc.update(&(extra_payload.len() as u64).to_le_bytes());
        extra_crc.update(extra_payload);
        let mut entries = dir.entries().to_vec();
        // One more entry grows the header; shift every offset accordingly.
        for e in &mut entries {
            e.offset += ENTRY_BYTES as u64;
        }
        let tail = entries.last().unwrap();
        entries.push(SectionEntry {
            tag: 250,
            offset: tail.offset + tail.block_len(),
            len: extra_payload.len() as u64,
            crc: extra_crc.finalize(),
        });
        let extended = SectionDirectory { entries };
        let mut out = extended.encode_header();
        out.extend_from_slice(&bytes[dir.header_len() as usize..]);
        out.extend_from_slice(&(extra_payload.len() as u64).to_le_bytes());
        out.extend_from_slice(extra_payload);
        out.extend_from_slice(&extended.entries().last().unwrap().crc.to_le_bytes());

        let loaded = read_index(&mut out.as_slice()).unwrap();
        assert_eq!(loaded.singular_values(), idx.singular_values());
        let report = inspect_snapshot(&out).unwrap();
        assert!(!report.damaged());
        assert_eq!(report.sections.len(), SECTION_ORDER.len() + 1);
    }
}
