//! Injectable I/O faults and bounded retry for persistence paths.
//!
//! Durable writes in this crate (journal appends, atomic snapshot
//! rewrites, checkpoint compaction) route their bytes through the
//! process-global [`io_faults`] injector. In production the injector is
//! disarmed and writes pass straight through; tests arm a
//! [`WriteFault`](lsi_linalg::faults::WriteFault) to prove that every
//! persistence path surfaces a typed [`StorageError`] and leaves exact
//! pre-state when the device crashes, fills up, or hiccups mid-write.
//!
//! [`RetryPolicy`] is the bounded retry-with-backoff companion: it
//! retries an operation only when the underlying I/O error is transient
//! ([`is_transient`]), sleeping exponentially longer between attempts, so
//! a [`WriteFault::Transient`](lsi_linalg::faults::WriteFault::Transient)
//! hiccup is ridden out while hard faults (ENOSPC, crash) surface on the
//! first attempt.

use std::time::Duration;

use crate::storage::StorageError;

/// True for I/O error kinds worth retrying: the operation may succeed if
/// simply re-attempted ([`Interrupted`](std::io::ErrorKind::Interrupted),
/// [`WouldBlock`](std::io::ErrorKind::WouldBlock),
/// [`TimedOut`](std::io::ErrorKind::TimedOut)). Everything else — ENOSPC,
/// permission errors, torn-write crashes — is treated as hard and
/// surfaced immediately.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Bounded retry-with-backoff for persistence operations.
///
/// [`run`](Self::run) re-invokes the operation on transient I/O errors
/// (per [`is_transient`]) up to `max_attempts` total attempts, sleeping
/// `base_delay * 2^attempt` between tries. Non-transient errors and
/// non-I/O [`StorageError`]s are returned immediately — retrying a
/// corrupt-data error or a full disk only wastes time.
///
/// ```
/// use lsi_core::RetryPolicy;
///
/// let mut calls = 0;
/// let out: Result<u32, _> = RetryPolicy::default().run(|| {
///     calls += 1;
///     if calls < 2 {
///         Err(std::io::Error::from(std::io::ErrorKind::WouldBlock).into())
///     } else {
///         Ok(7)
///     }
/// });
/// assert_eq!(out.unwrap(), 7);
/// assert_eq!(calls, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: u32,
    /// Sleep before retry `n` is `base_delay * 2^(n-1)`.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts with a 1 ms base delay (1 ms, then 2 ms).
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Runs `op`, retrying transient I/O failures with exponential
    /// backoff. Returns the first success, the first hard error, or the
    /// last transient error once attempts are exhausted.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(StorageError::Io(e)) if is_transient(&e) && attempt + 1 < attempts => {
                    std::thread::sleep(self.base_delay * 2u32.pow(attempt.min(16)));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Process-global write-fault injector for durable persistence paths.
///
/// Tests [`arm`](io_faults::arm) a fault; while the returned guard lives,
/// every byte written through a [`MaybeFaulty`](io_faults::MaybeFaulty)
/// wrapper or [`write_all`](io_faults::write_all) in this process is
/// metered against the fault's byte boundary. Arming takes an exclusive
/// test lock so concurrently running tests serialize instead of seeing
/// each other's faults; dropping the guard disarms.
pub mod io_faults {
    use std::io::Write;
    use std::sync::{Mutex, MutexGuard};

    use lsi_linalg::faults::{FaultState, WriteFault};

    struct Armed {
        fault: WriteFault,
        state: FaultState,
    }

    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);
    static EXCLUSIVE: Mutex<()> = Mutex::new(());

    fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
        // A panicking test (e.g. an assertion failure while armed) must
        // not wedge every later test: recover the poisoned guard.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Keeps the fault armed while alive; disarms (and releases the test
    /// serialization lock) on drop.
    #[must_use = "the fault is disarmed as soon as the guard drops"]
    pub struct FaultGuard {
        _exclusive: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *lock(&ARMED) = None;
        }
    }

    impl std::fmt::Debug for FaultGuard {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("FaultGuard")
        }
    }

    /// Arms `fault` process-wide and returns the disarming guard.
    ///
    /// Blocks until any previously armed fault's guard drops, so tests
    /// using the injector serialize automatically.
    pub fn arm(fault: WriteFault) -> FaultGuard {
        let exclusive = lock(&EXCLUSIVE);
        *lock(&ARMED) = Some(Armed {
            fault,
            state: FaultState::default(),
        });
        FaultGuard {
            _exclusive: exclusive,
        }
    }

    /// Bytes the armed fault has seen committed, and how often it fired;
    /// `None` when disarmed. Lets tests assert the fault actually
    /// triggered rather than silently missing the write path.
    pub fn armed_state() -> Option<(u64, u32)> {
        lock(&ARMED)
            .as_ref()
            .map(|a| (a.state.written, a.state.fired))
    }

    fn filtered_write<W: Write>(inner: &mut W, buf: &[u8]) -> std::io::Result<usize> {
        // The lock is released before the inner commit: `inner` may itself
        // route through this injector (it should not, but a nested wrap
        // must double-filter, never deadlock).
        let decision = lock(&ARMED)
            .as_mut()
            .map(|a| a.fault.decide(&mut a.state, buf.len()));
        match decision {
            None => inner.write(buf),
            Some((commit, err)) => {
                inner.write_all(&buf[..commit])?;
                if let Some(a) = lock(&ARMED).as_mut() {
                    a.state.written += commit as u64;
                }
                match err {
                    Some(e) => Err(e),
                    None => Ok(commit),
                }
            }
        }
    }

    /// An [`std::io::Write`] adapter that meters every write against the
    /// globally armed fault (pass-through when disarmed).
    #[derive(Debug)]
    pub struct MaybeFaulty<W: Write> {
        inner: W,
    }

    impl<W: Write> MaybeFaulty<W> {
        /// Wraps `inner` behind the global injector.
        pub fn new(inner: W) -> Self {
            Self { inner }
        }

        /// Shared access to the wrapped writer (e.g. to `sync_all` a
        /// [`File`](std::fs::File)).
        pub fn inner(&self) -> &W {
            &self.inner
        }

        /// Unwraps the inner writer.
        pub fn into_inner(self) -> W {
            self.inner
        }
    }

    impl<W: Write> Write for MaybeFaulty<W> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            filtered_write(&mut self.inner, buf)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    /// `write_all` through the injector: loops on partial progress and
    /// surfaces `Ok(0)` as [`WriteZero`](std::io::ErrorKind::WriteZero),
    /// exactly like [`std::io::Write::write_all`] — but without the
    /// standard library's silent `Interrupted` retry, so injected
    /// transient faults reach the caller's [`RetryPolicy`](super::RetryPolicy).
    pub fn write_all<W: Write>(w: &mut W, mut buf: &[u8]) -> std::io::Result<()> {
        while !buf.is_empty() {
            match filtered_write(w, buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "failed to write whole buffer",
                    ));
                }
                Ok(n) => buf = &buf[n..],
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::io_faults;
    use super::*;
    use lsi_linalg::faults::WriteFault;
    use std::io::Write;

    #[test]
    fn disarmed_writer_passes_through() {
        let mut w = io_faults::MaybeFaulty::new(Vec::new());
        w.write_all(b"hello world").unwrap();
        assert_eq!(w.inner(), b"hello world");
    }

    #[test]
    fn enospc_commits_prefix_and_surfaces_storage_full() {
        let _guard = io_faults::arm(WriteFault::Enospc { after: 4 });
        let mut w = io_faults::MaybeFaulty::new(Vec::new());
        let err = w.write_all(b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        assert_eq!(w.inner(), b"abcd");
        assert_eq!(io_faults::armed_state(), Some((4, 1)));
    }

    #[test]
    fn short_write_becomes_write_zero() {
        let _guard = io_faults::arm(WriteFault::ShortWrite { after: 3 });
        let mut out = Vec::new();
        let err = io_faults::write_all(&mut out, b"abcdefgh").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        assert_eq!(out, b"abc");
    }

    #[test]
    fn transient_fault_clears_after_n_failures() {
        let _guard = io_faults::arm(WriteFault::Transient {
            after: 0,
            failures: 2,
        });
        let mut out = Vec::new();
        for _ in 0..2 {
            let err = io_faults::write_all(&mut out, b"abc").unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
            assert!(out.is_empty(), "transient fault must commit nothing");
        }
        io_faults::write_all(&mut out, b"abc").unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn retry_policy_rides_out_transient_faults() {
        let mut calls = 0u32;
        let out = RetryPolicy::default().run(|| {
            calls += 1;
            if calls < 3 {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock).into())
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out.unwrap(), 3);
    }

    #[test]
    fn retry_policy_surfaces_hard_errors_immediately() {
        let mut calls = 0u32;
        let out: Result<(), _> = RetryPolicy::default().run(|| {
            calls += 1;
            Err(std::io::Error::from(std::io::ErrorKind::StorageFull).into())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "hard errors must not be retried");
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let mut calls = 0u32;
        let out: Result<(), _> = RetryPolicy::default().run(|| {
            calls += 1;
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock).into())
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }
}
