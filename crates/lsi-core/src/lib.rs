#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Latent Semantic Indexing.
//!
//! The paper's object of study (§2): take the `n × m` term–document matrix
//! `A`, compute its rank-`k` truncated SVD `A_k = U_k D_k V_kᵀ`, represent
//! documents by the rows of `V_k D_k`, and process queries in the
//! `k`-dimensional "LSI space" spanned by the columns of `U_k`.
//!
//! * [`index`] — build the index (dense, Lanczos, or randomized SVD
//!   backend), fold queries in, retrieve by cosine in LSI space.
//! * [`skew`] — the δ-skew measure of Section 4's theorems: how close the
//!   LSI representation is to "orthogonal across topics, parallel within a
//!   topic".
//! * [`angles`] — the pairwise-angle statistics of the paper's experiment
//!   (its only table), in both the original term space and the LSI space.
//! * [`synonymy`] — the co-occurrence analysis of Section 4's "Synonymy"
//!   discussion: terms with identical co-occurrence patterns differ only
//!   along trailing eigenvectors of `A Aᵀ`, which rank-k LSI projects out.

//! * [`storage`] — a versioned binary on-disk format, because the SVD is
//!   the expensive step and a deployed index is computed once.

//! * [`cancel`] — cooperative cancellation tokens threaded through the
//!   query hot paths, so a serving layer can enforce deadlines.

//! * [`journal`] — a write-ahead mutation log plus [`DurableIndex`], so
//!   fold-in updates survive crashes: journaled and fsynced before they
//!   are acknowledged, replayed over the last snapshot on recovery.

//! * [`sections`] — the sectioned `.lsix` v3 container: a CRC'd section
//!   directory plus independently checksummed sections, so one flipped
//!   byte quarantines a section instead of the whole index, and
//!   [`inspect_snapshot`] reports per-section health.

//! * [`lazy`] — [`LazySnapshot`], the streaming v3 loader: open reads only
//!   header + directory + dictionary; factors and document vectors stream
//!   in (CRC-verified) on first use, so open-to-first-query cost is
//!   sublinear in index size.

//! * [`iofault`] — injectable write faults (ENOSPC, short write, torn
//!   write, transient) behind every durable persistence path, plus
//!   [`RetryPolicy`], the bounded retry-with-backoff that rides out
//!   transient faults.

//! * [`frame`] — the journal's length-prefixed CRC framing as a reusable
//!   codec, so stream transports (the shard RPC socket protocol) apply
//!   the same bounded, checksummed discipline to wire bytes as the
//!   journal applies to disk bytes.

pub mod angles;
pub mod cancel;
pub mod config;
pub mod frame;
pub mod index;
pub mod iofault;
pub mod journal;
pub mod lazy;
pub mod sections;
pub mod skew;
pub mod storage;
pub mod synonymy;

pub use angles::{pairwise_angle_stats, AngleStats, PairAngleReport};
pub use cancel::CancelToken;
pub use config::{LsiConfig, SvdBackend};
pub use frame::{FrameError, FrameScan};
pub use index::{BadQuery, BuildStatus, LsiError, LsiIndex, VectorQuery};
pub use iofault::{io_faults, is_transient, RetryPolicy};
pub use journal::{
    journal_path, DurabilityError, DurableIndex, Journal, JournalRecovery, MutationRecord,
    RebuildReport, RecoveryReport, TruncationCause,
};
pub use lazy::LazySnapshot;
pub use sections::{inspect_snapshot, SectionDamage, SectionId, SectionStatus, SnapshotReport};
pub use skew::{measure_skew, SkewReport};
pub use storage::{
    open_index_tolerant, read_index, read_index_sized, sync_parent_dir, write_index,
    write_index_atomic, write_index_v2, StorageError,
};
