//! The LSI index: rank-k spectral representation plus retrieval.

use lsi_ir::retrieval::{RankedList, SearchHit};
use lsi_ir::TermDocumentMatrix;
use lsi_linalg::faults::{FaultPlan, FaultyOperator};
use lsi_linalg::solver::{solve_truncated_svd, SolveError, SolveReport};
use lsi_linalg::{vector, LinalgError, LinearOperator, Matrix, TruncatedSvd};

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::config::LsiConfig;

/// Why a query was rejected before any scoring happened.
///
/// Produced by the guarded `try_*` query variants on [`LsiIndex`]; the
/// unguarded legacy methods either silently skip the offending entry
/// (`fold_in`) or panic (see each method's `# Panics` section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadQuery {
    /// A query term id is outside the index vocabulary.
    TermOutOfRange {
        /// The offending term id.
        term: usize,
        /// Number of terms the index knows.
        n_terms: usize,
    },
    /// A document id is outside the indexed document set.
    DocOutOfRange {
        /// The offending document id.
        doc: usize,
        /// Number of indexed documents.
        n_docs: usize,
    },
    /// A query weight is NaN or infinite.
    NonFiniteWeight {
        /// The term whose weight is non-finite.
        term: usize,
    },
    /// A dense LSI-space query has the wrong dimension.
    WrongDimension {
        /// Length of the supplied vector.
        got: usize,
        /// Expected length (the index rank).
        expected: usize,
    },
    /// A dense LSI-space query contains a NaN or infinite component.
    NonFiniteQuery,
}

impl std::fmt::Display for BadQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadQuery::TermOutOfRange { term, n_terms } => {
                write!(f, "term id {term} out of range (vocabulary size {n_terms})")
            }
            BadQuery::DocOutOfRange { doc, n_docs } => {
                write!(f, "document id {doc} out of range ({n_docs} documents)")
            }
            BadQuery::NonFiniteWeight { term } => {
                write!(f, "non-finite weight for term {term}")
            }
            BadQuery::WrongDimension { got, expected } => {
                write!(f, "query has dimension {got}, expected rank {expected}")
            }
            BadQuery::NonFiniteQuery => write!(f, "query vector has a non-finite component"),
        }
    }
}

/// Errors from building or querying an [`LsiIndex`].
#[derive(Debug, Clone, PartialEq)]
pub enum LsiError {
    /// The requested rank is zero or exceeds `min(n_terms, n_docs)`.
    BadRank {
        /// Requested rank.
        requested: usize,
        /// Maximum feasible rank for this corpus.
        max: usize,
    },
    /// The corpus is empty (no terms or no documents).
    EmptyCorpus,
    /// A linear-algebra failure (shape bug or non-convergence).
    Linalg(LinalgError),
    /// Every backend in the resilient solve plan failed; the report carries
    /// each attempt's backend, iterations, and typed failure cause.
    SolverExhausted(SolveReport),
    /// The query itself is malformed (out-of-range ids, non-finite
    /// weights, wrong dimension); nothing was scored.
    BadQuery(BadQuery),
    /// A cooperative [`CancelToken`] fired (explicit cancellation or an
    /// expired deadline) while scoring was in progress.
    Cancelled,
}

impl std::fmt::Display for LsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsiError::BadRank { requested, max } => {
                write!(f, "rank {requested} out of range (max {max})")
            }
            LsiError::EmptyCorpus => write!(f, "corpus has no terms or no documents"),
            LsiError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            LsiError::SolverExhausted(report) => write!(
                f,
                "all {} solver attempts failed:\n{}",
                report.attempts.len(),
                report.summary()
            ),
            LsiError::BadQuery(b) => write!(f, "bad query: {b}"),
            LsiError::Cancelled => write!(f, "operation cancelled (deadline or explicit)"),
        }
    }
}

impl From<BadQuery> for LsiError {
    fn from(b: BadQuery) -> Self {
        LsiError::BadQuery(b)
    }
}

/// How completely a build satisfied its requested rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStatus {
    /// All requested triplets are live (σ > 0).
    Full,
    /// The corpus's true rank is below the requested rank: the trailing
    /// triplets are zero-padded and retrieval runs in the smaller space.
    /// This is a documented outcome, not an error — the factors are still
    /// verified and exact for the live subspace.
    Degraded {
        /// Number of live triplets actually obtained.
        achieved_rank: usize,
    },
}

impl std::error::Error for LsiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LsiError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LsiError {
    fn from(e: LinalgError) -> Self {
        LsiError::Linalg(e)
    }
}

/// A built LSI index over a corpus.
///
/// Holds the truncated factors `U_k, D_k, V_kᵀ` of the weighted
/// term–document matrix, the document representations (rows of `V_k D_k`),
/// and enough bookkeeping to fold in queries and rank documents.
///
/// # Examples
///
/// ```
/// use lsi_core::{LsiConfig, LsiIndex};
/// use lsi_ir::TermDocumentMatrix;
///
/// // Two documents about term 0, one about term 2.
/// let td = TermDocumentMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 2.0), (1, 0, 1.0), (0, 1, 1.0), (2, 2, 3.0)],
/// )
/// .unwrap();
/// let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
///
/// let hits = index.query(&[(0, 1.0)], 3);
/// // The two term-0 documents outrank the unrelated one.
/// let ranking = hits.doc_ids();
/// assert!(ranking[0] == 0 || ranking[0] == 1);
/// assert_eq!(*ranking.last().unwrap(), 2);
/// assert!(index.doc_cosine(0, 1) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct LsiIndex {
    factors: TruncatedSvd,
    /// `m × k` document representations (row `j` = `D_k V_kᵀ e_j`).
    doc_reps: Matrix,
    /// Euclidean norms of the document representations.
    doc_norms: Vec<f64>,
    config: LsiConfig,
    /// Per-attempt record of the solve that produced `factors`; `None` for
    /// indexes reloaded from storage.
    solve_report: Option<SolveReport>,
    /// Sections of the source snapshot that were damaged and quarantined
    /// by a tolerant open; empty for built or strictly-read indexes.
    quarantined: Vec<crate::sections::SectionId>,
}

impl LsiIndex {
    /// Builds the index: weights the counts, runs the configured SVD
    /// backend through the resilient solve driver, and materializes
    /// document representations.
    ///
    /// The configured backend is the *first* attempt of an escalation chain
    /// ([`crate::SvdBackend::solve_plan`]); if it fails or returns factors
    /// that do not verify, the driver falls back — ultimately to a dense
    /// SVD — before giving up with [`LsiError::SolverExhausted`]. The full
    /// per-attempt record is available via [`LsiIndex::solve_report`].
    ///
    /// A corpus whose true rank is below `config.rank` builds successfully
    /// with zero-padded trailing triplets; [`LsiIndex::build_status`]
    /// reports [`BuildStatus::Degraded`] with the achieved rank.
    pub fn build(td: &TermDocumentMatrix, config: LsiConfig) -> Result<Self, LsiError> {
        Self::build_inner(td, config, None)
    }

    /// [`LsiIndex::build`] with seeded faults injected into every
    /// matrix–vector product of the weighted term–document operator.
    ///
    /// This is the integration surface for resilience testing: the faulty
    /// operator exercises exactly the production solve path (guards,
    /// fallback, verification). It is not intended for production builds.
    pub fn build_with_injected_faults(
        td: &TermDocumentMatrix,
        config: LsiConfig,
        faults: FaultPlan,
    ) -> Result<Self, LsiError> {
        Self::build_inner(td, config, Some(faults))
    }

    fn build_inner(
        td: &TermDocumentMatrix,
        config: LsiConfig,
        faults: Option<FaultPlan>,
    ) -> Result<Self, LsiError> {
        let (n, m) = (td.n_terms(), td.n_docs());
        if n == 0 || m == 0 {
            return Err(LsiError::EmptyCorpus);
        }
        let max_rank = n.min(m);
        if config.rank == 0 || config.rank > max_rank {
            return Err(LsiError::BadRank {
                requested: config.rank,
                max: max_rank,
            });
        }

        let weighted = td.weighted(config.weighting);
        let plan = config.backend.solve_plan();
        let (factors, report) = match faults {
            None => Self::solve_on(&weighted, config.rank, &plan)?,
            Some(f) => {
                let faulty = FaultyOperator::new(&weighted, f);
                Self::solve_on(&faulty, config.rank, &plan)?
            }
        };

        let mut doc_reps = factors.doc_representation();
        let mut doc_norms: Vec<f64> = (0..m).map(|j| vector::norm(doc_reps.row(j))).collect();
        // Snap numerically-null representations (e.g. empty documents seen
        // through Lanczos round-off) to exact zero: otherwise their noise
        // direction would enter cosine rankings with arbitrary scores.
        let max_norm = doc_norms.iter().copied().fold(0.0f64, f64::max);
        for (j, norm) in doc_norms.iter_mut().enumerate() {
            if *norm <= 1e-12 * max_norm {
                doc_reps.row_mut(j).fill(0.0);
                *norm = 0.0;
            }
        }

        Ok(LsiIndex {
            factors,
            doc_reps,
            doc_norms,
            config,
            solve_report: Some(report),
            quarantined: Vec::new(),
        })
    }

    /// Runs the resilient driver on one operator, mapping solver errors
    /// into [`LsiError`].
    fn solve_on<Op: LinearOperator + ?Sized>(
        op: &Op,
        rank: usize,
        plan: &lsi_linalg::solver::SolvePlan,
    ) -> Result<(TruncatedSvd, SolveReport), LsiError> {
        match solve_truncated_svd(op, rank, plan) {
            Ok(s) => Ok((s.factors, s.report)),
            Err(SolveError::Invalid(e)) => Err(LsiError::Linalg(e)),
            Err(SolveError::Exhausted(report)) => Err(LsiError::SolverExhausted(report)),
        }
    }

    /// Reassembles an index from previously computed parts (used by the
    /// storage layer; invariants are the caller's responsibility).
    pub(crate) fn from_parts(
        factors: TruncatedSvd,
        doc_reps: Matrix,
        doc_norms: Vec<f64>,
        config: LsiConfig,
    ) -> Self {
        LsiIndex {
            factors,
            doc_reps,
            doc_norms,
            config,
            solve_report: None,
            quarantined: Vec::new(),
        }
    }

    /// The per-attempt record of the solve that built this index, or `None`
    /// for indexes reloaded from storage.
    pub fn solve_report(&self) -> Option<&SolveReport> {
        self.solve_report.as_ref()
    }

    /// Snapshot sections that were damaged and quarantined when this index
    /// was opened tolerantly (see
    /// [`open_index_tolerant`](crate::open_index_tolerant)). Empty for
    /// freshly built indexes and strict reads. A quarantined
    /// [`DocVectors`](crate::sections::SectionId::DocVectors) section means
    /// every stored document row is zero: cosine scans skip them all, so
    /// the index behaves exactly like a term-space fallback until
    /// [`LsiIndex::rebuild_doc_vectors`] repairs it.
    pub fn quarantined_sections(&self) -> &[crate::sections::SectionId] {
        &self.quarantined
    }

    pub(crate) fn set_quarantined(&mut self, quarantined: Vec<crate::sections::SectionId>) {
        self.quarantined = quarantined;
    }

    /// Recomputes the document rows covered by the factorization
    /// (`j < vt.ncols()`) from `D_k V_kᵀ`, reproducing the build-time
    /// representations bitwise — including the numerically-null snap to
    /// exact zero — and clears the
    /// [`DocVectors`](crate::sections::SectionId::DocVectors) quarantine
    /// when at least one row was rebuildable. Rows beyond the
    /// factorization (folded-in documents) are journal-owned and left
    /// untouched; the caller replays or re-applies their mutations.
    ///
    /// Returns how many rows were rebuilt.
    pub fn rebuild_doc_vectors(&mut self) -> usize {
        let m_vt = self.factors.vt.ncols();
        if m_vt == 0 {
            return 0;
        }
        let mut rebuilt = self.factors.doc_representation();
        let mut norms: Vec<f64> = (0..m_vt).map(|j| vector::norm(rebuilt.row(j))).collect();
        // Identical snap rule to the build path, so a rebuild after
        // quarantine round-trips to the original bytes.
        let max_norm = norms.iter().copied().fold(0.0f64, f64::max);
        for (j, norm) in norms.iter_mut().enumerate() {
            if *norm <= 1e-12 * max_norm {
                rebuilt.row_mut(j).fill(0.0);
                *norm = 0.0;
            }
        }
        let count = m_vt.min(self.doc_norms.len());
        for (j, norm) in norms.iter().enumerate().take(count) {
            self.doc_reps.row_mut(j).copy_from_slice(rebuilt.row(j));
            self.doc_norms[j] = *norm;
        }
        if count > 0 {
            self.quarantined
                .retain(|s| *s != crate::sections::SectionId::DocVectors);
        }
        count
    }

    /// Whether the build achieved the full requested rank or degraded to
    /// the corpus's smaller true rank (see [`BuildStatus`]).
    pub fn build_status(&self) -> BuildStatus {
        let live = self
            .factors
            .singular_values
            .iter()
            .filter(|&&s| s > 0.0)
            .count();
        if live < self.config.rank {
            BuildStatus::Degraded {
                achieved_rank: live,
            }
        } else {
            BuildStatus::Full
        }
    }

    /// The truncation rank `k`.
    pub fn rank(&self) -> usize {
        self.factors.rank()
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.doc_reps.nrows()
    }

    /// Number of terms in the universe.
    pub fn n_terms(&self) -> usize {
        self.factors.u.nrows()
    }

    /// The retained singular values `σ_1 ≥ … ≥ σ_k`.
    pub fn singular_values(&self) -> &[f64] {
        &self.factors.singular_values
    }

    /// The truncated factors.
    pub fn factors(&self) -> &TruncatedSvd {
        &self.factors
    }

    /// The build configuration.
    pub fn config(&self) -> &LsiConfig {
        &self.config
    }

    /// Document `j`'s LSI-space representation (a length-`k` vector).
    ///
    /// # Panics
    /// Panics if `j >= self.n_docs()`; use [`LsiIndex::try_doc_vector`]
    /// for a guarded variant.
    pub fn doc_vector(&self, j: usize) -> &[f64] {
        self.doc_reps.row(j)
    }

    /// Guarded [`LsiIndex::doc_vector`]: out-of-range ids are a typed
    /// [`LsiError::BadQuery`] instead of a panic.
    pub fn try_doc_vector(&self, j: usize) -> Result<&[f64], LsiError> {
        self.check_doc(j)?;
        Ok(self.doc_reps.row(j))
    }

    /// All document representations (`m × k`, one row per document).
    pub fn doc_representations(&self) -> &Matrix {
        &self.doc_reps
    }

    /// Term `t`'s LSI-space representation: row `t` of `U_k D_k`.
    ///
    /// # Panics
    /// Panics if `t >= self.n_terms()`; use [`LsiIndex::try_term_vector`]
    /// for a guarded variant.
    pub fn term_vector(&self, t: usize) -> Vec<f64> {
        let k = self.rank();
        (0..k)
            .map(|i| self.factors.u[(t, i)] * self.factors.singular_values[i])
            .collect()
    }

    /// Guarded [`LsiIndex::term_vector`]: out-of-range ids are a typed
    /// [`LsiError::BadQuery`] instead of a panic.
    pub fn try_term_vector(&self, t: usize) -> Result<Vec<f64>, LsiError> {
        self.check_term(t)?;
        Ok(self.term_vector(t))
    }

    /// Validates a sparse term-space query: every term id must be in
    /// range and every weight finite. This is the shared gate of all
    /// guarded query entry points (and of serving layers that score the
    /// same query through a different backend).
    pub fn validate_query(&self, terms: &[(usize, f64)]) -> Result<(), LsiError> {
        for &(t, w) in terms {
            self.check_term(t)?;
            if !w.is_finite() {
                return Err(BadQuery::NonFiniteWeight { term: t }.into());
            }
        }
        Ok(())
    }

    fn check_term(&self, t: usize) -> Result<(), LsiError> {
        if t >= self.n_terms() {
            return Err(BadQuery::TermOutOfRange {
                term: t,
                n_terms: self.n_terms(),
            }
            .into());
        }
        Ok(())
    }

    fn check_doc(&self, j: usize) -> Result<(), LsiError> {
        if j >= self.n_docs() {
            return Err(BadQuery::DocOutOfRange {
                doc: j,
                n_docs: self.n_docs(),
            }
            .into());
        }
        Ok(())
    }

    /// Folds a sparse term-space query into LSI space: `q̂ = U_kᵀ q`.
    ///
    /// Document columns project the same way (`U_kᵀ a_j = D_k V_kᵀ e_j` is
    /// exactly row `j` of the document representations), so query/document
    /// cosines in this space are the paper's intended comparison.
    ///
    /// Out-of-range term ids and zero weights are silently skipped; a
    /// non-finite weight propagates NaN into the folded vector. Use
    /// [`LsiIndex::try_fold_in`] when malformed input must surface as a
    /// typed error instead.
    pub fn fold_in(&self, terms: &[(usize, f64)]) -> Vec<f64> {
        let k = self.rank();
        let mut out = vec![0.0; k];
        for &(t, w) in terms {
            if t >= self.n_terms() || w == 0.0 {
                continue;
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o += self.factors.u[(t, i)] * w;
            }
        }
        out
    }

    /// Guarded [`LsiIndex::fold_in`]: rejects out-of-range term ids and
    /// non-finite weights with [`LsiError::BadQuery`] rather than skipping
    /// or propagating them.
    pub fn try_fold_in(&self, terms: &[(usize, f64)]) -> Result<Vec<f64>, LsiError> {
        self.validate_query(terms)?;
        Ok(self.fold_in(terms))
    }

    /// Folds a dense term-space vector (length `n`) into LSI space.
    pub fn fold_in_dense(&self, q: &[f64]) -> Result<Vec<f64>, LsiError> {
        Ok(self.factors.project(q)?)
    }

    /// Cosine-ranked retrieval in LSI space for a sparse query.
    ///
    /// # Panics
    /// A non-finite query weight poisons the cosine scores and panics when
    /// the ranked list is sorted. Use [`LsiIndex::try_query`] for the
    /// guarded (and cancellable) variant.
    pub fn query(&self, terms: &[(usize, f64)], top_k: usize) -> RankedList {
        self.query_vector(&self.fold_in(terms), top_k)
    }

    /// Guarded, cancellable [`LsiIndex::query`]: the query is validated
    /// up front ([`LsiError::BadQuery`] on out-of-range ids or non-finite
    /// weights) and the scoring loop polls `cancel` every
    /// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) documents,
    /// returning [`LsiError::Cancelled`] once the token fires.
    pub fn try_query(
        &self,
        terms: &[(usize, f64)],
        top_k: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        let q = self.try_fold_in(terms)?;
        self.rank_by_vector(&q, top_k, None, cancel)
    }

    /// Folds a **new document** into the index (the classical LSI
    /// "folding-in" update): its representation `U_kᵀ d` is appended to the
    /// document set and becomes immediately searchable. Returns the new
    /// document's id.
    ///
    /// `terms` must be weighted consistently with the index's weighting
    /// scheme (raw counts are correct for [`lsi_ir::Weighting::Count`]).
    /// Folding-in does not update the spectral basis itself, so after many
    /// additions — or additions that shift the corpus's topic structure —
    /// the index should be rebuilt; this is the standard trade-off of the
    /// technique, not an implementation shortcut.
    pub fn add_document(&mut self, terms: &[(usize, f64)]) -> usize {
        let rep = self.fold_in(terms);
        let norm = vector::norm(&rep);
        self.doc_reps
            .push_row(&rep)
            // lsi-lint: allow(E1-panic-policy, "invariant: fold_in output length equals the index rank by construction")
            .expect("fold_in always returns a rank-length vector");
        self.doc_norms.push(norm);
        self.doc_reps.nrows() - 1
    }

    /// Guarded [`LsiIndex::add_document`]: rejects out-of-range term ids
    /// and non-finite weights with [`LsiError::BadQuery`] before anything
    /// is appended, so a malformed update can never poison the document
    /// set with NaN representations.
    pub fn try_add_document(&mut self, terms: &[(usize, f64)]) -> Result<usize, LsiError> {
        self.validate_query(terms)?;
        Ok(self.add_document(terms))
    }

    /// Appends a document whose LSI-space representation is already known
    /// (a length-`rank` coordinate vector), bypassing fold-in entirely.
    ///
    /// This is the transplant primitive of document-partitioned sharding:
    /// a shard receives the *bitwise* row another index computed, so the
    /// cosine scores it serves are identical to the donor's — scores are a
    /// pure function of the query fold-in bits and the stored row bits.
    /// Rejects wrong-length or non-finite vectors with
    /// [`LsiError::BadQuery`]. Returns the new document's id.
    pub fn add_document_vector(&mut self, coords: &[f64]) -> Result<usize, LsiError> {
        if coords.len() != self.rank() {
            return Err(BadQuery::WrongDimension {
                got: coords.len(),
                expected: self.rank(),
            }
            .into());
        }
        if coords.iter().any(|x| !x.is_finite()) {
            return Err(BadQuery::NonFiniteQuery.into());
        }
        let norm = vector::norm(coords);
        self.doc_reps
            .push_row(coords)
            // lsi-lint: allow(E1-panic-policy, "invariant: coords length was just checked against the rank")
            .expect("coords length equals the index rank");
        self.doc_norms.push(norm);
        Ok(self.doc_reps.nrows() - 1)
    }

    /// Retires document `doc` from retrieval: its representation row and
    /// norm are zeroed, and zero-norm documents are skipped by every
    /// cosine scan (the same mechanism that hides numerically-null
    /// documents). The id stays allocated — later documents keep their
    /// ids — so retirement composes with journal replay, which keys on
    /// the document count. Idempotent. Out-of-range ids are a typed
    /// [`LsiError::BadQuery`].
    pub fn retire_document(&mut self, doc: usize) -> Result<(), LsiError> {
        self.check_doc(doc)?;
        self.doc_reps.row_mut(doc).fill(0.0);
        self.doc_norms[doc] = 0.0;
        Ok(())
    }

    /// A zero-document index sharing this index's spectral basis (factors,
    /// configuration): the starting point for a document-partitioned shard,
    /// to be populated with [`LsiIndex::add_document_vector`]. Queries fold
    /// in through the identical `U_k`, so scores computed against
    /// transplanted rows match the donor index bitwise.
    pub fn basis_clone(&self) -> Self {
        // `vt` holds per-document loadings; the basis carries none, so it
        // shrinks to `k × 0` to keep the factor dimensions consistent
        // with the empty document set (storage validates exactly that).
        let factors = TruncatedSvd {
            u: self.factors.u.clone(),
            singular_values: self.factors.singular_values.clone(),
            vt: Matrix::zeros(self.rank(), 0),
        };
        LsiIndex {
            factors,
            doc_reps: Matrix::zeros(0, self.rank()),
            doc_norms: Vec::new(),
            config: self.config.clone(),
            solve_report: None,
            quarantined: Vec::new(),
        }
    }

    /// Terms most similar to term `t` in LSI space (cosine over rows of
    /// `U_k D_k`), excluding `t` itself. This is the term-side view of the
    /// synonymy effect: surface forms that share contexts land together.
    ///
    /// # Panics
    /// Panics if `t >= self.n_terms()`; use [`LsiIndex::try_similar_terms`]
    /// for the guarded (and cancellable) variant.
    pub fn similar_terms(&self, t: usize, top_k: usize) -> RankedList {
        self.similar_terms_inner(t, top_k, None)
            .expect("infallible without a cancel token")
    }

    /// Guarded, cancellable [`LsiIndex::similar_terms`]: out-of-range term
    /// ids are [`LsiError::BadQuery`], and the scoring loop polls `cancel`
    /// every [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) terms.
    pub fn try_similar_terms(
        &self,
        t: usize,
        top_k: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        self.check_term(t)?;
        self.similar_terms_inner(t, top_k, cancel)
    }

    fn similar_terms_inner(
        &self,
        t: usize,
        top_k: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        // Term vectors are rows of U_k scaled by Σ; computing the cosines
        // with σ²-weighted dot products over U's (contiguous) rows avoids
        // materializing a scaled vector per candidate term.
        let k = self.rank();
        let s2: Vec<f64> = self.factors.singular_values.iter().map(|s| s * s).collect();
        let weighted_norm = |row: &[f64]| -> f64 {
            row.iter()
                .zip(&s2)
                .map(|(x, w)| x * x * w)
                .sum::<f64>()
                .sqrt()
        };
        let target = self.factors.u.row(t)[..k].to_vec();
        let tn = weighted_norm(&target);
        if tn <= 0.0 {
            return Ok(RankedList::default());
        }
        let mut hits: Vec<SearchHit> = Vec::new();
        for u in 0..self.n_terms() {
            if u % CHECK_INTERVAL == 0 {
                if let Some(token) = cancel {
                    token.check()?;
                }
            }
            if u == t {
                continue;
            }
            let row = &self.factors.u.row(u)[..k];
            let vn = weighted_norm(row);
            if vn > 0.0 {
                let dot: f64 = row
                    .iter()
                    .zip(&target)
                    .zip(&s2)
                    .map(|((a, b), w)| a * b * w)
                    .sum();
                hits.push(SearchHit {
                    doc: u,
                    score: (dot / (tn * vn)).clamp(-1.0, 1.0),
                });
            }
        }
        Ok(RankedList::from_hits(hits).truncated(top_k))
    }

    /// Rocchio relevance feedback in LSI space: moves a folded-in query
    /// toward the centroid of `relevant` documents and away from the
    /// centroid of `non_relevant` ones, returning the refined query vector
    /// (feed it to [`LsiIndex::query_vector`]).
    ///
    /// `alpha`, `beta`, `gamma` are the classical weights for the original
    /// query, the relevant centroid, and the non-relevant centroid
    /// (typical: 1.0, 0.75, 0.15). Empty feedback sets contribute nothing.
    pub fn rocchio(
        &self,
        query: &[f64],
        relevant: &[usize],
        non_relevant: &[usize],
        alpha: f64,
        beta: f64,
        gamma: f64,
    ) -> Vec<f64> {
        let k = self.rank();
        assert_eq!(query.len(), k, "rocchio: query must live in LSI space");
        let centroid = |docs: &[usize]| -> Vec<f64> {
            let mut c = vec![0.0; k];
            let mut count = 0usize;
            for &d in docs {
                if d < self.n_docs() {
                    vector::axpy(1.0, self.doc_reps.row(d), &mut c);
                    count += 1;
                }
            }
            if count > 0 {
                vector::scale(1.0 / count as f64, &mut c);
            }
            c
        };
        let rel = centroid(relevant);
        let nonrel = centroid(non_relevant);
        (0..k)
            .map(|i| alpha * query[i] + beta * rel[i] - gamma * nonrel[i])
            .collect()
    }

    /// Cosine-ranked retrieval for a query already in LSI space (e.g. a
    /// [`LsiIndex::rocchio`]-refined vector).
    ///
    /// # Panics
    /// Panics if `q.len() != self.rank()` — a term-space vector must go
    /// through [`LsiIndex::fold_in`] first.
    pub fn query_vector(&self, q: &[f64], top_k: usize) -> RankedList {
        assert_eq!(
            q.len(),
            self.rank(),
            "query_vector: query must live in LSI space (length = rank)"
        );
        self.rank_by_vector(q, top_k, None, None)
            .expect("infallible without a cancel token")
    }

    /// Guarded, cancellable [`LsiIndex::query_vector`]: dimension and
    /// finiteness problems are [`LsiError::BadQuery`] instead of panics,
    /// and the scoring loop polls `cancel` every
    /// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) documents.
    pub fn try_query_vector(
        &self,
        q: &[f64],
        top_k: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        if q.len() != self.rank() {
            return Err(BadQuery::WrongDimension {
                got: q.len(),
                expected: self.rank(),
            }
            .into());
        }
        if q.iter().any(|x| !x.is_finite()) {
            return Err(BadQuery::NonFiniteQuery.into());
        }
        self.rank_by_vector(q, top_k, None, cancel)
    }

    /// Documents most similar to document `j` (excluding `j` itself).
    ///
    /// # Panics
    /// Panics if `j >= self.n_docs()`; use [`LsiIndex::try_similar_docs`]
    /// for the guarded (and cancellable) variant.
    pub fn similar_docs(&self, j: usize, top_k: usize) -> RankedList {
        let q = self.doc_vector(j).to_vec();
        self.rank_by_vector(&q, top_k, Some(j), None)
            .expect("infallible without a cancel token")
    }

    /// Guarded, cancellable [`LsiIndex::similar_docs`]: out-of-range
    /// document ids are [`LsiError::BadQuery`], and the scoring loop polls
    /// `cancel` every [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL)
    /// documents.
    pub fn try_similar_docs(
        &self,
        j: usize,
        top_k: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        self.check_doc(j)?;
        let q = self.doc_reps.row(j).to_vec();
        self.rank_by_vector(&q, top_k, Some(j), cancel)
    }

    /// Cosine similarity between two indexed documents in LSI space.
    pub fn doc_cosine(&self, i: usize, j: usize) -> f64 {
        vector::cosine(self.doc_reps.row(i), self.doc_reps.row(j))
    }

    /// Angle (radians) between two documents in LSI space — the quantity
    /// tabulated by the paper's experiment.
    pub fn doc_angle(&self, i: usize, j: usize) -> f64 {
        vector::angle(self.doc_reps.row(i), self.doc_reps.row(j))
    }

    /// The shared cosine-scoring hot loop. With a token, cancellation is
    /// cooperative: the token is polled every
    /// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) documents, so an
    /// expired deadline stops the scan within one interval.
    fn rank_by_vector(
        &self,
        q: &[f64],
        top_k: usize,
        exclude: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<RankedList, LsiError> {
        let qn = vector::norm(q);
        if qn <= 0.0 {
            return Ok(RankedList::default());
        }
        let mut hits: Vec<SearchHit> = Vec::new();
        for d in 0..self.n_docs() {
            if d % CHECK_INTERVAL == 0 {
                if let Some(token) = cancel {
                    token.check()?;
                }
            }
            if Some(d) == exclude || self.doc_norms[d] <= 0.0 {
                continue;
            }
            hits.push(SearchHit {
                doc: d,
                score: (vector::dot(q, self.doc_reps.row(d)) / (qn * self.doc_norms[d]))
                    .clamp(-1.0, 1.0),
            });
        }
        Ok(RankedList::from_hits(hits).truncated(top_k))
    }

    /// Scores a coalesced batch of LSI-space queries in one pass over the
    /// document representations.
    ///
    /// Each entry is ranked exactly as [`LsiIndex::try_query_vector`] would
    /// rank it — same validation, same per-document cosine arithmetic, same
    /// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) cancellation
    /// granularity — but the document rows are streamed once per
    /// [`CHECK_INTERVAL`] block and dotted against every still-live query
    /// via [`Matrix::dot_rows_batch_into`], amortizing the row-matrix
    /// memory traffic across the batch. The result for every entry is
    /// **bitwise identical** to the sequential per-query call, for every
    /// batch size, ordering, and partitioning: scores are a pure function
    /// of the query bits and the stored row bits, and the batched kernel
    /// performs the identical rounding sequence per element.
    ///
    /// Per-entry failures (wrong dimension, non-finite vector, cancelled
    /// token) are reported in that entry's slot without disturbing the
    /// rest of the batch. Results are returned in input order.
    pub fn query_vectors_batch(
        &self,
        batch: &[VectorQuery<'_>],
    ) -> Vec<Result<RankedList, LsiError>> {
        let n_docs = self.n_docs();
        let mut results: Vec<Option<Result<RankedList, LsiError>>> =
            (0..batch.len()).map(|_| None).collect();
        let mut qns = vec![0.0f64; batch.len()];
        let mut hits: Vec<Vec<SearchHit>> = (0..batch.len()).map(|_| Vec::new()).collect();
        let mut active: Vec<usize> = Vec::with_capacity(batch.len());
        for (slot, entry) in batch.iter().enumerate() {
            if entry.vector.len() != self.rank() {
                results[slot] = Some(Err(BadQuery::WrongDimension {
                    got: entry.vector.len(),
                    expected: self.rank(),
                }
                .into()));
                continue;
            }
            if entry.vector.iter().any(|x| !x.is_finite()) {
                results[slot] = Some(Err(BadQuery::NonFiniteQuery.into()));
                continue;
            }
            let qn = vector::norm(entry.vector);
            if qn <= 0.0 {
                results[slot] = Some(Ok(RankedList::default()));
                continue;
            }
            qns[slot] = qn;
            active.push(slot);
        }
        let mut scores: Vec<f64> = Vec::new();
        let mut block_start = 0;
        while block_start < n_docs && !active.is_empty() {
            // Sequential scoring polls at every d % CHECK_INTERVAL == 0, i.e.
            // right before each block; mirror that here, per live query.
            active.retain(|&slot| match batch[slot].cancel {
                Some(token) => match token.check() {
                    Ok(()) => true,
                    Err(e) => {
                        results[slot] = Some(Err(e));
                        discard_partial_hits(&mut hits[slot]);
                        false
                    }
                },
                None => true,
            });
            if active.is_empty() {
                break;
            }
            let block_len = CHECK_INTERVAL.min(n_docs - block_start);
            let queries: Vec<&[f64]> = active.iter().map(|&s| batch[s].vector).collect();
            scores.clear();
            scores.resize(block_len * active.len(), 0.0);
            self.doc_reps
                .dot_rows_batch_into(block_start, block_len, &queries, &mut scores)
                // lsi-lint: allow(E1-panic-policy, "invariant: block bounds and query lengths were validated above")
                .expect("batched dot shapes are valid by construction");
            for r in 0..block_len {
                let d = block_start + r;
                let dn = self.doc_norms[d];
                if dn <= 0.0 {
                    continue;
                }
                for (qi, &slot) in active.iter().enumerate() {
                    hits[slot].push(SearchHit {
                        doc: d,
                        score: (scores[r * active.len() + qi] / (qns[slot] * dn)).clamp(-1.0, 1.0),
                    });
                }
            }
            block_start += block_len;
        }
        for slot in active {
            let h = std::mem::take(&mut hits[slot]);
            results[slot] = Some(Ok(RankedList::from_hits(h).truncated(batch[slot].top_k)));
        }
        results
            .into_iter()
            // lsi-lint: allow(E1-panic-policy, "invariant: every slot is filled by validation, cancellation, or finalization above")
            .map(|r| r.expect("every batch slot resolved"))
            .collect()
    }
}

/// One query of a coalesced scoring batch (see
/// [`LsiIndex::query_vectors_batch`]).
#[derive(Debug)]
pub struct VectorQuery<'a> {
    /// The LSI-space query vector (length must equal the index rank).
    pub vector: &'a [f64],
    /// Ranking cutoff for this query.
    pub top_k: usize,
    /// Optional cooperative-cancel token, polled at the same
    /// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) granularity as
    /// sequential scoring.
    pub cancel: Option<&'a CancelToken>,
}

/// Drops any partial hits accumulated for a query that was cancelled
/// mid-scan (they can never be reported).
fn discard_partial_hits(hits: &mut Vec<SearchHit>) {
    hits.clear();
    hits.shrink_to_fit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SvdBackend;
    use lsi_corpus::{SeparableConfig, SeparableModel};
    use lsi_ir::Weighting;
    use rand::SeedableRng;

    fn small_corpus(seed: u64) -> (TermDocumentMatrix, SeparableModel) {
        let model = SeparableModel::build(SeparableConfig::small(4, 0.05)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let corpus = model.model().sample_corpus(60, &mut rng);
        (TermDocumentMatrix::from_generated(&corpus).unwrap(), model)
    }

    /// Asserts two ranked lists carry identical doc ids and score bits.
    fn assert_ranking_bits_eq(got: &RankedList, want: &RankedList, what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: hit count differs");
        for (g, w) in got.hits().iter().zip(want.hits()) {
            assert_eq!(g.doc, w.doc, "{what}: doc order differs");
            assert_eq!(
                g.score.to_bits(),
                w.score.to_bits(),
                "{what}: score bits differ on doc {}",
                g.doc
            );
        }
    }

    #[test]
    fn batched_scoring_matches_sequential_bitwise() {
        let (td, _) = small_corpus(7);
        let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let queries: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                index.fold_in(&[
                    (i % index.n_terms(), 1.0),
                    ((i * 3 + 1) % index.n_terms(), 0.5),
                ])
            })
            .collect();
        let batch: Vec<VectorQuery<'_>> = queries
            .iter()
            .enumerate()
            .map(|(i, v)| VectorQuery {
                vector: v,
                top_k: 1 + i % 5,
                cancel: None,
            })
            .collect();
        let out = index.query_vectors_batch(&batch);
        for (i, (entry, got)) in batch.iter().zip(&out).enumerate() {
            let want = index
                .try_query_vector(entry.vector, entry.top_k, None)
                .unwrap();
            assert_ranking_bits_eq(got.as_ref().unwrap(), &want, &format!("batch slot {i}"));
        }
    }

    #[test]
    fn batched_scoring_isolates_per_entry_failures() {
        let (td, _) = small_corpus(9);
        let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        let good = index.fold_in(&[(0, 1.0)]);
        let wrong_dim = vec![1.0; index.rank() + 1];
        let non_finite = vec![f64::NAN; index.rank()];
        let zero = vec![0.0; index.rank()];
        let cancelled_token = CancelToken::new();
        cancelled_token.cancel();
        let batch = vec![
            VectorQuery {
                vector: &good,
                top_k: 5,
                cancel: None,
            },
            VectorQuery {
                vector: &wrong_dim,
                top_k: 5,
                cancel: None,
            },
            VectorQuery {
                vector: &non_finite,
                top_k: 5,
                cancel: None,
            },
            VectorQuery {
                vector: &zero,
                top_k: 5,
                cancel: None,
            },
            VectorQuery {
                vector: &good,
                top_k: 5,
                cancel: Some(&cancelled_token),
            },
        ];
        let out = index.query_vectors_batch(&batch);
        let want = index.try_query_vector(&good, 5, None).unwrap();
        assert_ranking_bits_eq(out[0].as_ref().unwrap(), &want, "good entry");
        assert!(matches!(
            out[1],
            Err(LsiError::BadQuery(BadQuery::WrongDimension { .. }))
        ));
        assert!(matches!(
            out[2],
            Err(LsiError::BadQuery(BadQuery::NonFiniteQuery))
        ));
        assert!(out[3].as_ref().unwrap().is_empty());
        assert!(matches!(out[4], Err(LsiError::Cancelled)));
        // The empty batch is a no-op.
        assert!(index.query_vectors_batch(&[]).is_empty());
    }

    #[test]
    fn build_validates() {
        let (td, _) = small_corpus(1);
        assert!(matches!(
            LsiIndex::build(&td, LsiConfig::with_rank(0)),
            Err(LsiError::BadRank { .. })
        ));
        assert!(matches!(
            LsiIndex::build(&td, LsiConfig::with_rank(10_000)),
            Err(LsiError::BadRank { .. })
        ));
        let empty = TermDocumentMatrix::from_triplets(5, 0, &[]).unwrap();
        assert!(matches!(
            LsiIndex::build(&empty, LsiConfig::with_rank(1)),
            Err(LsiError::EmptyCorpus)
        ));
    }

    #[test]
    fn build_attaches_solve_report() {
        let (td, _) = small_corpus(21);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let report = idx.solve_report().expect("fresh build carries a report");
        assert_eq!(report.succeeded, Some(0));
        assert_eq!(report.requested_rank, 4);
        assert_eq!(report.achieved_rank, 4);
        assert_eq!(idx.build_status(), BuildStatus::Full);
    }

    #[test]
    fn rank_deficient_corpus_builds_degraded() {
        // Two identical documents over three terms: true rank 1.
        let td = TermDocumentMatrix::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        assert_eq!(
            idx.build_status(),
            BuildStatus::Degraded { achieved_rank: 1 }
        );
        let report = idx.solve_report().unwrap();
        assert_eq!(report.achieved_rank, 1);
        assert!(report.degraded());
        // Retrieval still works in the 1-dimensional live space.
        assert!(idx.doc_cosine(0, 1) > 0.999);
    }

    #[test]
    fn injected_transient_fault_still_builds_verified() {
        use lsi_linalg::faults::{FaultKind, FaultPlan};
        let (td, _) = small_corpus(22);
        let clean = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let faults =
            FaultPlan::new(3).with_fault(FaultKind::NanInjection { probability: 0.2 }, 4, 8);
        let idx =
            LsiIndex::build_with_injected_faults(&td, LsiConfig::with_rank(4), faults).unwrap();
        for (a, b) in clean.singular_values().iter().zip(idx.singular_values()) {
            assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn injected_persistent_fault_exhausts_with_typed_error() {
        use lsi_linalg::faults::{FaultKind, FaultPlan};
        let (td, _) = small_corpus(23);
        let faults = FaultPlan::new(4).with_fault(
            FaultKind::NanInjection { probability: 0.5 },
            0,
            usize::MAX,
        );
        match LsiIndex::build_with_injected_faults(&td, LsiConfig::with_rank(4), faults) {
            Err(LsiError::SolverExhausted(report)) => {
                assert!(!report.attempts.is_empty());
                assert!(report.succeeded.is_none());
            }
            other => panic!("expected SolverExhausted, got {other:?}"),
        }
    }

    #[test]
    fn backends_agree_on_singular_values() {
        let (td, _) = small_corpus(2);
        let dense = LsiIndex::build(
            &td,
            LsiConfig {
                rank: 4,
                weighting: Weighting::Count,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap();
        let lanczos = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        for (a, b) in dense
            .singular_values()
            .iter()
            .zip(lanczos.singular_values())
        {
            assert!((a - b).abs() < 1e-6 * a.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn doc_vectors_are_projected_columns() {
        let (td, _) = small_corpus(3);
        let idx = LsiIndex::build(
            &td,
            LsiConfig {
                rank: 4,
                weighting: Weighting::Count,
                backend: SvdBackend::Dense,
            },
        )
        .unwrap();
        // Row j of doc_reps == U_kᵀ a_j.
        let dense = td.to_dense();
        for j in [0usize, 5, 17] {
            let proj = idx.fold_in_dense(&dense.col(j)).unwrap();
            let rep = idx.doc_vector(j);
            for (a, b) in proj.iter().zip(rep) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn same_topic_docs_score_higher() {
        let (td, _) = small_corpus(4);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let labels = td.topic_labels();
        // For each document, its most-similar neighbor should share its topic
        // in the overwhelming majority of cases.
        let mut good = 0;
        let mut total = 0;
        for j in 0..td.n_docs() {
            let sims = idx.similar_docs(j, 1);
            if let Some(top) = sims.hits().first() {
                total += 1;
                if labels[top.doc] == labels[j] {
                    good += 1;
                }
            }
        }
        assert!(
            good as f64 >= 0.95 * total as f64,
            "only {good}/{total} nearest neighbors on-topic"
        );
    }

    #[test]
    fn query_retrieves_topic_documents() {
        let (td, model) = small_corpus(6);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        // Query: a few primary terms of topic 2.
        let q: Vec<(usize, f64)> = model.primary_set(2)[..5]
            .iter()
            .map(|&t| (t, 1.0))
            .collect();
        let res = idx.query(&q, 10);
        assert!(!res.is_empty());
        let labels = td.topic_labels();
        let on_topic = res
            .hits()
            .iter()
            .filter(|h| labels[h.doc] == Some(2))
            .count();
        assert!(on_topic >= 9, "only {on_topic}/10 of top hits on topic 2");
    }

    #[test]
    fn fold_in_ignores_oov_and_zero() {
        let (td, _) = small_corpus(6);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let empty = idx.fold_in(&[(99_999, 1.0), (0, 0.0)]);
        assert!(empty.iter().all(|&x| x == 0.0));
        assert!(idx.query(&[(99_999, 1.0)], 5).is_empty());
    }

    #[test]
    fn term_vector_shape_and_scaling() {
        let (td, _) = small_corpus(7);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let tv = idx.term_vector(0);
        assert_eq!(tv.len(), 3);
        for (i, &x) in tv.iter().enumerate() {
            let expect = idx.factors().u[(0, i)] * idx.singular_values()[i];
            assert!((x - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rocchio_feedback_improves_topic_focus() {
        let (td, model) = small_corpus(6);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let labels = td.topic_labels();

        // A deliberately weak query: one topic-0 term plus one topic-1 term.
        let q0 = idx.fold_in(&[
            (model.primary_set(0)[0], 1.0),
            (model.primary_set(1)[0], 1.0),
        ]);
        let before = idx.query_vector(&q0, 10);
        // Feedback: mark the topic-0 hits relevant, topic-1 hits not.
        let rel: Vec<usize> = before
            .hits()
            .iter()
            .filter(|h| labels[h.doc] == Some(0))
            .map(|h| h.doc)
            .collect();
        let nonrel: Vec<usize> = before
            .hits()
            .iter()
            .filter(|h| labels[h.doc] == Some(1))
            .map(|h| h.doc)
            .collect();
        let refined = idx.rocchio(&q0, &rel, &nonrel, 1.0, 0.75, 0.15);
        let after = idx.query_vector(&refined, 10);

        let on_topic = |r: &lsi_ir::retrieval::RankedList| {
            r.hits().iter().filter(|h| labels[h.doc] == Some(0)).count()
        };
        assert!(
            on_topic(&after) >= on_topic(&before),
            "feedback did not help: {} -> {}",
            on_topic(&before),
            on_topic(&after)
        );
        // Empty feedback is the identity (up to alpha scaling).
        let same = idx.rocchio(&q0, &[], &[], 1.0, 0.75, 0.15);
        for (a, b) in same.iter().zip(&q0) {
            assert!((a - b).abs() < 1e-12);
        }
        // Out-of-range doc ids are ignored, not a panic.
        let _ = idx.rocchio(&q0, &[999_999], &[], 1.0, 0.75, 0.15);
    }

    #[test]
    fn doc_cosine_and_angle_consistent() {
        let (td, _) = small_corpus(8);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let c = idx.doc_cosine(0, 1);
        let a = idx.doc_angle(0, 1);
        assert!((a.cos() - c).abs() < 1e-10);
        assert!((idx.doc_cosine(2, 2) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn add_document_folds_in_and_is_searchable() {
        let (td, model) = small_corpus(6);
        let mut idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let before = idx.n_docs();

        // A fresh document made of topic 1's primary terms.
        let new_doc: Vec<(usize, f64)> = model.primary_set(1)[..6]
            .iter()
            .map(|&t| (t, 2.0))
            .collect();
        let id = idx.add_document(&new_doc);
        assert_eq!(id, before);
        assert_eq!(idx.n_docs(), before + 1);

        // Its nearest neighbors are topic-1 documents.
        let sims = idx.similar_docs(id, 5);
        let labels = td.topic_labels();
        for hit in sims.hits() {
            assert_eq!(labels[hit.doc], Some(1), "off-topic neighbor {}", hit.doc);
        }
        // And a topic-1 query retrieves it.
        let res = idx.query(&new_doc, idx.n_docs());
        assert!(res.doc_ids().contains(&id));
    }

    #[test]
    fn similar_terms_finds_cohort() {
        let (td, model) = small_corpus(6);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(4)).unwrap();
        let t = model.primary_set(2)[0];
        let sims = idx.similar_terms(t, 10);
        assert!(!sims.is_empty());
        // Top similar terms belong to the same topic's primary set.
        let primary = model.primary_set(2);
        let on_topic = sims
            .hits()
            .iter()
            .take(5)
            .filter(|h| primary.contains(&h.doc))
            .count();
        assert!(on_topic >= 4, "only {on_topic}/5 on-topic similar terms");
        // Never returns the query term itself.
        assert!(sims.hits().iter().all(|h| h.doc != t));
    }

    #[test]
    fn guarded_variants_reject_malformed_queries() {
        let (td, _) = small_corpus(31);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let n = idx.n_terms();
        let m = idx.n_docs();

        // Out-of-range term ids.
        assert_eq!(
            idx.try_query(&[(n, 1.0)], 5, None),
            Err(LsiError::BadQuery(BadQuery::TermOutOfRange {
                term: n,
                n_terms: n
            }))
        );
        assert!(matches!(
            idx.try_fold_in(&[(n + 7, 1.0)]),
            Err(LsiError::BadQuery(BadQuery::TermOutOfRange { .. }))
        ));
        assert!(matches!(
            idx.try_term_vector(n),
            Err(LsiError::BadQuery(BadQuery::TermOutOfRange { .. }))
        ));
        assert!(matches!(
            idx.try_similar_terms(n, 5, None),
            Err(LsiError::BadQuery(BadQuery::TermOutOfRange { .. }))
        ));

        // Non-finite weights.
        assert!(matches!(
            idx.try_query(&[(0, f64::NAN)], 5, None),
            Err(LsiError::BadQuery(BadQuery::NonFiniteWeight { term: 0 }))
        ));
        assert!(matches!(
            idx.try_query(&[(1, f64::INFINITY)], 5, None),
            Err(LsiError::BadQuery(BadQuery::NonFiniteWeight { term: 1 }))
        ));

        // Out-of-range document ids.
        assert!(matches!(
            idx.try_doc_vector(m),
            Err(LsiError::BadQuery(BadQuery::DocOutOfRange { .. }))
        ));
        assert!(matches!(
            idx.try_similar_docs(m + 3, 5, None),
            Err(LsiError::BadQuery(BadQuery::DocOutOfRange { .. }))
        ));

        // Dense queries: wrong dimension / non-finite components.
        assert!(matches!(
            idx.try_query_vector(&[1.0; 7], 5, None),
            Err(LsiError::BadQuery(BadQuery::WrongDimension {
                got: 7,
                expected: 3
            }))
        ));
        assert!(matches!(
            idx.try_query_vector(&[f64::NAN, 0.0, 0.0], 5, None),
            Err(LsiError::BadQuery(BadQuery::NonFiniteQuery))
        ));

        // Malformed updates never mutate the index.
        let mut idx2 = idx.clone();
        assert!(idx2.try_add_document(&[(n, 1.0)]).is_err());
        assert!(idx2.try_add_document(&[(0, f64::NAN)]).is_err());
        assert_eq!(idx2.n_docs(), m);
    }

    #[test]
    fn guarded_variants_match_unguarded_on_clean_input() {
        let (td, _) = small_corpus(32);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let q = [(0usize, 1.0), (3, 2.0)];
        let a = idx.query(&q, 10);
        let b = idx.try_query(&q, 10, None).unwrap();
        assert_eq!(a.doc_ids(), b.doc_ids());
        assert_eq!(
            idx.similar_docs(2, 5).doc_ids(),
            idx.try_similar_docs(2, 5, None).unwrap().doc_ids()
        );
        assert_eq!(
            idx.similar_terms(1, 5).doc_ids(),
            idx.try_similar_terms(1, 5, None).unwrap().doc_ids()
        );
        assert_eq!(idx.term_vector(2), idx.try_term_vector(2).unwrap());
        assert_eq!(idx.doc_vector(3), idx.try_doc_vector(3).unwrap());
        let mut g = idx.clone();
        let mut u = idx.clone();
        assert_eq!(
            g.try_add_document(&[(0, 2.0)]).unwrap(),
            u.add_document(&[(0, 2.0)])
        );
        assert_eq!(g.doc_vector(g.n_docs() - 1), u.doc_vector(u.n_docs() - 1));
    }

    #[test]
    fn cancelled_token_stops_scoring_with_typed_error() {
        use crate::cancel::CancelToken;
        let (td, _) = small_corpus(33);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            idx.try_query(&[(0, 1.0)], 5, Some(&token)),
            Err(LsiError::Cancelled)
        );
        assert_eq!(
            idx.try_similar_docs(0, 5, Some(&token)),
            Err(LsiError::Cancelled)
        );
        assert_eq!(
            idx.try_similar_terms(0, 5, Some(&token)),
            Err(LsiError::Cancelled)
        );
        // An already-expired deadline behaves identically.
        let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            idx.try_query_vector(&[1.0, 0.0, 0.0], 5, Some(&expired)),
            Err(LsiError::Cancelled)
        );
        // A live token changes nothing.
        let live = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
        assert_eq!(
            idx.try_query(&[(0, 1.0)], 5, Some(&live))
                .unwrap()
                .doc_ids(),
            idx.query(&[(0, 1.0)], 5).doc_ids()
        );
    }

    #[test]
    fn retrieval_edge_cases_return_typed_results() {
        let (td, _) = small_corpus(34);
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let m = idx.n_docs();

        // top_k = 0 is an empty list everywhere, never a panic.
        assert!(idx.query(&[(0, 1.0)], 0).is_empty());
        assert!(idx.similar_docs(0, 0).is_empty());
        assert!(idx.similar_terms(0, 0).is_empty());
        assert!(idx.try_similar_docs(0, 0, None).unwrap().is_empty());

        // top_k > n_docs returns everything that scored, bounded by m.
        let all = idx.try_similar_docs(0, m + 100, None).unwrap();
        assert!(all.len() <= m);
        assert!(!all.is_empty());

        // Rocchio with empty feedback sets on the full surface.
        let q = idx.fold_in(&[(0, 1.0)]);
        let same = idx.rocchio(&q, &[], &[], 1.0, 0.75, 0.15);
        assert_eq!(same.len(), idx.rank());
        // Entirely out-of-range feedback sets are ignored, not a panic.
        let refined = idx.rocchio(&q, &[m + 1, m + 2], &[m + 9], 1.0, 0.75, 0.15);
        for (a, b) in refined.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn degraded_index_query_surface_stays_typed() {
        // Rank-deficient corpus: requested rank 2, true rank 1.
        let td = TermDocumentMatrix::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        let idx = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        assert!(matches!(idx.build_status(), BuildStatus::Degraded { .. }));
        // Every retrieval entry point still answers in the live subspace.
        assert!(!idx.try_query(&[(0, 1.0)], 5, None).unwrap().is_empty());
        assert!(!idx.try_similar_docs(0, 5, None).unwrap().is_empty());
        let _ = idx.try_similar_terms(0, 5, None).unwrap();
        assert!(idx.try_query(&[(0, 1.0)], 0, None).unwrap().is_empty());
        let oversized = idx.try_similar_docs(0, 99, None).unwrap();
        assert!(oversized.len() <= idx.n_docs());
    }

    #[test]
    fn weighting_changes_factors() {
        let (td, _) = small_corpus(9);
        let count = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        let tfidf = LsiIndex::build(
            &td,
            LsiConfig {
                rank: 3,
                weighting: Weighting::TfIdf,
                backend: SvdBackend::default(),
            },
        )
        .unwrap();
        assert_ne!(count.singular_values()[0], tfidf.singular_values()[0]);
    }
}
