//! Cooperative cancellation for query-path hot loops.
//!
//! A serving system cannot let one pathological query stall a worker
//! forever: scoring loops must be interruptible. [`CancelToken`] is the
//! std-only primitive for that — a shared cancellation flag plus an
//! optional wall-clock deadline. The cosine-scoring loops in
//! [`crate::LsiIndex`] (`try_query`, `try_query_vector`,
//! `try_similar_docs`, `try_similar_terms`) poll their token every
//! [`CHECK_INTERVAL`] candidates and bail out with
//! [`crate::LsiError::Cancelled`] when it fires.
//!
//! Tokens are cheap to clone (an `Arc` plus a `Copy` deadline) and clones
//! share the cancellation flag, so a supervisor can hand one token to a
//! worker and trip it from another thread.
//!
//! Deadlines use [`std::time::Instant`]; this module is serving
//! infrastructure, not experiment code, so the repository's
//! no-wall-clock-in-experiments rule does not apply here.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::index::LsiError;

/// How many scoring candidates (documents or terms) are processed between
/// consecutive token polls inside the hot loops. Small enough that a
/// cancelled query stops within microseconds, large enough that the
/// `Instant::now()` call is amortized to noise.
pub const CHECK_INTERVAL: usize = 1024;

#[derive(Debug)]
struct Flag {
    cancelled: AtomicBool,
}

/// A cancellation token: a shared flag plus an optional deadline.
///
/// The token is observed (`is_cancelled`, `check`) by long-running scoring
/// loops and tripped either explicitly ([`CancelToken::cancel`], from any
/// thread) or implicitly by its deadline passing.
///
/// # Examples
///
/// ```
/// use lsi_core::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// let observer = token.clone(); // shares the flag
/// token.cancel();
/// assert!(observer.is_cancelled());
/// assert!(observer.check().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<Flag>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own; only [`CancelToken::cancel`]
    /// trips it.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(Flag {
                cancelled: AtomicBool::new(false),
            }),
            deadline: None,
        }
    }

    /// A token that expires `after` from now.
    pub fn with_deadline(after: Duration) -> Self {
        // lsi-lint: allow(D1-nondeterminism, "deadline clock: wall time bounds latency, never reaches retrieval results")
        Self::with_deadline_at(Instant::now() + after)
    }

    /// A token that expires at the absolute instant `at`.
    pub fn with_deadline_at(at: Instant) -> Self {
        CancelToken {
            deadline: Some(at),
            ..Self::new()
        }
    }

    /// A child token sharing this token's cancellation flag but with a
    /// deadline no later than `at` (the tighter of the two wins).
    ///
    /// This is how a serving layer expresses "soft deadline inside a hard
    /// deadline": cancel the parent and both trip; let the child expire and
    /// only the soft-deadlined work stops.
    pub fn child_with_deadline_at(&self, at: Instant) -> Self {
        let deadline = Some(match self.deadline {
            Some(own) => own.min(at),
            None => at,
        });
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline,
        }
    }

    /// Trips the shared flag: every clone and child observes the
    /// cancellation.
    pub fn cancel(&self) {
        self.flag.cancelled.store(true, Ordering::Release);
    }

    /// True once the flag is tripped or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            // lsi-lint: allow(D1-nondeterminism, "deadline clock: wall time bounds latency, never reaches retrieval results")
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// [`CancelToken::is_cancelled`] as a `Result`, for `?`-style use in
    /// scoring loops: `Err(LsiError::Cancelled)` once tripped.
    pub fn check(&self) -> Result<(), LsiError> {
        if self.is_cancelled() {
            Err(LsiError::Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_trips_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(LsiError::Cancelled)));
    }

    #[test]
    fn past_deadline_is_cancelled() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn child_takes_tighter_deadline_and_shares_flag() {
        let now = Instant::now();
        let parent = CancelToken::with_deadline_at(now + Duration::from_secs(3600));
        let child = parent.child_with_deadline_at(now + Duration::from_secs(7200));
        // Parent's earlier deadline wins.
        assert_eq!(child.deadline(), parent.deadline());
        let tight = parent.child_with_deadline_at(now);
        assert!(tight.is_cancelled());
        assert!(!parent.is_cancelled());
        // Cancelling the parent trips the child.
        let child2 = parent.child_with_deadline_at(now + Duration::from_secs(7200));
        parent.cancel();
        assert!(child2.is_cancelled());
    }
}
