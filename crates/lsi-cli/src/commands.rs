//! The CLI commands, implemented as library functions (the binary is a
//! thin dispatcher; tests call these directly).

use std::path::Path;

use lsi_core::{
    BuildStatus, Journal, LsiConfig, LsiIndex, MutationRecord, SvdBackend, TruncationCause,
};
use lsi_ir::text::Tokenizer;
use lsi_ir::{Dictionary, TermDocumentMatrix, Weighting};

use crate::container::Container;
use crate::corpus_io::load_corpus;
use crate::CliError;

/// Parses a weighting name (`count`, `binary`, `log-tf`, `tf-idf`,
/// `log-entropy`).
pub fn parse_weighting(name: &str) -> Result<Weighting, CliError> {
    Weighting::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Weighting::ALL.iter().map(|w| w.name()).collect();
            CliError::usage(format!(
                "unknown weighting {name:?}; expected one of {}",
                names.join(", ")
            ))
        })
}

/// `lsi index`: tokenizes the corpus, builds a rank-`rank` LSI index, and
/// writes the container. Returns a one-line summary.
pub fn cmd_index(
    input: &Path,
    output: &Path,
    rank: usize,
    weighting: Weighting,
) -> Result<String, CliError> {
    let docs = load_corpus(input)?;
    let tokenizer = Tokenizer::default();
    let mut dictionary = Dictionary::new();
    let td = TermDocumentMatrix::from_text(&docs, &tokenizer, &mut dictionary)
        .map_err(|e| CliError::other(format!("failed to build term-document matrix: {e}")))?;

    let max_rank = td.n_terms().min(td.n_docs());
    if max_rank == 0 {
        return Err(CliError::other("corpus has no indexable terms"));
    }
    // Out-of-range ranks in either direction are clamped, symmetrically.
    let rank = rank.clamp(1, max_rank);
    let index = LsiIndex::build(
        &td,
        LsiConfig {
            rank,
            weighting,
            backend: SvdBackend::default(),
        },
    )?;

    let mut summary = format!(
        "indexed {} documents, {} terms, rank {} ({}) -> {}",
        td.n_docs(),
        td.n_terms(),
        rank,
        weighting.name(),
        output.display()
    );
    if let BuildStatus::Degraded { achieved_rank } = index.build_status() {
        summary.push_str(&format!(
            "\nwarning: degraded build — corpus rank {achieved_rank} < requested {rank}; \
             trailing dimensions are zero"
        ));
    }
    if let Some(report) = index.solve_report() {
        if report.fell_back() {
            summary.push_str(&format!(
                "\nsolver fell back:\n{}",
                report.summary().trim_end()
            ));
        }
    }

    let container = Container {
        dictionary,
        doc_ids: docs.iter().map(|d| d.id.clone()).collect(),
        index,
    };
    container.save(output)?;
    Ok(summary)
}

/// `lsi add`: folds new documents into an existing container (the classic
/// LSI updating operation) and returns a summary. The spectral basis is
/// not recomputed — see [`lsi_core::LsiIndex::add_document`] for the
/// trade-off; rebuild with `lsi index` when the corpus drifts.
///
/// Fold-in terms must be weighted like the build-time matrix. Count,
/// binary and log-tf are locally computable; tf-idf and log-entropy need
/// corpus-global statistics the container does not carry, so folding into
/// such an index is rejected rather than silently mis-scaled.
///
/// With a `journal`, each fold-in is appended (and fsynced) as a
/// [`MutationRecord::AddDocument`] frame *before* it is applied in memory,
/// so a crash between this call and the container save loses nothing —
/// `lsi recover` replays the journal tail over the last saved container.
pub fn cmd_add(
    container: &mut Container,
    input: &Path,
    mut journal: Option<&mut Journal>,
) -> Result<String, CliError> {
    let weighting = container.index.config().weighting;
    match weighting {
        Weighting::Count | Weighting::Binary | Weighting::LogTf => {}
        Weighting::TfIdf | Weighting::LogEntropy => {
            return Err(CliError::other(format!(
                "cannot fold into a {}-weighted index: that weighting needs \
                 corpus-global statistics; rebuild with `lsi index` instead",
                weighting.name()
            )));
        }
    }

    let docs = load_corpus(input)?;
    let tokenizer = Tokenizer::default();
    let mut added = 0usize;
    let mut skipped = 0usize;
    for doc in &docs {
        // Accumulate counts over known vocabulary only (new terms cannot
        // enter a fixed spectral basis). BTreeMap keeps the terms in id
        // order: fold-in sums floats per term, and hasher order would make
        // the spectral coordinates differ run to run.
        let mut counts = std::collections::BTreeMap::new();
        for tok in tokenizer.tokenize(&doc.body) {
            if let Some(t) = container.dictionary.id(&tok) {
                *counts.entry(t).or_insert(0.0) += 1.0;
            }
        }
        if counts.is_empty() {
            skipped += 1;
            continue;
        }
        let terms: Vec<(usize, f64)> = counts
            .into_iter()
            .map(|(t, tf): (usize, f64)| {
                let w = match weighting {
                    Weighting::Binary => 1.0,
                    Weighting::LogTf => 1.0 + tf.ln(),
                    _ => tf, // Count
                };
                (t, w)
            })
            .collect();
        if let Some(j) = journal.as_deref_mut() {
            // Write-ahead: the frame is durable before the in-memory apply,
            // so an acknowledged fold-in can always be replayed.
            j.append(&MutationRecord::AddDocument {
                seq: container.index.n_docs() as u64,
                doc_id: doc.id.clone(),
                terms: terms.clone(),
            })?;
        }
        container.index.add_document(&terms);
        container.doc_ids.push(doc.id.clone());
        added += 1;
    }
    Ok(format!(
        "folded in {added} documents ({skipped} skipped: no known terms); \
         total {} documents",
        container.index.n_docs()
    ))
}

/// What `lsi recover` did, as a typed summary (rendered by its `Display`).
#[derive(Debug, Clone)]
pub struct RecoverSummary {
    /// Documents in the loaded container snapshot.
    pub snapshot_docs: usize,
    /// Intact frames found in the sidecar journal.
    pub frames_read: usize,
    /// Frames replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Frames already contained in the snapshot (or checkpoint markers).
    pub frames_skipped: usize,
    /// Intact frames dropped because replay could not continue past them.
    pub frames_dropped: usize,
    /// Bytes discarded past the last intact frame.
    pub truncated_bytes: u64,
    /// Why the journal tail was discarded, if it was.
    pub truncation: Option<TruncationCause>,
    /// Quarantined-section repair performed during recovery, when the
    /// tolerant open found damaged degradable sections in a v3 snapshot
    /// (`None` for intact snapshots and for container recovery, whose
    /// reader is strict).
    pub rebuild: Option<lsi_core::RebuildReport>,
    /// Document count after recovery and compaction.
    pub total_docs: usize,
}

impl std::fmt::Display for RecoverSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "snapshot loaded: {} documents; journal: {} intact frame(s)",
            self.snapshot_docs, self.frames_read
        )?;
        writeln!(
            f,
            "replayed {} frame(s), skipped {} already-checkpointed, dropped {}",
            self.frames_replayed, self.frames_skipped, self.frames_dropped
        )?;
        match self.truncation {
            Some(cause) => writeln!(
                f,
                "truncated {} trailing byte(s): {cause}",
                self.truncated_bytes
            )?,
            None => writeln!(f, "journal tail clean")?,
        }
        if let Some(rebuild) = self.rebuild {
            writeln!(f, "quarantined sections repaired: {rebuild}")?;
        }
        write!(
            f,
            "compacted: {} documents checkpointed, journal rotated",
            self.total_docs
        )
    }
}

/// `lsi recover`: reconstructs a container from its last saved state plus
/// the sidecar journal (`<index>.lsic.lsij`), then compacts — saves the
/// recovered container atomically and rotates the journal. Torn or corrupt
/// journal tails are truncated, never fatal; only an unreadable container
/// (or a journal file that is not a journal at all) errors, with the
/// storage exit code.
pub fn cmd_recover(path: &Path) -> Result<RecoverSummary, CliError> {
    let mut container = Container::load(path)?;
    let (mut journal, recovery) = Journal::open(&lsi_core::journal_path(path))?;

    let mut summary = RecoverSummary {
        snapshot_docs: container.index.n_docs(),
        frames_read: recovery.records.len(),
        frames_replayed: 0,
        frames_skipped: 0,
        frames_dropped: 0,
        truncated_bytes: recovery.truncated_bytes,
        truncation: recovery.truncation,
        rebuild: None,
        total_docs: 0,
    };
    for (i, record) in recovery.records.iter().enumerate() {
        let n = container.index.n_docs() as u64;
        let applied = match record {
            MutationRecord::Checkpoint { seq } if *seq <= n => {
                summary.frames_skipped += 1;
                true
            }
            MutationRecord::FoldIn { seq, terms }
            | MutationRecord::AddDocument { seq, terms, .. } => {
                if *seq < n {
                    summary.frames_skipped += 1;
                    true
                } else if *seq == n && container.index.try_add_document(terms).is_ok() {
                    // Applied: restore the caller-side id too (fold-ins
                    // without one get the same synthetic id `lsi query`
                    // would print).
                    let id = match record {
                        MutationRecord::AddDocument { doc_id, .. } => doc_id.clone(),
                        _ => format!("doc#{seq}"),
                    };
                    container.doc_ids.push(id);
                    summary.frames_replayed += 1;
                    true
                } else {
                    false
                }
            }
            MutationRecord::AddVector {
                seq,
                doc_id,
                coords,
            } => {
                if *seq < n {
                    summary.frames_skipped += 1;
                    true
                } else if *seq == n && container.index.add_document_vector(coords).is_ok() {
                    container.doc_ids.push(if doc_id.is_empty() {
                        format!("doc#{seq}")
                    } else {
                        doc_id.clone()
                    });
                    summary.frames_replayed += 1;
                    true
                } else {
                    false
                }
            }
            MutationRecord::Retire { seq, doc } => {
                // Retirement zeroes the representation in place; the id
                // stays allocated, so `doc_ids` keeps its entry.
                if *seq <= n && container.index.retire_document(*doc as usize).is_ok() {
                    summary.frames_replayed += 1;
                    true
                } else {
                    false
                }
            }
            MutationRecord::Checkpoint { .. } => false,
        };
        if !applied {
            // Sequence gap or unappliable record: replay cannot safely
            // continue past it.
            summary.frames_dropped = recovery.records.len() - i;
            summary
                .truncation
                .get_or_insert(TruncationCause::SequenceGap);
            break;
        }
    }

    container.save(path)?;
    journal.rotate(container.index.n_docs() as u64)?;
    summary.total_docs = container.index.n_docs();
    Ok(summary)
}

/// One shard's outcome under `lsi recover --all`: either a recovery
/// summary or the storage damage that prevented recovery.
#[derive(Debug)]
pub struct ShardRecovery {
    /// Snapshot file name (`shard-NNN.lsix`).
    pub shard: String,
    /// Recovery summary, or the storage error for a damaged shard.
    pub outcome: Result<RecoverSummary, String>,
}

/// What `lsi recover --all` did: one [`ShardRecovery`] row per shard
/// snapshot found under the directory, in file-name order.
#[derive(Debug)]
pub struct RecoverAllSummary {
    /// Per-shard outcomes, sorted by snapshot file name.
    pub shards: Vec<ShardRecovery>,
}

impl RecoverAllSummary {
    /// True when at least one shard could not be recovered (storage
    /// damage beyond a truncatable journal tail). The CLI turns this
    /// into the storage exit code after printing the table.
    pub fn any_damaged(&self) -> bool {
        self.shards.iter().any(|s| s.outcome.is_err())
    }
}

impl std::fmt::Display for RecoverAllSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "recovered {} shard(s):", self.shards.len())?;
        for row in &self.shards {
            match &row.outcome {
                Ok(s) => {
                    let tail = match s.truncation {
                        Some(cause) => format!("truncated {} B ({cause})", s.truncated_bytes),
                        None => "tail clean".to_owned(),
                    };
                    let repaired = match s.rebuild {
                        Some(r) => format!("  repaired: {r}"),
                        None => String::new(),
                    };
                    writeln!(
                        f,
                        "  {}  snapshot {:>4} docs  replayed {:>3}  skipped {:>3}  \
                         dropped {:>3}  {tail}  total {} docs{repaired}",
                        row.shard,
                        s.snapshot_docs,
                        s.frames_replayed,
                        s.frames_skipped,
                        s.frames_dropped,
                        s.total_docs
                    )?;
                }
                Err(e) => writeln!(f, "  {}  DAMAGED: {e}", row.shard)?,
            }
        }
        Ok(())
    }
}

/// `lsi recover --all`: bulk recovery for a sharded serving directory.
/// Every `*.lsix` shard snapshot under `dir` is reopened through its
/// write-ahead journal (torn tails truncated, stale rotation tmp files
/// swept) and compacted with a checkpoint. Degradable sections the
/// tolerant open quarantined (e.g. a damaged `doc-vectors` block) are
/// rebuilt from the surviving factorization and the journal before the
/// checkpoint, so the rewritten snapshot verifies clean. Damaged shards —
/// an unreadable snapshot or a journal that is not a journal — do not
/// abort the sweep:
/// the remaining shards are still recovered and the damage is reported
/// per shard, so the caller can turn "any damage" into the storage exit
/// code after printing every row.
pub fn cmd_recover_all(dir: &Path) -> Result<RecoverAllSummary, CliError> {
    let mut snapshots: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::io(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lsix"))
        .collect();
    if snapshots.is_empty() {
        return Err(CliError::other(format!(
            "no .lsix shard snapshots under {}",
            dir.display()
        )));
    }
    snapshots.sort();

    let mut shards = Vec::with_capacity(snapshots.len());
    for path in snapshots {
        let shard = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let outcome = match lsi_core::DurableIndex::open_durable_with_records(&path) {
            Ok((mut durable, report, records)) => {
                // Quarantined sections are repaired from the surviving
                // factorization plus the journal before compacting (a
                // checkpoint refuses to persist a quarantined index);
                // intact shards just checkpoint so the journal rotates and
                // the next open starts from a clean tail.
                let compacted = if report.quarantined.is_empty() {
                    durable.checkpoint().map(|()| None)
                } else {
                    durable.rebuild_quarantined(&records).map(Some)
                };
                match compacted {
                    Ok(rebuild) => Ok(RecoverSummary {
                        snapshot_docs: report.snapshot_docs,
                        frames_read: report.frames_read,
                        frames_replayed: report.frames_replayed,
                        frames_skipped: report.frames_skipped,
                        frames_dropped: report.frames_dropped,
                        truncated_bytes: report.truncated_bytes,
                        truncation: report.truncation,
                        rebuild,
                        total_docs: durable.index().n_docs(),
                    }),
                    Err(e) => Err(e.to_string()),
                }
            }
            Err(e) => Err(e.to_string()),
        };
        shards.push(ShardRecovery { shard, outcome });
    }
    Ok(RecoverAllSummary { shards })
}

/// Read-only state of a sidecar write-ahead journal, as reported by
/// `lsi inspect`. Decoded without opening the journal for repair, so
/// inspecting never truncates a torn tail.
#[derive(Debug)]
pub struct JournalStatus {
    /// Intact frames in the journal.
    pub frames: usize,
    /// Bytes past the last intact frame (a torn tail; recovery truncates
    /// these, inspection only counts them).
    pub torn_bytes: u64,
    /// Sequence number of the last checkpoint marker, if any.
    pub last_checkpoint: Option<u64>,
}

/// What `lsi inspect` found: the snapshot's section framing plus the
/// sidecar journal's state, with no repair side effects.
#[derive(Debug)]
pub struct InspectSummary {
    /// The file inspected, as given on the command line.
    pub file: String,
    /// Container framing: where the snapshot bytes live in the file.
    pub framing: String,
    /// Section framing report for the (embedded) snapshot.
    pub report: lsi_core::SnapshotReport,
    /// Sidecar journal state, if a journal file exists.
    pub journal: Option<JournalStatus>,
}

impl InspectSummary {
    /// True when the section directory or any section failed its
    /// integrity checks. The CLI turns this into the storage exit code
    /// after printing the full table.
    pub fn any_damaged(&self) -> bool {
        self.report.damaged()
    }
}

impl std::fmt::Display for InspectSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.file, self.framing)?;
        writeln!(
            f,
            "format version {}, {} snapshot byte(s)",
            self.report.version, self.report.file_len
        )?;
        if self.report.directory_ok {
            writeln!(
                f,
                "  tag  {:<28} {:>10} {:>10}  crc",
                "section", "offset", "bytes"
            )?;
            for s in &self.report.sections {
                writeln!(
                    f,
                    "  {:>3}  {:<28} {:>10} {:>10}  {}",
                    s.tag,
                    s.name,
                    s.offset,
                    s.len,
                    if s.ok { "ok" } else { "DAMAGED" }
                )?;
            }
        } else {
            writeln!(
                f,
                "section directory: DAMAGED (sections cannot be enumerated)"
            )?;
        }
        match &self.journal {
            None => writeln!(f, "journal: none"),
            Some(j) => {
                let tail = if j.torn_bytes == 0 {
                    "tail clean".to_owned()
                } else {
                    format!("{} torn tail byte(s)", j.torn_bytes)
                };
                let checkpoint = match j.last_checkpoint {
                    Some(seq) => format!("last checkpoint seq {seq}"),
                    None => "no checkpoint marker".to_owned(),
                };
                writeln!(f, "journal: {} frame(s), {tail}, {checkpoint}", j.frames)
            }
        }
    }
}

/// Decodes a journal sidecar without mutating it: unlike
/// [`Journal::open`], a torn tail is counted, not truncated on disk.
fn read_journal_status(path: &Path) -> Result<Option<JournalStatus>, CliError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CliError::io(format!(
                "cannot read journal {}: {e}",
                path.display()
            )))
        }
    };
    let header = lsi_core::journal::fresh_journal_bytes(None);
    if bytes.len() < header.len() || bytes[..header.len()] != header[..] {
        return Err(CliError::storage(format!(
            "{} exists but is not a journal (bad header)",
            path.display()
        )));
    }
    let (records, consumed, _) = lsi_core::journal::decode_frames(&bytes[header.len()..]);
    let last_checkpoint = records.iter().rev().find_map(|r| match r {
        MutationRecord::Checkpoint { seq } => Some(*seq),
        _ => None,
    });
    Ok(Some(JournalStatus {
        frames: records.len(),
        torn_bytes: (bytes.len() - header.len() - consumed) as u64,
        last_checkpoint,
    }))
}

/// `lsi inspect`: prints the snapshot's section directory (name, offset,
/// length, CRC status), format version, and the sidecar journal's frame
/// count and last checkpoint — entirely read-only. Works on both bare
/// `.lsix` snapshots and `.lsic` containers (the embedded snapshot is
/// located by walking the container header, not by a strict parse, so a
/// damaged section is reported instead of aborting the read).
pub fn cmd_inspect(path: &Path) -> Result<InspectSummary, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::io(format!("cannot read {}: {e}", path.display())))?;
    let (framing, span) = if bytes.starts_with(b"LSIC") {
        let span = crate::container::embedded_index_span(&bytes)?;
        (
            format!(
                "lsic container, embedded snapshot at bytes {}..{}",
                span.start, span.end
            ),
            span,
        )
    } else {
        ("lsix snapshot".to_owned(), 0..bytes.len())
    };
    let report = lsi_core::inspect_snapshot(&bytes[span])
        .map_err(|e| CliError::storage(format!("cannot interpret {}: {e}", path.display())))?;
    let journal = read_journal_status(&lsi_core::journal_path(path))?;
    Ok(InspectSummary {
        file: path.display().to_string(),
        framing,
        report,
        journal,
    })
}

/// `lsi query`: tokenizes the query with the same pipeline, folds it into
/// LSI space, returns `(doc id, score)` pairs best-first.
pub fn cmd_query(
    container: &Container,
    query_text: &str,
    top: usize,
) -> Result<Vec<(String, f64)>, CliError> {
    let tokenizer = Tokenizer::default();
    let terms: Vec<(usize, f64)> = tokenizer
        .tokenize(query_text)
        .into_iter()
        .filter_map(|tok| container.dictionary.id(&tok))
        .map(|t| (t, 1.0))
        .collect();
    if terms.is_empty() {
        return Err(CliError::other(format!(
            "no query term appears in the index vocabulary: {query_text:?}"
        )));
    }
    let hits = container.index.query(&terms, top);
    Ok(hits
        .hits()
        .iter()
        .map(|h| {
            // Documents folded in after the container was assembled have no
            // external id; synthesize one rather than indexing out of range.
            let id = container
                .doc_ids
                .get(h.doc)
                .cloned()
                .unwrap_or_else(|| format!("doc#{}", h.doc));
            (id, h.score)
        })
        .collect())
}

/// `lsi similar-terms`: nearest terms to `term` in LSI space.
pub fn cmd_similar_terms(
    container: &Container,
    term: &str,
    top: usize,
) -> Result<Vec<(String, f64)>, CliError> {
    let t = container
        .dictionary
        .id(&term.to_lowercase())
        .ok_or_else(|| CliError::other(format!("term {term:?} is not in the index vocabulary")))?;
    let hits = container.index.similar_terms(t, top);
    Ok(hits
        .hits()
        .iter()
        .map(|h| {
            (
                container
                    .dictionary
                    .term(h.doc)
                    .unwrap_or("<unknown>")
                    .to_owned(),
                h.score,
            )
        })
        .collect())
}

/// `lsi topics`: for each retained singular direction, the top-weighted
/// terms — a human-readable view of what the latent dimensions encode.
pub fn cmd_topics(container: &Container, terms_per_topic: usize) -> Vec<(usize, f64, Vec<String>)> {
    let index: &LsiIndex = &container.index;
    let k = index.rank();
    let n = index.n_terms();
    let mut out = Vec::with_capacity(k);
    for dim in 0..k {
        let mut weighted: Vec<(usize, f64)> = (0..n)
            .map(|t| (t, index.factors().u[(t, dim)].abs()))
            .collect();
        // lsi-lint: allow(E1-panic-policy, "invariant: term weights come from verified finite factors")
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        let top_terms: Vec<String> = weighted
            .iter()
            .take(terms_per_topic)
            .map(|&(t, _)| {
                container
                    .dictionary
                    .term(t)
                    .unwrap_or("<unknown>")
                    .to_owned()
            })
            .collect();
        out.push((dim, index.singular_values()[dim], top_terms));
    }
    out
}

/// Options for [`cmd_serve_bench`] — one struct so the flag surface can
/// grow without churning the signature.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Total queries in the load profile.
    pub queries: usize,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// Seed for the query generator (the profile is seed-deterministic).
    pub seed: u64,
    /// Hard per-query deadline in milliseconds.
    pub deadline_ms: u64,
    /// Optional soft deadline in milliseconds (degrade instead of
    /// continuing in LSI space past it). Note: a container carries no
    /// term-document matrix, so the bench engine has no term-space
    /// fallback and soft deadlines only matter for degraded indexes.
    pub soft_deadline_ms: Option<u64>,
    /// Exercise the durability layer: serve through a [`DurableIndex`] in
    /// a seed-keyed scratch directory, mix journaled fold-ins into the
    /// load profile, and verify checkpoint + reopen equals the live engine
    /// after the run.
    ///
    /// [`DurableIndex`]: lsi_core::DurableIndex
    pub durable: bool,
    /// Shard count. `1` serves through a single [`QueryEngine`]; more than
    /// one serves through the scatter-gather [`Cluster`] coordinator
    /// (document-partitioned shards, order-fixed top-k merge), with
    /// `--durable` giving every shard its own snapshot + journal and
    /// verifying a bit-identical reopen after the run.
    ///
    /// [`QueryEngine`]: lsi_serve::QueryEngine
    /// [`Cluster`]: lsi_serve::Cluster
    pub shards: usize,
    /// Run every shard as a separate `lsi shard-serve` daemon process
    /// behind the coordinator — Unix-domain-socket RPC, heartbeat
    /// supervision ([`ShardSupervisor`]). Implies the durable layout:
    /// the shards are laid out on disk in a seed-keyed scratch directory
    /// and the run ends with a bit-identical in-process reopen.
    ///
    /// [`ShardSupervisor`]: lsi_serve::ShardSupervisor
    pub process: bool,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            queries: 1_000,
            workers: 4,
            seed: 20260706,
            deadline_ms: 1_000,
            soft_deadline_ms: None,
            durable: false,
            shards: 1,
            process: false,
        }
    }
}

/// `lsi serve-bench`: drives the concurrent query engine with a
/// seed-deterministic load profile — mostly well-formed vocabulary
/// queries, plus fixed fractions of malformed (out-of-range term,
/// non-finite weight) and deliberately slow queries — and renders the
/// engine's statistics table. Fails with a serve-category error if the
/// engine's bookkeeping does not balance after the run.
pub fn cmd_serve_bench(container: Container, opts: &ServeBenchOptions) -> Result<String, CliError> {
    use lsi_serve::{EngineConfig, Query, QueryEngine};
    use rand::Rng;
    use std::time::Duration;

    if opts.shards == 0 {
        return Err(CliError::usage("--shards must be at least 1"));
    }
    if opts.shards > 1 || opts.process {
        return serve_bench_cluster(container, opts);
    }
    let n_terms = container.index.n_terms();
    if n_terms == 0 {
        return Err(CliError::other("index has an empty vocabulary"));
    }
    // Slow queries are keyed on a tag the generator below assigns.
    const TAG_SLOW: u64 = 1;
    let config = EngineConfig {
        workers: opts.workers,
        // Room for the whole profile: the bench measures the engine's
        // outcome mix, not the submitter's ability to outrun it.
        queue_capacity: opts.queries.max(64),
        deadline: Some(Duration::from_millis(opts.deadline_ms)),
        soft_deadline: opts.soft_deadline_ms.map(Duration::from_millis),
        fault_hook: Some(std::sync::Arc::new(|tag| {
            if tag == TAG_SLOW {
                std::thread::sleep(Duration::from_millis(2));
            }
        })),
        // The slow-query hook above already forces per-query pickup.
        max_batch: 1,
    };
    // Durable mode serves through the write-ahead journal in a seed-keyed
    // scratch directory (deterministic path, no ambient entropy).
    let scratch = opts
        .durable
        .then(|| std::env::temp_dir().join(format!("lsi-serve-bench-durable-{}", opts.seed)));
    let engine = match &scratch {
        Some(dir) => {
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir)
                .map_err(|e| CliError::io(format!("cannot create {}: {e}", dir.display())))?;
            let durable = lsi_core::DurableIndex::create(&dir.join("index.lsix"), container.index)?;
            QueryEngine::with_durable(durable, config)
        }
        None => QueryEngine::new(container.index, config),
    };

    let mut rng = lsi_linalg::rng::seeded(opts.seed);
    let mut tickets = Vec::with_capacity(opts.queries);
    let mut journaled = 0usize;
    for _ in 0..opts.queries {
        let roll = rng.gen_range(0usize..100);
        let mut terms: Vec<(usize, f64)> = (0..rng.gen_range(1usize..=4))
            .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
            .collect();
        let mut tag = 0;
        match roll {
            // 5%: out-of-range term id.
            0..=4 => terms[0].0 = n_terms + 1,
            // 3%: non-finite weight.
            5..=7 => terms[0].1 = f64::NAN,
            // 2%: deliberately slow.
            8..=9 => tag = TAG_SLOW,
            // 4% in durable mode: a journaled fold-in through the mutator,
            // interleaved with the query load it contends with.
            10..=13 if opts.durable => {
                engine
                    .add_document(&terms)
                    .map_err(|e| CliError::serve(format!("durable fold-in failed: {e}")))?;
                journaled += 1;
                continue;
            }
            _ => {}
        }
        let query = Query {
            terms,
            top_k: rng.gen_range(1usize..=10),
            tag,
        };
        // Shedding cannot happen at this capacity; treat it as fatal.
        tickets.push(engine.submit(query)?);
    }
    for ticket in tickets {
        // Per-query outcomes (including typed errors) are the bench's
        // data, not failures; they land in the stats table.
        let _ = ticket.wait();
    }

    let stats = engine.stats();
    if !stats.consistent() {
        return Err(CliError::serve(format!(
            "engine bookkeeping does not balance after the run:\n{}",
            stats.table()
        )));
    }

    let mut durable_lines = String::new();
    if let Some(dir) = &scratch {
        // Compact, tear the engine down, and prove recovery: reopening the
        // snapshot + journal must reproduce the live document count.
        engine
            .checkpoint()
            .map_err(|e| CliError::serve(format!("checkpoint failed: {e}")))?;
        let live_docs = engine.n_docs();
        engine.shutdown();
        let (recovered, report) = lsi_core::DurableIndex::open_durable(&dir.join("index.lsix"))?;
        if recovered.index().n_docs() != live_docs {
            return Err(CliError::serve(format!(
                "recovery mismatch: live engine had {live_docs} docs, reopened index has {} ({report})",
                recovered.index().n_docs()
            )));
        }
        durable_lines = format!(
            "\ndurable: {journaled} fold-in(s) journaled; checkpoint + reopen verified \
             ({live_docs} docs; {report})"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(format!(
        "serve-bench: {} queries, {} workers, {} linalg thread(s), deadline {} ms, seed {}\n{}{}",
        opts.queries,
        opts.workers,
        lsi_linalg::parallel::threads(),
        opts.deadline_ms,
        opts.seed,
        stats.table().trim_end(),
        durable_lines
    ))
}

/// The sharded path of `lsi serve-bench --shards N`: serves the same
/// seed-deterministic profile through the scatter-gather [`Cluster`]
/// coordinator — documents partitioned round-robin across `N` shards,
/// each with its own worker pool — and renders the cluster statistics
/// table with its per-shard breakdown. In durable mode every shard gets
/// its own snapshot + journal in a seed-keyed scratch directory, the
/// profile mixes in journaled fold-ins and a mid-run rebalance, and the
/// run ends by reopening the whole cluster from disk and verifying the
/// visible document fingerprint is bit-identical.
///
/// [`Cluster`]: lsi_serve::Cluster
fn serve_bench_cluster(container: Container, opts: &ServeBenchOptions) -> Result<String, CliError> {
    use lsi_serve::cluster::{Cluster, ClusterConfig};
    use lsi_serve::{
        DaemonCommand, EngineConfig, FaultHook, Query, ShardSupervisor, SupervisorConfig,
    };
    use rand::Rng;
    use std::sync::Arc;
    use std::time::Duration;

    let n_terms = container.index.n_terms();
    if n_terms == 0 {
        return Err(CliError::other("index has an empty vocabulary"));
    }
    const TAG_SLOW: u64 = 1;
    let config = ClusterConfig {
        shards: opts.shards,
        engine: EngineConfig {
            workers: opts.workers,
            queue_capacity: opts.queries.max(64),
            deadline: None, // the coordinator's hard deadline governs
            soft_deadline: None,
            fault_hook: None,
            max_batch: EngineConfig::default().max_batch,
        },
        soft_deadline: opts.soft_deadline_ms.map(Duration::from_millis),
        hard_deadline: Duration::from_millis(opts.deadline_ms),
        fault_hooks: Some(Arc::new(|_shard| {
            Some(Arc::new(|tag: u64| {
                if tag == TAG_SLOW {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }) as FaultHook)
        })),
        ..ClusterConfig::default()
    };
    // --process implies the durable layout: daemons can only serve shards
    // that exist on disk (snapshot + journal each).
    let durable = opts.durable || opts.process;
    let scratch = durable
        .then(|| std::env::temp_dir().join(format!("lsi-serve-bench-cluster-{}", opts.seed)));
    let mut supervisor: Option<ShardSupervisor> = None;
    let cluster = match &scratch {
        Some(dir) if opts.process => {
            // Lay the shards out on disk exactly as the in-process durable
            // path would, release them, then hand them to out-of-process
            // daemons spawned from this very binary (`lsi shard-serve`).
            let _ = std::fs::remove_dir_all(dir);
            Cluster::create(&container.index, dir, config.clone())
                .map_err(|e| CliError::serve(format!("cannot create cluster: {e}")))?
                .shutdown();
            let program = std::env::current_exe()
                .map_err(|e| CliError::io(format!("cannot locate the lsi binary: {e}")))?;
            let command = DaemonCommand::new(program, vec!["shard-serve".to_owned()]);
            let sup_config = SupervisorConfig {
                workers: opts.workers,
                ..SupervisorConfig::default()
            };
            let (cluster, sup) = ShardSupervisor::launch(dir, config.clone(), command, sup_config)
                .map_err(|e| CliError::serve(format!("cannot launch shard daemons: {e}")))?;
            supervisor = Some(sup);
            cluster
        }
        Some(dir) => {
            let _ = std::fs::remove_dir_all(dir);
            Arc::new(
                Cluster::create(&container.index, dir, config.clone())
                    .map_err(|e| CliError::serve(format!("cannot create cluster: {e}")))?,
            )
        }
        None => Arc::new(
            Cluster::build(&container.index, config.clone())
                .map_err(|e| CliError::serve(format!("cannot build cluster: {e}")))?,
        ),
    };

    // Same profile mix as the single-engine bench; fold-ins (durable mode)
    // are pulled out of the stream and applied through the coordinator's
    // journaled mutation path while the query load runs.
    let mut rng = lsi_linalg::rng::seeded(opts.seed);
    let mut queries = Vec::with_capacity(opts.queries);
    let mut fold_ins = Vec::new();
    for _ in 0..opts.queries {
        let roll = rng.gen_range(0usize..100);
        let mut terms: Vec<(usize, f64)> = (0..rng.gen_range(1usize..=4))
            .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
            .collect();
        let mut tag = 0;
        match roll {
            0..=4 => terms[0].0 = n_terms + 1,
            5..=7 => terms[0].1 = f64::NAN,
            8..=9 => tag = TAG_SLOW,
            10..=13 if durable => {
                fold_ins.push(terms);
                continue;
            }
            _ => {}
        }
        queries.push(Query {
            terms,
            top_k: rng.gen_range(1usize..=10),
            tag,
        });
    }

    // Drive the scatter-gather path from several submitter threads so the
    // per-shard pools actually contend; outcomes land in the coordinator's
    // counters, which is the bench's data.
    let submitters = opts.workers.clamp(2, 8);
    let chunk = queries.len().div_ceil(submitters);
    let queries = Arc::new(queries);
    let handles: Vec<_> = (0..submitters)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let queries = Arc::clone(&queries);
            // lsi-lint: allow(P1-raw-threads, "bench load generators: submitters race wall-clock queries, not deterministic kernel work")
            std::thread::spawn(move || {
                let lo = (t * chunk).min(queries.len());
                let hi = (lo + chunk).min(queries.len());
                for q in &queries[lo..hi] {
                    let _ = cluster.query(q.clone());
                }
            })
        })
        .collect();
    let journaled = fold_ins.len();
    let mut moved = 0usize;
    for terms in &fold_ins {
        cluster
            .add_document(terms)
            .map_err(|e| CliError::serve(format!("journaled fold-in failed: {e}")))?;
    }
    if durable && opts.shards >= 2 {
        // A mid-run rebalance: move one document between the first two
        // shards through the crash-consistent two-journal protocol.
        let docs = cluster
            .shard_docs(0)
            .map_err(|e| CliError::serve(e.to_string()))?;
        if let Some(&gid) = docs.first() {
            moved = cluster
                .rebalance(0, 1, &[gid])
                .map_err(|e| CliError::serve(format!("mid-run rebalance failed: {e}")))?;
        }
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| CliError::serve("a submitter thread panicked"))?;
    }

    let stats = cluster.stats();
    if !stats.consistent() {
        return Err(CliError::serve(format!(
            "cluster bookkeeping does not balance after the run:\n{}",
            stats.table()
        )));
    }

    let mut durable_lines = String::new();
    if let Some(dir) = &scratch {
        // Compact every shard, tear the cluster down, and prove recovery:
        // reopening the whole cluster from its shard snapshots + journals
        // must reproduce the visible document fingerprint bit for bit.
        for shard in 0..cluster.n_shards() {
            cluster
                .compact_shard(shard)
                .map_err(|e| CliError::serve(format!("shard {shard} compaction failed: {e}")))?;
        }
        let fingerprint = cluster.fingerprint();
        let live_docs = cluster.n_docs();
        if let Some(sup) = supervisor.take() {
            // Stop the daemons first — they own the journals, and a clean
            // Shutdown RPC checkpoints nothing, so the reopen below reads
            // exactly what their crash discipline guarantees on disk.
            sup.shutdown();
        }
        match Arc::try_unwrap(cluster) {
            Ok(cluster) => cluster.shutdown(),
            Err(_) => return Err(CliError::serve("cluster handles leaked past join")),
        }
        let (reopened, _reports) = Cluster::open(dir, config)
            .map_err(|e| CliError::serve(format!("cluster reopen failed: {e}")))?;
        if reopened.fingerprint() != fingerprint {
            return Err(CliError::serve(
                "recovery mismatch: reopened cluster fingerprint differs from the live cluster",
            ));
        }
        reopened.shutdown();
        let mode = if opts.process {
            " served by shard-serve daemons"
        } else {
            ""
        };
        durable_lines = format!(
            "\ndurable: {journaled} fold-in(s) journaled, {moved} document(s) rebalanced; \
             cluster reopen verified bit-identical ({live_docs} docs across {} shards{mode})",
            opts.shards
        );
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(format!(
        "serve-bench: {} queries, {} shards, {} workers/shard, {} linalg thread(s), \
         deadline {} ms, seed {}\n{}{}",
        queries.len(),
        opts.shards,
        opts.workers,
        lsi_linalg::parallel::threads(),
        opts.deadline_ms,
        opts.seed,
        stats.table().trim_end(),
        durable_lines
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsi_cmd_{}_{name}", std::process::id()))
    }

    fn write_sample_corpus(path: &Path) {
        fs::write(
            path,
            "d0\tthe car engine roared down the highway\n\
             d1\tan automobile engine needs maintenance\n\
             d2\tthe automobile market and highway sales\n\
             d3\ta car needs a good engine and brakes\n\
             d4\tthe galaxy contains billions of stars\n\
             d5\ta starship crossed the galaxy to the stars\n",
        )
        .unwrap();
    }

    #[test]
    fn index_then_query_end_to_end() {
        let input = temp("corpus.txt");
        let output = temp("corpus.lsic");
        write_sample_corpus(&input);

        let summary = cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        assert!(summary.contains("6 documents"));

        let container = Container::load(&output).unwrap();
        let hits = cmd_query(&container, "automobile", 6).unwrap();
        assert!(!hits.is_empty());
        // Synonymy bridge: a "car"-only document scores high.
        let car_doc_score = hits
            .iter()
            .find(|(id, _)| id == "d0")
            .map(|&(_, s)| s)
            .expect("d0 retrieved");
        assert!(car_doc_score > 0.8, "d0 score {car_doc_score}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn similar_terms_cross_surface_forms() {
        let input = temp("corpus2.txt");
        let output = temp("corpus2.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let sims = cmd_similar_terms(&container, "automobile", 5).unwrap();
        assert!(
            sims.iter().any(|(t, s)| t == "car" && *s > 0.5),
            "car not among similar terms: {sims:?}"
        );
        assert!(cmd_similar_terms(&container, "zeppelin", 5).is_err());

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn topics_show_vocabulary() {
        let input = temp("corpus3.txt");
        let output = temp("corpus3.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let topics = cmd_topics(&container, 4);
        assert_eq!(topics.len(), 2);
        let all_terms: Vec<String> = topics.iter().flat_map(|(_, _, ts)| ts.clone()).collect();
        // The two dominant directions split vehicle vs space vocabulary.
        assert!(all_terms.iter().any(|t| t == "engine" || t == "car"));
        assert!(all_terms.iter().any(|t| t == "galaxy" || t == "stars"));

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn add_folds_documents_into_saved_container() {
        let input = temp("corpus_add.txt");
        let output = temp("corpus_add.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();

        // Fold in two new documents, one off-vocabulary.
        let more = temp("more.txt");
        fs::write(
            &more,
            "d6\tthe car engine and the automobile engine\nd7\tzzz qqq www\n",
        )
        .unwrap();
        let mut container = Container::load(&output).unwrap();
        let before = container.index.n_docs();
        let summary = cmd_add(&mut container, &more, None).unwrap();
        assert!(summary.contains("folded in 1"), "{summary}");
        assert!(summary.contains("1 skipped"), "{summary}");
        assert_eq!(container.index.n_docs(), before + 1);
        assert_eq!(container.doc_ids.len(), before + 1);

        // Save, reload, and confirm the folded document is searchable.
        container.save(&output).unwrap();
        let reloaded = Container::load(&output).unwrap();
        let hits = cmd_query(&reloaded, "automobile engine", 10).unwrap();
        assert!(
            hits.iter().any(|(id, s)| id == "d6" && *s > 0.8),
            "folded doc not retrieved: {hits:?}"
        );

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
        fs::remove_file(&more).ok();
    }

    #[test]
    fn add_rejects_globally_weighted_indexes() {
        let input = temp("corpus_tfidf.txt");
        let output = temp("corpus_tfidf.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::TfIdf).unwrap();
        let mut container = Container::load(&output).unwrap();
        let err = cmd_add(&mut container, &input, None).unwrap_err();
        assert!(err.message.contains("tf-idf"), "{err}");
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn add_applies_log_tf_weighting() {
        let input = temp("corpus_logtf.txt");
        let output = temp("corpus_logtf.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::LogTf).unwrap();
        let mut container = Container::load(&output).unwrap();
        let summary = cmd_add(&mut container, &input, None).unwrap();
        assert!(summary.contains("folded in 6"), "{summary}");
        // Folded copies of existing documents land on top of the originals.
        let n = container.index.n_docs();
        assert!((container.index.doc_cosine(0, n - 6) - 1.0).abs() < 1e-6);
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn query_with_oov_terms_errors() {
        let input = temp("corpus4.txt");
        let output = temp("corpus4.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();
        assert!(cmd_query(&container, "quux flibbet", 3).is_err());
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn rank_clamped_to_corpus() {
        let input = temp("corpus5.txt");
        let output = temp("corpus5.lsic");
        write_sample_corpus(&input);
        // Ask for an absurd rank; it gets clamped, not rejected.
        let summary = cmd_index(&input, &output, 500, Weighting::TfIdf).unwrap();
        assert!(summary.contains("rank 6"), "{summary}");
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn parse_weighting_names() {
        assert_eq!(parse_weighting("tf-idf").unwrap(), Weighting::TfIdf);
        assert_eq!(parse_weighting("count").unwrap(), Weighting::Count);
        assert!(parse_weighting("nonsense").is_err());
    }

    #[test]
    fn serve_bench_runs_profile_and_balances() {
        let input = temp("corpus_bench.txt");
        let output = temp("corpus_bench.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let opts = ServeBenchOptions {
            queries: 200,
            workers: 2,
            seed: 42,
            deadline_ms: 5_000,
            soft_deadline_ms: None,
            durable: false,
            shards: 1,
            process: false,
        };
        let report = cmd_serve_bench(container, &opts).unwrap();
        assert!(report.contains("200 queries"), "{report}");
        assert!(report.contains("submitted"), "{report}");
        // The report states the linalg thread configuration so bench runs
        // are self-describing.
        assert!(report.contains("linalg thread(s)"), "{report}");
        // The profile injects malformed queries; they must show up typed.
        assert!(report.contains("bad query"), "{report}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn serve_bench_durable_mode_journals_and_verifies_recovery() {
        let input = temp("corpus_bench_durable.txt");
        let output = temp("corpus_bench_durable.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let opts = ServeBenchOptions {
            queries: 150,
            workers: 2,
            seed: 4242,
            deadline_ms: 5_000,
            soft_deadline_ms: None,
            durable: true,
            shards: 1,
            process: false,
        };
        let report = cmd_serve_bench(container, &opts).unwrap();
        assert!(report.contains("durable:"), "{report}");
        assert!(report.contains("checkpoint + reopen verified"), "{report}");
        // The 4% mutation slice of 150 queries lands a handful of fold-ins.
        assert!(!report.contains("0 fold-in(s)"), "{report}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn recover_replays_a_crashed_add_and_is_idempotent() {
        let input = temp("corpus_recover.txt");
        let output = temp("corpus_recover.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();

        let more = temp("more_recover.txt");
        fs::write(&more, "d6\tthe car engine and the automobile engine\n").unwrap();

        // Journaled add that "crashes" before the container is saved: the
        // in-memory container is simply dropped.
        let jpath = lsi_core::journal_path(&output);
        {
            let mut container = Container::load(&output).unwrap();
            let mut journal = lsi_core::Journal::create(&jpath).unwrap();
            cmd_add(&mut container, &more, Some(&mut journal)).unwrap();
            // No container.save, no journal.rotate: crash window.
        }

        let before = Container::load(&output).unwrap().index.n_docs();
        let summary = cmd_recover(&output).unwrap();
        assert_eq!(summary.snapshot_docs, before);
        assert_eq!(summary.frames_replayed, 1, "{summary}");
        assert_eq!(summary.frames_dropped, 0, "{summary}");
        assert_eq!(summary.total_docs, before + 1);

        // The replayed document is searchable under its journaled id.
        let recovered = Container::load(&output).unwrap();
        let hits = cmd_query(&recovered, "automobile engine", 10).unwrap();
        assert!(
            hits.iter().any(|(id, s)| id == "d6" && *s > 0.8),
            "replayed doc not retrieved: {hits:?}"
        );

        // Recovery is idempotent: a second pass replays nothing.
        let summary2 = cmd_recover(&output).unwrap();
        assert_eq!(summary2.frames_replayed, 0, "{summary2}");
        assert_eq!(summary2.total_docs, before + 1);

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
        fs::remove_file(&more).ok();
        fs::remove_file(&jpath).ok();
    }

    #[test]
    fn serve_bench_cluster_mode_shards_and_verifies_reopen() {
        let input = temp("corpus_bench_cluster.txt");
        let output = temp("corpus_bench_cluster.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let opts = ServeBenchOptions {
            queries: 150,
            workers: 2,
            seed: 777,
            deadline_ms: 5_000,
            soft_deadline_ms: None,
            durable: true,
            shards: 2,
            process: false,
        };
        let report = cmd_serve_bench(container, &opts).unwrap();
        assert!(report.contains("2 shards"), "{report}");
        // The per-shard breakdown rows render in the stats table.
        assert!(report.contains("shard"), "{report}");
        assert!(report.contains("breaker"), "{report}");
        assert!(
            report.contains("cluster reopen verified bit-identical"),
            "{report}"
        );
        assert!(report.contains("rebalanced"), "{report}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn recover_all_sweeps_every_shard_and_reports_damage() {
        use lsi_repro_test_corpus::sample_shard_dir;
        let dir = sample_shard_dir("recover_all");

        // Healthy sweep: every shard row renders, nothing damaged.
        let summary = cmd_recover_all(&dir).unwrap();
        assert_eq!(summary.shards.len(), 2, "{summary}");
        assert!(!summary.any_damaged(), "{summary}");
        let rendered = summary.to_string();
        assert!(rendered.contains("shard-000.lsix"), "{rendered}");
        assert!(rendered.contains("shard-001.lsix"), "{rendered}");

        // Torn journal tail: still recoverable (truncated, not damage).
        let j0 = lsi_core::journal_path(&dir.join("shard-000.lsix"));
        let mut bytes = fs::read(&j0).unwrap();
        bytes.extend_from_slice(&[0xAB; 9]);
        fs::write(&j0, bytes).unwrap();
        let summary = cmd_recover_all(&dir).unwrap();
        assert!(!summary.any_damaged(), "{summary}");
        assert!(summary.to_string().contains("truncated 9 B"), "{}", summary);

        // A snapshot that is not a snapshot is per-shard damage: the other
        // shard still recovers and the sweep reports both.
        fs::write(dir.join("shard-001.lsix"), b"not a snapshot").unwrap();
        let summary = cmd_recover_all(&dir).unwrap();
        assert!(summary.any_damaged(), "{summary}");
        let rendered = summary.to_string();
        assert!(rendered.contains("DAMAGED"), "{rendered}");
        assert!(rendered.contains("shard-000.lsix"), "{rendered}");

        // No snapshots at all is an invocation-level error, not damage.
        let empty = temp("recover_all_empty");
        fs::create_dir_all(&empty).unwrap();
        assert!(cmd_recover_all(&empty).is_err());

        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn recover_all_repairs_quarantined_sections() {
        use lsi_repro_test_corpus::sample_shard_dir;
        let dir = sample_shard_dir("recover_quarantine");
        let snapshot = dir.join("shard-001.lsix");

        // Flip a byte inside the doc-vectors payload: degradable damage
        // the tolerant open quarantines rather than rejects.
        let report = cmd_inspect(&snapshot).unwrap().report;
        let section = report
            .sections
            .iter()
            .find(|s| s.name == "doc-vectors")
            .unwrap();
        let mut bytes = fs::read(&snapshot).unwrap();
        bytes[(section.offset + 8 + section.len / 2) as usize] ^= 0x01;
        fs::write(&snapshot, bytes).unwrap();
        assert!(cmd_inspect(&snapshot).unwrap().any_damaged());

        // The sweep rebuilds the quarantined rows from the factorization
        // and the journal; the rewritten snapshot verifies clean.
        let summary = cmd_recover_all(&dir).unwrap();
        assert!(!summary.any_damaged(), "{summary}");
        let rendered = summary.to_string();
        assert!(rendered.contains("repaired"), "{rendered}");
        assert!(rendered.contains("3 row(s) rebuilt"), "{rendered}");
        assert!(!cmd_inspect(&snapshot).unwrap().any_damaged());

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_reports_sections_and_journal_without_repair() {
        use lsi_repro_test_corpus::sample_shard_dir;
        let dir = sample_shard_dir("inspect");
        let snapshot = dir.join("shard-000.lsix");

        // Clean snapshot: every v3 section row renders, nothing damaged,
        // and the sidecar journal's unreplayed frame is counted.
        let summary = cmd_inspect(&snapshot).unwrap();
        assert!(!summary.any_damaged(), "{summary}");
        assert_eq!(summary.report.version, 3, "{summary}");
        let rendered = summary.to_string();
        for name in ["meta", "singular-values", "term-factors", "doc-vectors"] {
            assert!(rendered.contains(name), "missing {name} row:\n{rendered}");
        }
        let journal = summary.journal.as_ref().expect("sidecar journal exists");
        assert_eq!(journal.frames, 1, "one unreplayed add: {rendered}");
        assert_eq!(journal.last_checkpoint, None, "{rendered}");
        assert_eq!(journal.torn_bytes, 0, "{rendered}");

        // A flipped payload byte marks exactly that section damaged, and
        // inspection leaves the file (and a torn journal tail) untouched.
        let mut bytes = fs::read(&snapshot).unwrap();
        let section = summary
            .report
            .sections
            .iter()
            .find(|s| s.name == "doc-vectors")
            .unwrap();
        bytes[(section.offset + 8 + section.len / 2) as usize] ^= 0xFF;
        fs::write(&snapshot, &bytes).unwrap();
        let jpath = lsi_core::journal_path(&snapshot);
        let mut jbytes = fs::read(&jpath).unwrap();
        jbytes.extend_from_slice(&[0xAB; 7]);
        fs::write(&jpath, &jbytes).unwrap();

        let summary = cmd_inspect(&snapshot).unwrap();
        assert!(summary.any_damaged(), "{summary}");
        let rendered = summary.to_string();
        assert!(rendered.contains("doc-vectors"), "{rendered}");
        assert!(rendered.contains("DAMAGED"), "{rendered}");
        assert_eq!(summary.journal.as_ref().unwrap().torn_bytes, 7);
        assert_eq!(
            fs::read(&snapshot).unwrap(),
            bytes,
            "inspect mutated the snapshot"
        );
        assert_eq!(
            fs::read(&jpath).unwrap(),
            jbytes,
            "inspect truncated the journal"
        );

        // Not-an-index files error rather than report.
        fs::write(&snapshot, b"junk").unwrap();
        assert!(cmd_inspect(&snapshot).is_err());

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_walks_lsic_containers() {
        let input = temp("corpus_inspect.txt");
        let output = temp("corpus_inspect.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();

        let summary = cmd_inspect(&output).unwrap();
        assert!(!summary.any_damaged(), "{summary}");
        assert!(summary.framing.contains("lsic container"), "{summary}");
        assert_eq!(summary.report.version, 3, "{summary}");
        assert!(summary.journal.is_none(), "{summary}");
        // The embedded span excludes the container header and CRC trailer,
        // so the v3 layout check (blocks tile the file exactly) passes.
        assert!(summary.to_string().contains("foldin-meta"), "{summary}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    /// Builds a tiny two-shard durable directory for the recover-all test.
    mod lsi_repro_test_corpus {
        use std::path::PathBuf;

        pub fn sample_shard_dir(tag: &str) -> PathBuf {
            let dir =
                std::env::temp_dir().join(format!("lsi_cmd_shards_{}_{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            for shard in 0..2usize {
                let td = lsi_ir::TermDocumentMatrix::from_triplets(
                    4,
                    3,
                    &[
                        (0, 0, 2.0),
                        (1, 0, 1.0),
                        (1, 1, 3.0),
                        (2, 1, 1.0),
                        (3, 2, 2.0),
                        (0, 2, 1.0 + shard as f64),
                    ],
                )
                .unwrap();
                let index =
                    lsi_core::LsiIndex::build(&td, lsi_core::LsiConfig::with_rank(2)).unwrap();
                let path = dir.join(format!("shard-{shard:03}.lsix"));
                let mut durable = lsi_core::DurableIndex::create(&path, index).unwrap();
                // Leave an unreplayed journaled mutation behind so the
                // sweep has something to replay.
                durable.add_document(&[(0, 1.0), (2, 0.5)]).unwrap();
            }
            dir
        }
    }
}
