//! The CLI commands, implemented as library functions (the binary is a
//! thin dispatcher; tests call these directly).

use std::path::Path;

use lsi_core::{BuildStatus, LsiConfig, LsiIndex, SvdBackend};
use lsi_ir::text::Tokenizer;
use lsi_ir::{Dictionary, TermDocumentMatrix, Weighting};

use crate::container::Container;
use crate::corpus_io::load_corpus;
use crate::CliError;

/// Parses a weighting name (`count`, `binary`, `log-tf`, `tf-idf`,
/// `log-entropy`).
pub fn parse_weighting(name: &str) -> Result<Weighting, CliError> {
    Weighting::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = Weighting::ALL.iter().map(|w| w.name()).collect();
            CliError::usage(format!(
                "unknown weighting {name:?}; expected one of {}",
                names.join(", ")
            ))
        })
}

/// `lsi index`: tokenizes the corpus, builds a rank-`rank` LSI index, and
/// writes the container. Returns a one-line summary.
pub fn cmd_index(
    input: &Path,
    output: &Path,
    rank: usize,
    weighting: Weighting,
) -> Result<String, CliError> {
    let docs = load_corpus(input)?;
    let tokenizer = Tokenizer::default();
    let mut dictionary = Dictionary::new();
    let td = TermDocumentMatrix::from_text(&docs, &tokenizer, &mut dictionary)
        .map_err(|e| CliError::other(format!("failed to build term-document matrix: {e}")))?;

    let max_rank = td.n_terms().min(td.n_docs());
    if max_rank == 0 {
        return Err(CliError::other("corpus has no indexable terms"));
    }
    // Out-of-range ranks in either direction are clamped, symmetrically.
    let rank = rank.clamp(1, max_rank);
    let index = LsiIndex::build(
        &td,
        LsiConfig {
            rank,
            weighting,
            backend: SvdBackend::default(),
        },
    )?;

    let mut summary = format!(
        "indexed {} documents, {} terms, rank {} ({}) -> {}",
        td.n_docs(),
        td.n_terms(),
        rank,
        weighting.name(),
        output.display()
    );
    if let BuildStatus::Degraded { achieved_rank } = index.build_status() {
        summary.push_str(&format!(
            "\nwarning: degraded build — corpus rank {achieved_rank} < requested {rank}; \
             trailing dimensions are zero"
        ));
    }
    if let Some(report) = index.solve_report() {
        if report.fell_back() {
            summary.push_str(&format!(
                "\nsolver fell back:\n{}",
                report.summary().trim_end()
            ));
        }
    }

    let container = Container {
        dictionary,
        doc_ids: docs.iter().map(|d| d.id.clone()).collect(),
        index,
    };
    container.save(output)?;
    Ok(summary)
}

/// `lsi add`: folds new documents into an existing container (the classic
/// LSI updating operation) and returns a summary. The spectral basis is
/// not recomputed — see [`lsi_core::LsiIndex::add_document`] for the
/// trade-off; rebuild with `lsi index` when the corpus drifts.
///
/// Fold-in terms must be weighted like the build-time matrix. Count,
/// binary and log-tf are locally computable; tf-idf and log-entropy need
/// corpus-global statistics the container does not carry, so folding into
/// such an index is rejected rather than silently mis-scaled.
pub fn cmd_add(container: &mut Container, input: &Path) -> Result<String, CliError> {
    let weighting = container.index.config().weighting;
    match weighting {
        Weighting::Count | Weighting::Binary | Weighting::LogTf => {}
        Weighting::TfIdf | Weighting::LogEntropy => {
            return Err(CliError::other(format!(
                "cannot fold into a {}-weighted index: that weighting needs \
                 corpus-global statistics; rebuild with `lsi index` instead",
                weighting.name()
            )));
        }
    }

    let docs = load_corpus(input)?;
    let tokenizer = Tokenizer::default();
    let mut added = 0usize;
    let mut skipped = 0usize;
    for doc in &docs {
        // Accumulate counts over known vocabulary only (new terms cannot
        // enter a fixed spectral basis). BTreeMap keeps the terms in id
        // order: fold-in sums floats per term, and hasher order would make
        // the spectral coordinates differ run to run.
        let mut counts = std::collections::BTreeMap::new();
        for tok in tokenizer.tokenize(&doc.body) {
            if let Some(t) = container.dictionary.id(&tok) {
                *counts.entry(t).or_insert(0.0) += 1.0;
            }
        }
        if counts.is_empty() {
            skipped += 1;
            continue;
        }
        let terms: Vec<(usize, f64)> = counts
            .into_iter()
            .map(|(t, tf): (usize, f64)| {
                let w = match weighting {
                    Weighting::Binary => 1.0,
                    Weighting::LogTf => 1.0 + tf.ln(),
                    _ => tf, // Count
                };
                (t, w)
            })
            .collect();
        container.index.add_document(&terms);
        container.doc_ids.push(doc.id.clone());
        added += 1;
    }
    Ok(format!(
        "folded in {added} documents ({skipped} skipped: no known terms); \
         total {} documents",
        container.index.n_docs()
    ))
}

/// `lsi query`: tokenizes the query with the same pipeline, folds it into
/// LSI space, returns `(doc id, score)` pairs best-first.
pub fn cmd_query(
    container: &Container,
    query_text: &str,
    top: usize,
) -> Result<Vec<(String, f64)>, CliError> {
    let tokenizer = Tokenizer::default();
    let terms: Vec<(usize, f64)> = tokenizer
        .tokenize(query_text)
        .into_iter()
        .filter_map(|tok| container.dictionary.id(&tok))
        .map(|t| (t, 1.0))
        .collect();
    if terms.is_empty() {
        return Err(CliError::other(format!(
            "no query term appears in the index vocabulary: {query_text:?}"
        )));
    }
    let hits = container.index.query(&terms, top);
    Ok(hits
        .hits()
        .iter()
        .map(|h| {
            // Documents folded in after the container was assembled have no
            // external id; synthesize one rather than indexing out of range.
            let id = container
                .doc_ids
                .get(h.doc)
                .cloned()
                .unwrap_or_else(|| format!("doc#{}", h.doc));
            (id, h.score)
        })
        .collect())
}

/// `lsi similar-terms`: nearest terms to `term` in LSI space.
pub fn cmd_similar_terms(
    container: &Container,
    term: &str,
    top: usize,
) -> Result<Vec<(String, f64)>, CliError> {
    let t = container
        .dictionary
        .id(&term.to_lowercase())
        .ok_or_else(|| CliError::other(format!("term {term:?} is not in the index vocabulary")))?;
    let hits = container.index.similar_terms(t, top);
    Ok(hits
        .hits()
        .iter()
        .map(|h| {
            (
                container
                    .dictionary
                    .term(h.doc)
                    .unwrap_or("<unknown>")
                    .to_owned(),
                h.score,
            )
        })
        .collect())
}

/// `lsi topics`: for each retained singular direction, the top-weighted
/// terms — a human-readable view of what the latent dimensions encode.
pub fn cmd_topics(container: &Container, terms_per_topic: usize) -> Vec<(usize, f64, Vec<String>)> {
    let index: &LsiIndex = &container.index;
    let k = index.rank();
    let n = index.n_terms();
    let mut out = Vec::with_capacity(k);
    for dim in 0..k {
        let mut weighted: Vec<(usize, f64)> = (0..n)
            .map(|t| (t, index.factors().u[(t, dim)].abs()))
            .collect();
        // lsi-lint: allow(E1-panic-policy, "invariant: term weights come from verified finite factors")
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        let top_terms: Vec<String> = weighted
            .iter()
            .take(terms_per_topic)
            .map(|&(t, _)| {
                container
                    .dictionary
                    .term(t)
                    .unwrap_or("<unknown>")
                    .to_owned()
            })
            .collect();
        out.push((dim, index.singular_values()[dim], top_terms));
    }
    out
}

/// Options for [`cmd_serve_bench`] — one struct so the flag surface can
/// grow without churning the signature.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Total queries in the load profile.
    pub queries: usize,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// Seed for the query generator (the profile is seed-deterministic).
    pub seed: u64,
    /// Hard per-query deadline in milliseconds.
    pub deadline_ms: u64,
    /// Optional soft deadline in milliseconds (degrade instead of
    /// continuing in LSI space past it). Note: a container carries no
    /// term-document matrix, so the bench engine has no term-space
    /// fallback and soft deadlines only matter for degraded indexes.
    pub soft_deadline_ms: Option<u64>,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            queries: 1_000,
            workers: 4,
            seed: 20260706,
            deadline_ms: 1_000,
            soft_deadline_ms: None,
        }
    }
}

/// `lsi serve-bench`: drives the concurrent query engine with a
/// seed-deterministic load profile — mostly well-formed vocabulary
/// queries, plus fixed fractions of malformed (out-of-range term,
/// non-finite weight) and deliberately slow queries — and renders the
/// engine's statistics table. Fails with a serve-category error if the
/// engine's bookkeeping does not balance after the run.
pub fn cmd_serve_bench(container: Container, opts: &ServeBenchOptions) -> Result<String, CliError> {
    use lsi_serve::{EngineConfig, Query, QueryEngine};
    use rand::Rng;
    use std::time::Duration;

    let n_terms = container.index.n_terms();
    if n_terms == 0 {
        return Err(CliError::other("index has an empty vocabulary"));
    }
    // Slow queries are keyed on a tag the generator below assigns.
    const TAG_SLOW: u64 = 1;
    let config = EngineConfig {
        workers: opts.workers,
        // Room for the whole profile: the bench measures the engine's
        // outcome mix, not the submitter's ability to outrun it.
        queue_capacity: opts.queries.max(64),
        deadline: Some(Duration::from_millis(opts.deadline_ms)),
        soft_deadline: opts.soft_deadline_ms.map(Duration::from_millis),
        fault_hook: Some(std::sync::Arc::new(|tag| {
            if tag == TAG_SLOW {
                std::thread::sleep(Duration::from_millis(2));
            }
        })),
    };
    let engine = QueryEngine::new(container.index, config);

    let mut rng = lsi_linalg::rng::seeded(opts.seed);
    let mut tickets = Vec::with_capacity(opts.queries);
    for _ in 0..opts.queries {
        let roll = rng.gen_range(0usize..100);
        let mut terms: Vec<(usize, f64)> = (0..rng.gen_range(1usize..=4))
            .map(|_| (rng.gen_range(0..n_terms), rng.gen_range(0.5..2.0)))
            .collect();
        let mut tag = 0;
        match roll {
            // 5%: out-of-range term id.
            0..=4 => terms[0].0 = n_terms + 1,
            // 3%: non-finite weight.
            5..=7 => terms[0].1 = f64::NAN,
            // 2%: deliberately slow.
            8..=9 => tag = TAG_SLOW,
            _ => {}
        }
        let query = Query {
            terms,
            top_k: rng.gen_range(1usize..=10),
            tag,
        };
        // Shedding cannot happen at this capacity; treat it as fatal.
        tickets.push(engine.submit(query)?);
    }
    for ticket in tickets {
        // Per-query outcomes (including typed errors) are the bench's
        // data, not failures; they land in the stats table.
        let _ = ticket.wait();
    }

    let stats = engine.stats();
    if !stats.consistent() {
        return Err(CliError::serve(format!(
            "engine bookkeeping does not balance after the run:\n{}",
            stats.table()
        )));
    }
    Ok(format!(
        "serve-bench: {} queries, {} workers, {} linalg thread(s), deadline {} ms, seed {}\n{}",
        opts.queries,
        opts.workers,
        lsi_linalg::parallel::threads(),
        opts.deadline_ms,
        opts.seed,
        stats.table().trim_end()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsi_cmd_{}_{name}", std::process::id()))
    }

    fn write_sample_corpus(path: &Path) {
        fs::write(
            path,
            "d0\tthe car engine roared down the highway\n\
             d1\tan automobile engine needs maintenance\n\
             d2\tthe automobile market and highway sales\n\
             d3\ta car needs a good engine and brakes\n\
             d4\tthe galaxy contains billions of stars\n\
             d5\ta starship crossed the galaxy to the stars\n",
        )
        .unwrap();
    }

    #[test]
    fn index_then_query_end_to_end() {
        let input = temp("corpus.txt");
        let output = temp("corpus.lsic");
        write_sample_corpus(&input);

        let summary = cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        assert!(summary.contains("6 documents"));

        let container = Container::load(&output).unwrap();
        let hits = cmd_query(&container, "automobile", 6).unwrap();
        assert!(!hits.is_empty());
        // Synonymy bridge: a "car"-only document scores high.
        let car_doc_score = hits
            .iter()
            .find(|(id, _)| id == "d0")
            .map(|&(_, s)| s)
            .expect("d0 retrieved");
        assert!(car_doc_score > 0.8, "d0 score {car_doc_score}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn similar_terms_cross_surface_forms() {
        let input = temp("corpus2.txt");
        let output = temp("corpus2.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let sims = cmd_similar_terms(&container, "automobile", 5).unwrap();
        assert!(
            sims.iter().any(|(t, s)| t == "car" && *s > 0.5),
            "car not among similar terms: {sims:?}"
        );
        assert!(cmd_similar_terms(&container, "zeppelin", 5).is_err());

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn topics_show_vocabulary() {
        let input = temp("corpus3.txt");
        let output = temp("corpus3.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let topics = cmd_topics(&container, 4);
        assert_eq!(topics.len(), 2);
        let all_terms: Vec<String> = topics.iter().flat_map(|(_, _, ts)| ts.clone()).collect();
        // The two dominant directions split vehicle vs space vocabulary.
        assert!(all_terms.iter().any(|t| t == "engine" || t == "car"));
        assert!(all_terms.iter().any(|t| t == "galaxy" || t == "stars"));

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn add_folds_documents_into_saved_container() {
        let input = temp("corpus_add.txt");
        let output = temp("corpus_add.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();

        // Fold in two new documents, one off-vocabulary.
        let more = temp("more.txt");
        fs::write(
            &more,
            "d6\tthe car engine and the automobile engine\nd7\tzzz qqq www\n",
        )
        .unwrap();
        let mut container = Container::load(&output).unwrap();
        let before = container.index.n_docs();
        let summary = cmd_add(&mut container, &more).unwrap();
        assert!(summary.contains("folded in 1"), "{summary}");
        assert!(summary.contains("1 skipped"), "{summary}");
        assert_eq!(container.index.n_docs(), before + 1);
        assert_eq!(container.doc_ids.len(), before + 1);

        // Save, reload, and confirm the folded document is searchable.
        container.save(&output).unwrap();
        let reloaded = Container::load(&output).unwrap();
        let hits = cmd_query(&reloaded, "automobile engine", 10).unwrap();
        assert!(
            hits.iter().any(|(id, s)| id == "d6" && *s > 0.8),
            "folded doc not retrieved: {hits:?}"
        );

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
        fs::remove_file(&more).ok();
    }

    #[test]
    fn add_rejects_globally_weighted_indexes() {
        let input = temp("corpus_tfidf.txt");
        let output = temp("corpus_tfidf.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::TfIdf).unwrap();
        let mut container = Container::load(&output).unwrap();
        let err = cmd_add(&mut container, &input).unwrap_err();
        assert!(err.message.contains("tf-idf"), "{err}");
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn add_applies_log_tf_weighting() {
        let input = temp("corpus_logtf.txt");
        let output = temp("corpus_logtf.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::LogTf).unwrap();
        let mut container = Container::load(&output).unwrap();
        let summary = cmd_add(&mut container, &input).unwrap();
        assert!(summary.contains("folded in 6"), "{summary}");
        // Folded copies of existing documents land on top of the originals.
        let n = container.index.n_docs();
        assert!((container.index.doc_cosine(0, n - 6) - 1.0).abs() < 1e-6);
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn query_with_oov_terms_errors() {
        let input = temp("corpus4.txt");
        let output = temp("corpus4.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();
        assert!(cmd_query(&container, "quux flibbet", 3).is_err());
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn rank_clamped_to_corpus() {
        let input = temp("corpus5.txt");
        let output = temp("corpus5.lsic");
        write_sample_corpus(&input);
        // Ask for an absurd rank; it gets clamped, not rejected.
        let summary = cmd_index(&input, &output, 500, Weighting::TfIdf).unwrap();
        assert!(summary.contains("rank 6"), "{summary}");
        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }

    #[test]
    fn parse_weighting_names() {
        assert_eq!(parse_weighting("tf-idf").unwrap(), Weighting::TfIdf);
        assert_eq!(parse_weighting("count").unwrap(), Weighting::Count);
        assert!(parse_weighting("nonsense").is_err());
    }

    #[test]
    fn serve_bench_runs_profile_and_balances() {
        let input = temp("corpus_bench.txt");
        let output = temp("corpus_bench.lsic");
        write_sample_corpus(&input);
        cmd_index(&input, &output, 2, Weighting::Count).unwrap();
        let container = Container::load(&output).unwrap();

        let opts = ServeBenchOptions {
            queries: 200,
            workers: 2,
            seed: 42,
            deadline_ms: 5_000,
            soft_deadline_ms: None,
        };
        let report = cmd_serve_bench(container, &opts).unwrap();
        assert!(report.contains("200 queries"), "{report}");
        assert!(report.contains("submitted"), "{report}");
        // The report states the linalg thread configuration so bench runs
        // are self-describing.
        assert!(report.contains("linalg thread(s)"), "{report}");
        // The profile injects malformed queries; they must show up typed.
        assert!(report.contains("bad query"), "{report}");

        fs::remove_file(&input).ok();
        fs::remove_file(&output).ok();
    }
}
