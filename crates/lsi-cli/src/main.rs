#![forbid(unsafe_code)]
//! `lsi` — command-line latent semantic indexing.

use std::path::PathBuf;
use std::process::ExitCode;

use lsi_cli::commands::{
    cmd_add, cmd_index, cmd_inspect, cmd_query, cmd_recover, cmd_recover_all, cmd_serve_bench,
    cmd_similar_terms, cmd_topics, parse_weighting, ServeBenchOptions,
};
use lsi_cli::container::Container;
use lsi_cli::CliError;
use lsi_ir::Weighting;

const USAGE: &str = "\
usage:
  lsi index --input <file|dir> --output <out.lsic> [--rank K] [--weighting W]
  lsi add --index <out.lsic> --input <file|dir> [--durable]
  lsi recover --index <out.lsic>
  lsi recover --all <shard-dir>
  lsi inspect <index.lsic|shard.lsix>
  lsi query --index <out.lsic> <query text...> [--top N]
  lsi similar-terms --index <out.lsic> <term> [--top N]
  lsi topics --index <out.lsic> [--terms N]
  lsi serve-bench --index <out.lsic> [--queries N] [--workers W] [--seed S]
                  [--deadline-ms D] [--soft-ms D] [--durable] [--shards N]
                  [--process]
  lsi shard-serve --snapshot <shard.lsix> --socket <path> [--workers W]
                  [--deadline-ms D]

global flags:
  --threads N   linalg thread count (overrides LSI_THREADS; outputs are
                bitwise identical for every value)

durability:
  `add --durable` write-ahead-journals every fold-in (sidecar
  <out.lsic>.lsij, fsynced before apply); `recover` replays that journal
  over the last saved container after a crash and compacts it.
  `recover --all` bulk-recovers every shard snapshot (*.lsix) under a
  sharded serving directory, one summary row per shard; it exits with the
  storage code (4) if any shard has damage beyond a truncatable tail.
  `inspect` prints the snapshot's section directory (offsets, lengths,
  per-section CRC status), its format version, and the sidecar journal's
  frame count and last checkpoint — read-only, no repair. It exits with
  the storage code (4) if any section (or the directory) is damaged.
  `serve-bench --shards N` serves through the scatter-gather cluster
  coordinator (document-partitioned shards, order-fixed top-k merge);
  with --durable each shard journals independently and the run verifies
  a bit-identical cluster reopen.
  `serve-bench --shards N --process` runs every shard as a separate
  `lsi shard-serve` daemon spawned from this binary — Unix-socket RPC,
  heartbeat supervision — behind the same coordinator; the run lays the
  shards out on disk, journals fold-ins through the daemons, and ends
  with a bit-identical in-process reopen of the same directory.
  `shard-serve` runs one shard (snapshot + journal + worker pool) as a
  daemon answering the cluster RPC protocol on a Unix socket until a
  Shutdown RPC; it is what the supervisor spawns, and it sweeps a stale
  socket path left by a previous kill -9 before binding.

weightings: count, binary, log-tf, tf-idf, log-entropy (default: log-entropy)
";

/// Flags that take no value; present means `true`.
const BOOL_FLAGS: &[&str] = &["durable", "process"];

struct Flags {
    named: std::collections::HashMap<String, String>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut named = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                named.insert(name.to_owned(), "true".to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::usage(format!("--{name} needs a value")))?;
            named.insert(name.to_owned(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Flags { named, positional })
}

impl Flags {
    fn path(&self, name: &str) -> Result<PathBuf, CliError> {
        self.named
            .get(name)
            .map(PathBuf::from)
            .ok_or_else(|| CliError::usage(format!("missing required --{name}")))
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.named.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| CliError::usage(format!("bad --{name} value {v:?}: {e}"))),
        }
    }
}

/// Extracts the global `--threads N` flag (accepted before or after the
/// command) and applies it, returning the remaining arguments.
///
/// Results are bitwise identical for every value, so the flag only affects
/// wall time; 0 would mean "back to automatic", which is not a sensible
/// CLI request, so reject it.
fn apply_threads_flag(args: Vec<String>) -> Result<Vec<String>, CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let v = it
                .next()
                .ok_or_else(|| CliError::usage("--threads needs a value"))?;
            let t: usize = v
                .parse()
                .map_err(|e| CliError::usage(format!("bad --threads value {v:?}: {e}")))?;
            if t == 0 {
                return Err(CliError::usage("--threads must be at least 1"));
            }
            lsi_linalg::parallel::set_threads(t);
        } else {
            rest.push(arg);
        }
    }
    Ok(rest)
}

fn run() -> Result<(), CliError> {
    let args = apply_threads_flag(std::env::args().skip(1).collect())?;
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return Err(CliError::usage("no command given"));
    };
    let flags = parse_flags(&args[1..])?;

    match command.as_str() {
        "index" => {
            let weighting = match flags.named.get("weighting") {
                Some(w) => parse_weighting(w)?,
                None => Weighting::LogEntropy,
            };
            let summary = cmd_index(
                &flags.path("input")?,
                &flags.path("output")?,
                flags.usize_or("rank", 50)?,
                weighting,
            )?;
            println!("{summary}");
        }
        "add" => {
            let index_path = flags.path("index")?;
            let mut container = Container::load(&index_path)?;
            let summary = if flags.named.contains_key("durable") {
                // Write-ahead mode: journal every fold-in before applying
                // it, save, then compact the journal. A journal holding
                // unreplayed frames means a previous run crashed; recover
                // first rather than interleaving new frames with old ones.
                let (mut journal, recovery) =
                    lsi_core::Journal::open(&lsi_core::journal_path(&index_path))?;
                let pending = recovery.records.iter().any(|r| {
                    r.seq() >= container.index.n_docs() as u64
                        && !matches!(r, lsi_core::MutationRecord::Checkpoint { .. })
                });
                if pending {
                    return Err(CliError::storage(format!(
                        "journal {} holds unreplayed frames from a previous run; \
                         run `lsi recover --index {}` first",
                        journal.path().display(),
                        index_path.display()
                    )));
                }
                let summary = cmd_add(&mut container, &flags.path("input")?, Some(&mut journal))?;
                container.save(&index_path)?;
                journal.rotate(container.index.n_docs() as u64)?;
                summary
            } else {
                let summary = cmd_add(&mut container, &flags.path("input")?, None)?;
                container.save(&index_path)?;
                summary
            };
            println!("{summary}");
        }
        "recover" => {
            if flags.named.contains_key("all") {
                let summary = cmd_recover_all(&flags.path("all")?)?;
                // Print every shard row before deciding the exit code, so
                // partial damage still leaves a full report on stdout.
                print!("{summary}");
                if summary.any_damaged() {
                    let damaged: Vec<&str> = summary
                        .shards
                        .iter()
                        .filter(|s| s.outcome.is_err())
                        .map(|s| s.shard.as_str())
                        .collect();
                    return Err(CliError::storage(format!(
                        "storage damage in {} shard(s): {}",
                        damaged.len(),
                        damaged.join(", ")
                    )));
                }
            } else {
                let summary = cmd_recover(&flags.path("index")?)?;
                println!("{summary}");
            }
        }
        "inspect" => {
            let path = match flags.named.get("index") {
                Some(p) => PathBuf::from(p),
                None => PathBuf::from(flags.positional.first().ok_or_else(|| {
                    CliError::usage("inspect needs an index path (positional or --index)")
                })?),
            };
            let summary = cmd_inspect(&path)?;
            // Print the full table before deciding the exit code, so
            // damage still leaves a complete report on stdout.
            print!("{summary}");
            if summary.any_damaged() {
                return Err(CliError::storage(format!(
                    "section damage in {}",
                    path.display()
                )));
            }
        }
        "query" => {
            let container = Container::load(&flags.path("index")?)?;
            let text = flags.positional.join(" ");
            let top = flags.usize_or("top", 10)?;
            for (id, score) in cmd_query(&container, &text, top)? {
                println!("{score:+.4}  {id}");
            }
        }
        "similar-terms" => {
            let container = Container::load(&flags.path("index")?)?;
            let term = flags
                .positional
                .first()
                .ok_or_else(|| CliError::usage("similar-terms needs a term argument"))?;
            let top = flags.usize_or("top", 10)?;
            for (t, score) in cmd_similar_terms(&container, term, top)? {
                println!("{score:+.4}  {t}");
            }
        }
        "topics" => {
            let container = Container::load(&flags.path("index")?)?;
            let terms = flags.usize_or("terms", 8)?;
            for (dim, sigma, top_terms) in cmd_topics(&container, terms) {
                println!("dim {dim:>3}  σ = {sigma:<10.3}  {}", top_terms.join(" "));
            }
        }
        "serve-bench" => {
            let container = Container::load(&flags.path("index")?)?;
            let defaults = ServeBenchOptions::default();
            let opts = ServeBenchOptions {
                queries: flags.usize_or("queries", defaults.queries)?,
                workers: flags.usize_or("workers", defaults.workers)?,
                seed: flags.usize_or("seed", defaults.seed as usize)? as u64,
                deadline_ms: flags.usize_or("deadline-ms", defaults.deadline_ms as usize)? as u64,
                soft_deadline_ms: match flags.named.get("soft-ms") {
                    None => None,
                    Some(v) => {
                        Some(v.parse().map_err(|e| {
                            CliError::usage(format!("bad --soft-ms value {v:?}: {e}"))
                        })?)
                    }
                },
                durable: flags.named.contains_key("durable"),
                shards: flags.usize_or("shards", defaults.shards)?,
                process: flags.named.contains_key("process"),
            };
            println!("{}", cmd_serve_bench(container, &opts)?);
        }
        "shard-serve" => {
            let mut config =
                lsi_serve::ShardDaemonConfig::new(flags.path("snapshot")?, flags.path("socket")?);
            config.workers = flags.usize_or("workers", config.workers)?;
            let default_deadline = u64::try_from(config.hard_deadline.as_millis()).unwrap_or(1_000);
            config.hard_deadline = std::time::Duration::from_millis(
                flags.usize_or("deadline-ms", default_deadline as usize)? as u64,
            );
            lsi_serve::run_shard_daemon(config)
                .map_err(|e| CliError::storage(format!("shard daemon failed: {e}")))?;
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
        }
        other => {
            eprint!("{USAGE}");
            return Err(CliError::usage(format!("unknown command {other:?}")));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.kind.exit_code())
        }
    }
}
