#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Command-line LSI — a small, deployable front end over the workspace.
//!
//! ```text
//! lsi index --input docs.txt --output corpus.lsic [--rank 50] [--weighting log-entropy]
//! lsi query --index corpus.lsic "car maintenance" [--top 10]
//! lsi similar-terms --index corpus.lsic automobile [--top 10]
//! lsi topics --index corpus.lsic [--terms 8]
//! ```
//!
//! Input corpora are plain text: a single file with one document per line
//! (`id<TAB>body`, or just the body — line numbers become ids), or a
//! directory whose `.txt` files are one document each.
//!
//! The `.lsic` container bundles the dictionary, document ids and the
//! spectral factors (via [`lsi_core::storage`]) into one file.
//!
//! Failures exit with a category-specific code (see [`ErrorKind`]) so
//! scripts can distinguish a typo'd flag from a corrupt index file from a
//! solver that exhausted its fallback chain.

pub mod commands;
pub mod container;
pub mod corpus_io;

/// Failure category; each maps to a distinct process exit code so callers
/// can react without parsing stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Anything not covered by a more specific kind (bad query terms,
    /// fold-in restrictions, …). Exit code 1.
    Other,
    /// Bad invocation: unknown command, missing/unparsable flag. Exit
    /// code 2.
    Usage,
    /// Filesystem failure reading a corpus or writing a container. Exit
    /// code 3.
    Io,
    /// Malformed, corrupt, or version-incompatible `.lsic` data (including
    /// checksum mismatches). Exit code 4.
    Storage,
    /// Every SVD backend in the resilient fallback chain failed; stderr
    /// carries the per-attempt report. Exit code 5.
    Solver,
    /// The serving engine failed as a whole (inconsistent bookkeeping,
    /// engine shutdown mid-run) — distinct from per-query errors, which
    /// serve-bench counts rather than propagates. Exit code 6.
    Serve,
}

impl ErrorKind {
    /// The process exit code for this failure category.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Other => 1,
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::Storage => 4,
            ErrorKind::Solver => 5,
            ErrorKind::Serve => 6,
        }
    }
}

/// Exit-style error type for the CLI: every failure carries a user-facing
/// message plus the [`ErrorKind`] that decides the exit code.
#[derive(Debug)]
pub struct CliError {
    /// User-facing description, printed to stderr.
    pub message: String,
    /// Failure category; decides the process exit code.
    pub kind: ErrorKind,
}

impl CliError {
    /// A miscellaneous failure (exit code 1).
    pub fn other(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            kind: ErrorKind::Other,
        }
    }

    /// An invocation error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            kind: ErrorKind::Usage,
        }
    }

    /// A filesystem error (exit code 3).
    pub fn io(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            kind: ErrorKind::Io,
        }
    }

    /// A malformed-container error (exit code 4).
    pub fn storage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            kind: ErrorKind::Storage,
        }
    }

    /// A serving-engine failure (exit code 6).
    pub fn serve(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            kind: ErrorKind::Serve,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError {
            message: format!("i/o error: {e}"),
            kind: ErrorKind::Io,
        }
    }
}

impl From<lsi_core::StorageError> for CliError {
    fn from(e: lsi_core::StorageError) -> Self {
        CliError {
            message: format!("index file error: {e}"),
            kind: ErrorKind::Storage,
        }
    }
}

impl From<lsi_core::LsiError> for CliError {
    fn from(e: lsi_core::LsiError) -> Self {
        let kind = match &e {
            lsi_core::LsiError::SolverExhausted(_) => ErrorKind::Solver,
            _ => ErrorKind::Other,
        };
        CliError {
            message: format!("indexing error: {e}"),
            kind,
        }
    }
}

impl From<lsi_serve::QueryError> for CliError {
    fn from(e: lsi_serve::QueryError) -> Self {
        let kind = match &e {
            // A malformed query is the caller's fault, not the engine's.
            lsi_serve::QueryError::BadQuery(_) => ErrorKind::Other,
            _ => ErrorKind::Serve,
        };
        CliError {
            message: format!("serving error: {e}"),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let codes = [
            ErrorKind::Other,
            ErrorKind::Usage,
            ErrorKind::Io,
            ErrorKind::Storage,
            ErrorKind::Solver,
            ErrorKind::Serve,
        ]
        .map(ErrorKind::exit_code);
        let unique: std::collections::HashSet<u8> = codes.into_iter().collect();
        assert_eq!(unique.len(), 6);
        assert!(!unique.contains(&0), "0 is reserved for success");
    }

    #[test]
    fn io_errors_map_to_io_kind() {
        let e: CliError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(e.kind, ErrorKind::Io);
        assert!(e.message.contains("i/o error"));
    }

    #[test]
    fn storage_errors_map_to_storage_kind() {
        let e: CliError = lsi_core::StorageError::CorruptData.into();
        assert_eq!(e.kind, ErrorKind::Storage);
    }

    #[test]
    fn lsi_errors_map_to_other_kind() {
        let e: CliError = lsi_core::LsiError::EmptyCorpus.into();
        assert_eq!(e.kind, ErrorKind::Other);
    }

    #[test]
    fn query_errors_map_to_serve_kind() {
        let e: CliError = lsi_serve::QueryError::DeadlineExceeded.into();
        assert_eq!(e.kind, ErrorKind::Serve);
        // Malformed queries are the caller's problem, not the engine's.
        let bad: CliError =
            lsi_serve::QueryError::BadQuery(lsi_core::BadQuery::NonFiniteQuery).into();
        assert_eq!(bad.kind, ErrorKind::Other);
    }
}
