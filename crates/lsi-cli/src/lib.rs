#![warn(missing_docs)]

//! Command-line LSI — a small, deployable front end over the workspace.
//!
//! ```text
//! lsi index --input docs.txt --output corpus.lsic [--rank 50] [--weighting log-entropy]
//! lsi query --index corpus.lsic "car maintenance" [--top 10]
//! lsi similar-terms --index corpus.lsic automobile [--top 10]
//! lsi topics --index corpus.lsic [--terms 8]
//! ```
//!
//! Input corpora are plain text: a single file with one document per line
//! (`id<TAB>body`, or just the body — line numbers become ids), or a
//! directory whose `.txt` files are one document each.
//!
//! The `.lsic` container bundles the dictionary, document ids and the
//! spectral factors (via [`lsi_core::storage`]) into one file.

pub mod commands;
pub mod container;
pub mod corpus_io;

/// Exit-style error type for the CLI: every failure carries a user-facing
/// message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

impl From<lsi_core::StorageError> for CliError {
    fn from(e: lsi_core::StorageError) -> Self {
        CliError(format!("index file error: {e}"))
    }
}

impl From<lsi_core::LsiError> for CliError {
    fn from(e: lsi_core::LsiError) -> Self {
        CliError(format!("indexing error: {e}"))
    }
}
