//! Reading text corpora from files and directories.

use std::fs;
use std::path::Path;

use lsi_ir::text::TextDocument;

use crate::CliError;

/// Loads a corpus from `path`:
///
/// * a **file** — one document per non-empty line, `id<TAB>body` or plain
///   body (ids default to `line-N`);
/// * a **directory** — every `.txt` file is one document, id = file stem.
///
/// Documents are returned in a deterministic order (line order / sorted
/// file names).
pub fn load_corpus(path: &Path) -> Result<Vec<TextDocument>, CliError> {
    if path.is_dir() {
        load_dir(path)
    } else {
        load_lines(path)
    }
}

fn load_lines(path: &Path) -> Result<Vec<TextDocument>, CliError> {
    let content = fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {}: {e}", path.display())))?;
    let docs: Vec<TextDocument> = content
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| match line.split_once('\t') {
            Some((id, body)) if !id.trim().is_empty() => TextDocument::new(id.trim(), body.trim()),
            _ => TextDocument::new(format!("line-{}", i + 1), line.trim()),
        })
        .collect();
    if docs.is_empty() {
        return Err(CliError::other(format!(
            "{} contains no documents",
            path.display()
        )));
    }
    Ok(docs)
}

fn load_dir(path: &Path) -> Result<Vec<TextDocument>, CliError> {
    let mut entries: Vec<_> = fs::read_dir(path)
        .map_err(|e| CliError::io(format!("cannot read directory {}: {e}", path.display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    entries.sort();
    let mut docs = Vec::with_capacity(entries.len());
    for p in entries {
        let body = fs::read_to_string(&p)
            .map_err(|e| CliError::io(format!("cannot read {}: {e}", p.display())))?;
        let id = p
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        docs.push(TextDocument::new(id, body));
    }
    if docs.is_empty() {
        return Err(CliError::other(format!(
            "{} contains no .txt documents",
            path.display()
        )));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsi_cli_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn loads_tabbed_lines() {
        let p = temp_path("tabbed.txt");
        fs::write(&p, "doc-a\tthe car engine\ndoc-b\tthe galaxy spins\n\n").unwrap();
        let docs = load_corpus(&p).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, "doc-a");
        assert_eq!(docs[0].body, "the car engine");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn loads_plain_lines_with_generated_ids() {
        let p = temp_path("plain.txt");
        fs::write(&p, "first document\n\nthird line doc\n").unwrap();
        let docs = load_corpus(&p).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, "line-1");
        assert_eq!(docs[1].id, "line-3");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn loads_directory_sorted() {
        let dir = temp_path("dir");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("b.txt"), "second doc").unwrap();
        fs::write(dir.join("a.txt"), "first doc").unwrap();
        fs::write(dir.join("ignored.md"), "not text").unwrap();
        let docs = load_corpus(&dir).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, "a");
        assert_eq!(docs[1].id, "b");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let p = temp_path("empty.txt");
        fs::write(&p, "\n\n").unwrap();
        assert!(load_corpus(&p).is_err());
        fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_path_is_an_error() {
        assert!(load_corpus(Path::new("/definitely/not/here.txt")).is_err());
    }
}
