//! The `.lsic` container: dictionary + document ids + spectral factors.
//!
//! ```text
//! magic "LSIC" | version u32 |
//! n_terms u64 | term strings (u32 length + UTF-8 bytes) … |
//! n_docs  u64 | doc-id strings … |
//! embedded LSIX payload (lsi_core::storage) |
//! crc32 u32 (version ≥ 2: over every preceding byte)
//! ```
//!
//! Version-1 containers (no trailer) are still read; new files are always
//! written as version 2.

use std::io::{Read, Write};
use std::path::Path;

use lsi_core::storage::{Crc32Reader, Crc32Writer};
use lsi_core::LsiIndex;
use lsi_ir::Dictionary;

use crate::CliError;

const MAGIC: &[u8; 4] = b"LSIC";
const VERSION: u32 = 2;
/// Last container version without the CRC-32 trailer.
const VERSION_NO_CRC: u32 = 1;
/// Upper bound on a single stored string; rejects absurd headers early.
const MAX_STRING: u32 = 1 << 20;

/// Everything the CLI needs to serve queries.
pub struct Container {
    /// Term ↔ id mapping used at indexing time.
    pub dictionary: Dictionary,
    /// External document ids, in column order.
    pub doc_ids: Vec<String>,
    /// The spectral index.
    pub index: LsiIndex,
}

fn write_string<W: Write>(w: &mut W, s: &str) -> Result<(), CliError> {
    let bytes = s.as_bytes();
    if bytes.len() as u64 > MAX_STRING as u64 {
        return Err(CliError::storage(format!(
            "string too long ({} bytes)",
            bytes.len()
        )));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

fn read_string<R: Read>(r: &mut R) -> Result<String, CliError> {
    let mut lenbuf = [0u8; 4];
    r.read_exact(&mut lenbuf)?;
    let len = u32::from_le_bytes(lenbuf);
    if len > MAX_STRING {
        return Err(CliError::storage(format!(
            "corrupt container: string length {len}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| CliError::storage("corrupt container: invalid UTF-8"))
}

/// Locates the embedded LSIX payload inside serialized `.lsic` bytes by
/// walking the container header — magic, version, and both string tables —
/// without materializing a dictionary or index. Returns the byte range of
/// the embedded snapshot (for version ≥ 2 the container's CRC trailer is
/// excluded). Used by `lsi inspect` to frame-check the embedded index in
/// place without a strict parse, so damage can be *reported* rather than
/// aborting the read.
pub fn embedded_index_span(bytes: &[u8]) -> Result<std::ops::Range<usize>, CliError> {
    fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CliError> {
        let end = pos
            .checked_add(n)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| CliError::storage("container truncated mid-header"))?;
        let slice = &bytes[*pos..end];
        *pos = end;
        Ok(slice)
    }
    fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CliError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(take(bytes, pos, 4)?);
        Ok(u32::from_le_bytes(buf))
    }
    fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CliError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(take(bytes, pos, 8)?);
        Ok(u64::from_le_bytes(buf))
    }

    let mut pos = 0usize;
    if take(bytes, &mut pos, 4)? != MAGIC {
        return Err(CliError::storage("not an .lsic container (bad magic)"));
    }
    let version = take_u32(bytes, &mut pos)?;
    if version != VERSION_NO_CRC && version != VERSION {
        return Err(CliError::storage(format!(
            "unsupported container version {version}"
        )));
    }
    // Two string tables: the term dictionary, then the document ids. Each
    // string costs at least its 4-byte length prefix, so even a corrupt
    // count cannot loop past the end of the file.
    for _ in 0..2 {
        let count = take_u64(bytes, &mut pos)?;
        for _ in 0..count {
            let len = take_u32(bytes, &mut pos)?;
            if len > MAX_STRING {
                return Err(CliError::storage(format!(
                    "corrupt container: string length {len}"
                )));
            }
            take(bytes, &mut pos, len as usize)?;
        }
    }
    let end = if version >= VERSION {
        // The whole-file CRC trailer is container framing, not snapshot.
        bytes
            .len()
            .checked_sub(4)
            .filter(|&end| end >= pos)
            .ok_or_else(|| CliError::storage("container truncated before its CRC trailer"))?
    } else {
        bytes.len()
    };
    Ok(pos..end)
}

impl Container {
    /// Serializes to a writer (version 2: CRC-32 trailer included).
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), CliError> {
        let mut cw = Crc32Writer::new(w);
        cw.write_all(MAGIC)?;
        cw.write_all(&VERSION.to_le_bytes())?;
        cw.write_all(&(self.dictionary.len() as u64).to_le_bytes())?;
        for (_, term) in self.dictionary.iter() {
            write_string(&mut cw, term)?;
        }
        cw.write_all(&(self.doc_ids.len() as u64).to_le_bytes())?;
        for id in &self.doc_ids {
            write_string(&mut cw, id)?;
        }
        lsi_core::write_index(&mut cw, &self.index)?;
        let crc = cw.crc();
        w.write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from a reader, validating the CRC-32 trailer (version
    /// ≥ 2) and the consistency between the dictionary/doc ids and the
    /// embedded index dimensions. Legacy version-1 containers (no
    /// trailer) are still accepted.
    pub fn read<R: Read>(r: &mut R) -> Result<Self, CliError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CliError::storage("not an .lsic container (bad magic)"));
        }
        let mut vbuf = [0u8; 4];
        r.read_exact(&mut vbuf)?;
        let version = u32::from_le_bytes(vbuf);
        match version {
            VERSION_NO_CRC => Self::read_body(r),
            VERSION => {
                let mut cr = Crc32Reader::new(r);
                cr.absorb(MAGIC);
                cr.absorb(&version.to_le_bytes());
                let container = Self::read_body(&mut cr)?;
                let computed = cr.crc();
                let mut trailer = [0u8; 4];
                cr.inner().read_exact(&mut trailer)?;
                let stored = u32::from_le_bytes(trailer);
                if stored != computed {
                    return Err(CliError::storage(format!(
                        "container checksum mismatch: file says {stored:#010x}, \
                         contents hash to {computed:#010x}"
                    )));
                }
                Ok(container)
            }
            other => Err(CliError::storage(format!(
                "unsupported container version {other}"
            ))),
        }
    }

    /// Reads everything after the magic/version header.
    fn read_body<R: Read>(r: &mut R) -> Result<Self, CliError> {
        let mut cbuf = [0u8; 8];
        r.read_exact(&mut cbuf)?;
        let n_terms = u64::from_le_bytes(cbuf) as usize;
        let mut dictionary = Dictionary::new();
        for _ in 0..n_terms {
            let term = read_string(r)?;
            dictionary.intern(&term);
        }
        r.read_exact(&mut cbuf)?;
        let n_docs = u64::from_le_bytes(cbuf) as usize;
        let mut doc_ids = Vec::with_capacity(n_docs.min(1 << 20));
        for _ in 0..n_docs {
            doc_ids.push(read_string(r)?);
        }

        let index = lsi_core::read_index(r)?;
        if index.n_terms() != dictionary.len() || index.n_docs() != doc_ids.len() {
            return Err(CliError::storage(format!(
                "container inconsistent: dictionary {} / docs {} vs index {}x{}",
                dictionary.len(),
                doc_ids.len(),
                index.n_terms(),
                index.n_docs()
            )));
        }
        Ok(Container {
            dictionary,
            doc_ids,
            index,
        })
    }

    /// Writes to a file path, atomically *and durably*: the container is
    /// written to a temporary sibling file, fsynced, renamed into place,
    /// and the parent directory is synced so the rename itself survives a
    /// crash. A crash mid-write therefore never destroys an existing
    /// index, and a completed save is never silently rolled back.
    pub fn save(&self, path: &Path) -> Result<(), CliError> {
        let tmp = path.with_extension("lsic.tmp");
        {
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&tmp)
                    .map_err(|e| CliError::io(format!("cannot create {}: {e}", tmp.display())))?,
            );
            self.write(&mut f)?;
            use std::io::Write as _;
            f.flush()?;
            f.get_ref().sync_all().map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                CliError::io(format!("cannot sync {}: {e}", tmp.display()))
            })?;
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CliError::io(format!("cannot replace {}: {e}", path.display()))
        })?;
        lsi_core::sync_parent_dir(path)
            .map_err(|e| CliError::io(format!("cannot sync parent of {}: {e}", path.display())))
    }

    /// Reads from a file path.
    pub fn load(path: &Path) -> Result<Self, CliError> {
        let mut f = std::io::BufReader::new(
            std::fs::File::open(path)
                .map_err(|e| CliError::io(format!("cannot open {}: {e}", path.display())))?,
        );
        Self::read(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiConfig;
    use lsi_ir::text::{TextDocument, Tokenizer};
    use lsi_ir::TermDocumentMatrix;

    fn sample() -> Container {
        let docs = vec![
            TextDocument::new("a", "the car engine roared"),
            TextDocument::new("b", "an automobile engine hums"),
            TextDocument::new("c", "stars in the galaxy"),
        ];
        let mut dictionary = Dictionary::new();
        let td =
            TermDocumentMatrix::from_text(&docs, &Tokenizer::default(), &mut dictionary).unwrap();
        let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        Container {
            dictionary,
            doc_ids: docs.iter().map(|d| d.id.clone()).collect(),
            index,
        }
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        let loaded = Container::read(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.doc_ids, c.doc_ids);
        assert_eq!(loaded.dictionary.len(), c.dictionary.len());
        assert_eq!(loaded.dictionary.id("engine"), c.dictionary.id("engine"));
        assert_eq!(loaded.index.singular_values(), c.index.singular_values());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(Container::read(&mut bad.as_slice()).is_err());
        for cut in [2usize, 9, buf.len() / 3, buf.len() - 2] {
            assert!(
                Container::read(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn rejects_bit_flip_via_checksum() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        // Corrupt the stored doc id "a" -> "b": the file still parses
        // structurally, so only the container trailer can catch it.
        let pat = [1u8, 0, 0, 0, b'a'];
        let pos = buf
            .windows(pat.len())
            .position(|w| w == pat)
            .expect("doc id 'a' in container bytes");
        buf[pos + 4] = b'b';
        let err = match Container::read(&mut buf.as_slice()) {
            Ok(_) => panic!("corrupted container was accepted"),
            Err(e) => e,
        };
        assert_eq!(err.kind, crate::ErrorKind::Storage);
        assert!(err.message.contains("checksum"), "{err}");
    }

    #[test]
    fn reads_legacy_version_1_containers() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        // Rewrite as v1: patch the version field, drop the trailer.
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        buf.truncate(buf.len() - 4);
        let loaded = Container::read(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.doc_ids, c.doc_ids);
        assert_eq!(loaded.index.singular_values(), c.index.singular_values());
    }

    #[test]
    fn file_round_trip() {
        let c = sample();
        let path = std::env::temp_dir().join(format!("lsi_container_{}.lsic", std::process::id()));
        c.save(&path).unwrap();
        let loaded = Container::load(&path).unwrap();
        assert_eq!(loaded.doc_ids, c.doc_ids);
        std::fs::remove_file(&path).ok();
    }
}
