//! The `.lsic` container: dictionary + document ids + spectral factors.
//!
//! ```text
//! magic "LSIC" | version u32 |
//! n_terms u64 | term strings (u32 length + UTF-8 bytes) … |
//! n_docs  u64 | doc-id strings … |
//! embedded LSIX payload (lsi_core::storage)
//! ```

use std::io::{Read, Write};
use std::path::Path;

use lsi_core::LsiIndex;
use lsi_ir::Dictionary;

use crate::CliError;

const MAGIC: &[u8; 4] = b"LSIC";
const VERSION: u32 = 1;
/// Upper bound on a single stored string; rejects absurd headers early.
const MAX_STRING: u32 = 1 << 20;

/// Everything the CLI needs to serve queries.
pub struct Container {
    /// Term ↔ id mapping used at indexing time.
    pub dictionary: Dictionary,
    /// External document ids, in column order.
    pub doc_ids: Vec<String>,
    /// The spectral index.
    pub index: LsiIndex,
}

fn write_string<W: Write>(w: &mut W, s: &str) -> Result<(), CliError> {
    let bytes = s.as_bytes();
    if bytes.len() as u64 > MAX_STRING as u64 {
        return Err(CliError(format!("string too long ({} bytes)", bytes.len())));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    Ok(())
}

fn read_string<R: Read>(r: &mut R) -> Result<String, CliError> {
    let mut lenbuf = [0u8; 4];
    r.read_exact(&mut lenbuf)?;
    let len = u32::from_le_bytes(lenbuf);
    if len > MAX_STRING {
        return Err(CliError(format!("corrupt container: string length {len}")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| CliError("corrupt container: invalid UTF-8".into()))
}

impl Container {
    /// Serializes to a writer.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), CliError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.dictionary.len() as u64).to_le_bytes())?;
        for (_, term) in self.dictionary.iter() {
            write_string(w, term)?;
        }
        w.write_all(&(self.doc_ids.len() as u64).to_le_bytes())?;
        for id in &self.doc_ids {
            write_string(w, id)?;
        }
        lsi_core::write_index(w, &self.index)?;
        Ok(())
    }

    /// Deserializes from a reader, validating consistency between the
    /// dictionary/doc ids and the embedded index dimensions.
    pub fn read<R: Read>(r: &mut R) -> Result<Self, CliError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CliError("not an .lsic container (bad magic)".into()));
        }
        let mut vbuf = [0u8; 4];
        r.read_exact(&mut vbuf)?;
        let version = u32::from_le_bytes(vbuf);
        if version != VERSION {
            return Err(CliError(format!("unsupported container version {version}")));
        }

        let mut cbuf = [0u8; 8];
        r.read_exact(&mut cbuf)?;
        let n_terms = u64::from_le_bytes(cbuf) as usize;
        let mut dictionary = Dictionary::new();
        for _ in 0..n_terms {
            let term = read_string(r)?;
            dictionary.intern(&term);
        }
        r.read_exact(&mut cbuf)?;
        let n_docs = u64::from_le_bytes(cbuf) as usize;
        let mut doc_ids = Vec::with_capacity(n_docs.min(1 << 20));
        for _ in 0..n_docs {
            doc_ids.push(read_string(r)?);
        }

        let index = lsi_core::read_index(r)?;
        if index.n_terms() != dictionary.len() || index.n_docs() != doc_ids.len() {
            return Err(CliError(format!(
                "container inconsistent: dictionary {} / docs {} vs index {}x{}",
                dictionary.len(),
                doc_ids.len(),
                index.n_terms(),
                index.n_docs()
            )));
        }
        Ok(Container {
            dictionary,
            doc_ids,
            index,
        })
    }

    /// Writes to a file path, atomically: the container is written to a
    /// temporary sibling file and renamed into place, so a crash mid-write
    /// never destroys an existing index.
    pub fn save(&self, path: &Path) -> Result<(), CliError> {
        let tmp = path.with_extension("lsic.tmp");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(|e| {
                CliError(format!("cannot create {}: {e}", tmp.display()))
            })?);
            self.write(&mut f)?;
            use std::io::Write as _;
            f.flush()?;
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CliError(format!("cannot replace {}: {e}", path.display()))
        })
    }

    /// Reads from a file path.
    pub fn load(path: &Path) -> Result<Self, CliError> {
        let mut f = std::io::BufReader::new(
            std::fs::File::open(path)
                .map_err(|e| CliError(format!("cannot open {}: {e}", path.display())))?,
        );
        Self::read(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiConfig;
    use lsi_ir::text::{TextDocument, Tokenizer};
    use lsi_ir::TermDocumentMatrix;

    fn sample() -> Container {
        let docs = vec![
            TextDocument::new("a", "the car engine roared"),
            TextDocument::new("b", "an automobile engine hums"),
            TextDocument::new("c", "stars in the galaxy"),
        ];
        let mut dictionary = Dictionary::new();
        let td =
            TermDocumentMatrix::from_text(&docs, &Tokenizer::default(), &mut dictionary).unwrap();
        let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        Container {
            dictionary,
            doc_ids: docs.iter().map(|d| d.id.clone()).collect(),
            index,
        }
    }

    #[test]
    fn round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        let loaded = Container::read(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.doc_ids, c.doc_ids);
        assert_eq!(loaded.dictionary.len(), c.dictionary.len());
        assert_eq!(loaded.dictionary.id("engine"), c.dictionary.id("engine"));
        assert_eq!(loaded.index.singular_values(), c.index.singular_values());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let c = sample();
        let mut buf = Vec::new();
        c.write(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(Container::read(&mut bad.as_slice()).is_err());
        for cut in [2usize, 9, buf.len() / 3, buf.len() - 2] {
            assert!(
                Container::read(&mut buf[..cut].to_vec().as_slice()).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let c = sample();
        let path = std::env::temp_dir().join(format!("lsi_container_{}.lsic", std::process::id()));
        c.save(&path).unwrap();
        let loaded = Container::load(&path).unwrap();
        assert_eq!(loaded.doc_ids, c.doc_ids);
        std::fs::remove_file(&path).ok();
    }
}
