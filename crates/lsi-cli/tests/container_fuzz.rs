//! Corruption fuzz sweep over the `.lsic` container format.
//!
//! Companion to the repo-level `corruption_fuzz` suite (which sweeps
//! `.lsix` snapshots and `.lsij` journals): every single-byte corruption
//! of a container must surface as a typed [`CliError`] with the
//! `Storage`/`Io` kind — never a panic, never a silently wrong
//! container.

use lsi_cli::container::Container;
use lsi_cli::{CliError, ErrorKind};
use lsi_core::{LsiConfig, LsiIndex};
use lsi_ir::text::{TextDocument, Tokenizer};
use lsi_ir::{Dictionary, TermDocumentMatrix};

fn sample() -> Container {
    let docs = vec![
        TextDocument::new("a", "the car engine roared"),
        TextDocument::new("b", "an automobile engine hums"),
        TextDocument::new("c", "stars in the galaxy"),
    ];
    let mut dictionary = Dictionary::new();
    let td = TermDocumentMatrix::from_text(&docs, &Tokenizer::default(), &mut dictionary)
        .expect("build matrix");
    let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).expect("build index");
    Container {
        dictionary,
        doc_ids: docs.iter().map(|d| d.id.clone()).collect(),
        index,
    }
}

fn assert_contained(err: CliError, offset: usize, mask: u8) {
    assert!(
        matches!(err.kind, ErrorKind::Storage | ErrorKind::Io),
        "flip {mask:#04x} at offset {offset}: unexpected error kind {:?}",
        err.kind
    );
}

/// Flipping any byte of a serialized container — any offset, masks for
/// gross damage (`0xFF`) and single-bit rot (`0x01`) — must come back as
/// a typed storage/io error. The outer version field (offsets 4..8) is
/// excluded: rewriting version 2 as version 1 selects the documented
/// legacy read path (v1 containers had no CRC trailer and are accepted
/// by design), so a flip there is a format downgrade, not corruption.
/// The embedded LSIX's own version field needs no exclusion — a
/// downgrade there still fails the *container* trailer, which covers
/// every preceding byte.
#[test]
fn every_container_byte_flip_is_a_typed_error() {
    let container = sample();
    let mut clean = Vec::new();
    container.write(&mut clean).expect("serialize");

    for offset in 0..clean.len() {
        if (4..8).contains(&offset) {
            continue; // outer version field: see doc comment above
        }
        for mask in [0xFFu8, 0x01] {
            let mut dirty = clean.clone();
            dirty[offset] ^= mask;
            match Container::read(&mut dirty.as_slice()) {
                Err(e) => assert_contained(e, offset, mask),
                Ok(_) => panic!("flip {mask:#04x} at offset {offset} was silently accepted"),
            }
        }
    }
}

/// Truncation at every length is equally contained: a container cut off
/// at any byte boundary is a typed error, and the empty file is too.
#[test]
fn every_container_truncation_is_a_typed_error() {
    let container = sample();
    let mut clean = Vec::new();
    container.write(&mut clean).expect("serialize");

    for cut in 0..clean.len() {
        match Container::read(&mut clean[..cut].to_vec().as_slice()) {
            Err(e) => assert_contained(e, cut, 0),
            Ok(_) => panic!("truncation at {cut} was silently accepted"),
        }
    }
}
