//! Property-based tests for the corpus model.

use proptest::prelude::*;
use rand::SeedableRng;

use lsi_corpus::{
    CorpusModel, DiscreteDistribution, DocumentLaw, LengthLaw, SeparableConfig, SeparableModel,
    Style, Topic,
};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Alias-table construction preserves and normalizes the weights.
    #[test]
    fn distribution_normalizes(weights in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-9);
        let d = DiscreteDistribution::new(&weights).expect("valid weights");
        let sum: f64 = d.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!((d.prob(i) - w / total).abs() < 1e-9);
        }
    }

    /// Samples always land inside the support, never on zero-weight items.
    #[test]
    fn samples_respect_support(
        weights in proptest::collection::vec(0.0f64..10.0, 2..20),
        seed in proptest::num::u64::ANY,
    ) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-9);
        let d = DiscreteDistribution::new(&weights).expect("valid");
        let mut r = rng(seed);
        for _ in 0..200 {
            let s = d.sample(&mut r);
            prop_assert!(s < weights.len());
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {s}");
        }
    }

    /// Mixture probabilities are the convex combination of the components.
    #[test]
    fn mixture_is_convex_combination(
        w_a in proptest::collection::vec(0.01f64..5.0, 4),
        w_b in proptest::collection::vec(0.01f64..5.0, 4),
        lambda in 0.01f64..0.99,
    ) {
        let a = DiscreteDistribution::new(&w_a).expect("valid");
        let b = DiscreteDistribution::new(&w_b).expect("valid");
        let m = DiscreteDistribution::mixture(&[(&a, lambda), (&b, 1.0 - lambda)])
            .expect("same support");
        for i in 0..4 {
            let expect = lambda * a.prob(i) + (1.0 - lambda) * b.prob(i);
            prop_assert!((m.prob(i) - expect).abs() < 1e-9);
        }
    }

    /// Topic mass on its primary set is exactly 1 − ε(1 − s/n).
    #[test]
    fn concentrated_topic_mass(
        universe in 20usize..200,
        primary_len in 2usize..10,
        eps in 0.0f64..0.5,
    ) {
        prop_assume!(primary_len < universe);
        let primary: Vec<usize> = (0..primary_len).collect();
        let t = Topic::concentrated("t", universe, &primary, 1.0 - eps).expect("valid");
        let mass = t.mass_on(&primary);
        let expect = (1.0 - eps) + eps * primary_len as f64 / universe as f64;
        prop_assert!((mass - expect).abs() < 1e-9, "mass {mass}, expect {expect}");
    }

    /// Styles preserve probability mass on any distribution.
    #[test]
    fn style_preserves_mass(
        p in 0.0f64..1.0,
        src in 0usize..5,
        dst in 0usize..5,
        weights in proptest::collection::vec(0.01f64..3.0, 5),
    ) {
        let style = Style::substitutions("s", 5, &[(src, dst, p)]).expect("valid");
        let total: f64 = weights.iter().sum();
        let dist: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let out = style.apply_to_distribution(&dist);
        let out_sum: f64 = out.iter().sum();
        prop_assert!((out_sum - 1.0).abs() < 1e-9);
        prop_assert!(out.iter().all(|&x| x >= -1e-12));
    }

    /// Sampled corpora are structurally valid for any separable config.
    #[test]
    fn separable_corpus_structure(
        topics in 2usize..5,
        terms in 5usize..15,
        eps in 0.0f64..0.4,
        m in 5usize..30,
        seed in proptest::num::u64::ANY,
    ) {
        let config = SeparableConfig {
            universe_size: topics * terms,
            num_topics: topics,
            primary_terms_per_topic: terms,
            epsilon: eps,
            min_doc_len: 10,
            max_doc_len: 30,
        };
        let model = SeparableModel::build(config).expect("valid config");
        prop_assert!(model.measured_epsilon() <= eps + 1e-12);
        let corpus = model.model().sample_corpus(m, &mut rng(seed));
        prop_assert_eq!(corpus.len(), m);
        let trips = corpus.to_triplets();
        let total_from_trips: f64 = trips.iter().map(|&(_, _, v)| v).sum();
        let total_from_docs: usize = corpus.documents().iter().map(|d| d.len()).sum();
        prop_assert!((total_from_trips - total_from_docs as f64).abs() < 1e-9);
    }

    /// The corpus model's sampling respects the length law exactly.
    #[test]
    fn length_law_respected(
        min in 1usize..20,
        extra in 0usize..20,
        seed in proptest::num::u64::ANY,
    ) {
        let t = Topic::uniform("t", 10).expect("valid");
        let model = CorpusModel::new(
            10,
            vec![t],
            vec![],
            DocumentLaw {
                topics_per_doc: 1,
                style_mode: lsi_corpus::model::StyleMode::Identity,
                length: LengthLaw::Uniform { min, max: min + extra },
            },
        )
        .expect("valid");
        let mut r = rng(seed);
        for _ in 0..20 {
            let d = model.sample_document(&mut r);
            prop_assert!(d.len() >= min && d.len() <= min + extra);
        }
    }
}
