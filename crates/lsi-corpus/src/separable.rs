//! Pure, ε-separable corpus models (Section 4).
//!
//! A model is **ε-separable** when each topic `T` has an associated primary
//! term set `U_T`, the `U_T` are mutually disjoint, and `T` puts at least
//! `1 − ε` of its mass on `U_T`. Theorems 2 and 3 show rank-k LSI is
//! `O(ε)`-skewed on corpora drawn from such models; the builder here
//! constructs them, including the paper's exact experimental configuration.

use crate::model::{CorpusError, CorpusModel, DocumentLaw};
use crate::topic::Topic;

/// Parameters of a pure ε-separable model with equal-sized disjoint primary
/// sets and the "uniform leakage" topic shape used in the paper's
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparableConfig {
    /// Total number of terms `n`.
    pub universe_size: usize,
    /// Number of topics `k`.
    pub num_topics: usize,
    /// Size of each topic's primary term set.
    pub primary_terms_per_topic: usize,
    /// Leakage ε: each topic puts `1 − ε` of its mass uniformly on its
    /// primary set and `ε` uniformly on the whole universe.
    pub epsilon: f64,
    /// Minimum document length.
    pub min_doc_len: usize,
    /// Maximum document length.
    pub max_doc_len: usize,
}

impl SeparableConfig {
    /// The exact configuration of the experiment in Section 4 of the paper:
    /// 2000 terms, 20 topics with disjoint 100-term primary sets, 0.95/0.05
    /// mass split (0.05-separable), documents of 50–100 terms.
    pub fn paper_experiment() -> Self {
        SeparableConfig {
            universe_size: 2000,
            num_topics: 20,
            primary_terms_per_topic: 100,
            epsilon: 0.05,
            min_doc_len: 50,
            max_doc_len: 100,
        }
    }

    /// A smaller configuration with the same proportions, convenient for
    /// unit tests and quick examples.
    pub fn small(num_topics: usize, epsilon: f64) -> Self {
        SeparableConfig {
            universe_size: num_topics * 20,
            num_topics,
            primary_terms_per_topic: 20,
            epsilon,
            min_doc_len: 30,
            max_doc_len: 60,
        }
    }
}

/// A built ε-separable model together with its ground-truth primary sets.
///
/// # Examples
///
/// ```
/// use lsi_corpus::{SeparableConfig, SeparableModel};
/// use rand::SeedableRng;
///
/// let model = SeparableModel::build(SeparableConfig::small(3, 0.05)).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let corpus = model.model().sample_corpus(10, &mut rng);
/// assert_eq!(corpus.len(), 10);
/// // Pure models label every document with its generating topic.
/// assert!(corpus.documents().iter().all(|d| d.topic().is_some()));
/// ```
#[derive(Debug, Clone)]
pub struct SeparableModel {
    config: SeparableConfig,
    model: CorpusModel,
    primary_sets: Vec<Vec<usize>>,
}

impl SeparableModel {
    /// Builds the model, assigning topic `i` the primary set
    /// `[i·s, (i+1)·s)` for `s = primary_terms_per_topic`.
    pub fn build(config: SeparableConfig) -> Result<Self, CorpusError> {
        let SeparableConfig {
            universe_size,
            num_topics,
            primary_terms_per_topic,
            epsilon,
            min_doc_len,
            max_doc_len,
        } = config;
        if num_topics == 0 || primary_terms_per_topic == 0 {
            return Err(CorpusError::InvalidConfig(
                "num_topics and primary_terms_per_topic must be >= 1".to_owned(),
            ));
        }
        if num_topics * primary_terms_per_topic > universe_size {
            return Err(CorpusError::InvalidConfig(format!(
                "{num_topics} topics x {primary_terms_per_topic} primary terms exceed the \
                 {universe_size}-term universe"
            )));
        }
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(CorpusError::InvalidConfig(format!(
                "epsilon {epsilon} outside [0, 1]"
            )));
        }

        let mut topics = Vec::with_capacity(num_topics);
        let mut primary_sets = Vec::with_capacity(num_topics);
        for i in 0..num_topics {
            let lo = i * primary_terms_per_topic;
            let primary: Vec<usize> = (lo..lo + primary_terms_per_topic).collect();
            let topic =
                Topic::concentrated(format!("topic-{i}"), universe_size, &primary, 1.0 - epsilon)
                    // lsi-lint: allow(E1-panic-policy, "invariant: build() already validated the topic parameters")
                    .expect("validated parameters construct a topic");
            topics.push(topic);
            primary_sets.push(primary);
        }

        let model = CorpusModel::new(
            universe_size,
            topics,
            Vec::new(),
            DocumentLaw::pure_uniform(min_doc_len, max_doc_len),
        )?;

        Ok(SeparableModel {
            config,
            model,
            primary_sets,
        })
    }

    /// The underlying corpus model (pure, style-free).
    pub fn model(&self) -> &CorpusModel {
        &self.model
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &SeparableConfig {
        &self.config
    }

    /// Topic `i`'s primary term set `U_{T_i}`.
    pub fn primary_set(&self, topic: usize) -> &[usize] {
        &self.primary_sets[topic]
    }

    /// All primary sets.
    pub fn primary_sets(&self) -> &[Vec<usize>] {
        &self.primary_sets
    }

    /// The measured separability: the largest probability mass any topic
    /// places **outside** its own primary set. For the uniform-leakage
    /// shape this is `ε · (1 − s/n) ≤ ε`.
    pub fn measured_epsilon(&self) -> f64 {
        self.model
            .topics()
            .iter()
            .zip(&self.primary_sets)
            .map(|(t, p)| 1.0 - t.mass_on(p))
            .fold(0.0, f64::max)
    }

    /// Ground-truth topic of a term: the topic whose primary set contains
    /// it, or `None` for terms in no primary set.
    pub fn topic_of_term(&self, term: usize) -> Option<usize> {
        let s = self.config.primary_terms_per_topic;
        let candidate = term / s;
        (candidate < self.config.num_topics).then_some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_config_values() {
        let c = SeparableConfig::paper_experiment();
        assert_eq!(c.universe_size, 2000);
        assert_eq!(c.num_topics, 20);
        assert_eq!(c.primary_terms_per_topic, 100);
        assert!((c.epsilon - 0.05).abs() < 1e-15);
        let m = SeparableModel::build(c).unwrap();
        // Measured ε = 0.05 · (1 − 100/2000) = 0.0475.
        assert!((m.measured_epsilon() - 0.0475).abs() < 1e-12);
        assert!(m.model().is_pure());
        assert!(m.model().is_style_free());
    }

    #[test]
    fn primary_sets_are_disjoint_blocks() {
        let m = SeparableModel::build(SeparableConfig::small(4, 0.1)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for set in m.primary_sets() {
            for &t in set {
                assert!(seen.insert(t), "term {t} in two primary sets");
            }
        }
        assert_eq!(m.topic_of_term(0), Some(0));
        assert_eq!(m.topic_of_term(25), Some(1));
        assert_eq!(m.topic_of_term(79), Some(3));
    }

    #[test]
    fn zero_epsilon_keeps_all_mass_primary() {
        let m = SeparableModel::build(SeparableConfig::small(3, 0.0)).unwrap();
        assert_eq!(m.measured_epsilon(), 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let corpus = m.model().sample_corpus(30, &mut rng);
        for doc in corpus.documents() {
            let topic = doc.topic().unwrap();
            let primary = m.primary_set(topic);
            for &(t, _) in doc.counts() {
                assert!(primary.contains(&t));
            }
        }
    }

    #[test]
    fn build_rejects_bad_configs() {
        let mut c = SeparableConfig::small(2, 0.1);
        c.num_topics = 0;
        assert!(SeparableModel::build(c).is_err());
        let mut c = SeparableConfig::small(2, 0.1);
        c.epsilon = 1.5;
        assert!(SeparableModel::build(c).is_err());
        let mut c = SeparableConfig::small(2, 0.1);
        c.primary_terms_per_topic = 1000; // exceeds universe
        assert!(SeparableModel::build(c).is_err());
    }

    #[test]
    fn sampled_corpus_respects_epsilon_statistically() {
        let m = SeparableModel::build(SeparableConfig::small(3, 0.2)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let corpus = m.model().sample_corpus(200, &mut rng);
        let mut off_primary = 0usize;
        let mut total = 0usize;
        for doc in corpus.documents() {
            let primary = m.primary_set(doc.topic().unwrap());
            for &(t, c) in doc.counts() {
                total += c as usize;
                if !primary.contains(&t) {
                    off_primary += c as usize;
                }
            }
        }
        let frac = off_primary as f64 / total as f64;
        // Expected ≈ measured ε ≈ 0.2·(1 − 20/60) ≈ 0.133.
        assert!((frac - m.measured_epsilon()).abs() < 0.02, "{frac}");
    }
}
