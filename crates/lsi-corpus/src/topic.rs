//! Topics: probability distributions on the term universe (Definition 2).

use crate::distribution::DiscreteDistribution;

/// A topic — a probability distribution over the universe of terms.
///
/// "A meaningful topic is very different from the uniform distribution on U
/// and is concentrated on terms that might be used to talk about a
/// particular subject" (§3). Nothing here *enforces* meaningfulness; the
/// ε-separable builders in [`crate::separable`] construct topics with the
/// concentration properties Section 4's theorems require.
#[derive(Debug, Clone)]
pub struct Topic {
    name: String,
    dist: DiscreteDistribution,
}

impl Topic {
    /// Builds a topic from term weights over a universe of `weights.len()`
    /// terms. Returns `None` for empty/invalid/zero-sum weights.
    pub fn from_weights(name: impl Into<String>, weights: &[f64]) -> Option<Self> {
        Some(Topic {
            name: name.into(),
            dist: DiscreteDistribution::new(weights)?,
        })
    }

    /// A topic spreading `concentration` of its mass uniformly over
    /// `primary` terms and the remaining `1 − concentration` uniformly over
    /// the whole universe — exactly the topic shape of the paper's Section 4
    /// experiment (there: 0.95 on a 100-term primary set out of 2000 terms).
    ///
    /// Returns `None` if `primary` is empty, contains out-of-range ids, or
    /// `concentration ∉ [0, 1]`.
    pub fn concentrated(
        name: impl Into<String>,
        universe_size: usize,
        primary: &[usize],
        concentration: f64,
    ) -> Option<Self> {
        if primary.is_empty() || !(0.0..=1.0).contains(&concentration) {
            return None;
        }
        if primary.iter().any(|&t| t >= universe_size) {
            return None;
        }
        let mut weights = vec![(1.0 - concentration) / universe_size as f64; universe_size];
        let bump = concentration / primary.len() as f64;
        for &t in primary {
            weights[t] += bump;
        }
        Self::from_weights(name, &weights)
    }

    /// The uniform "noise" topic.
    pub fn uniform(name: impl Into<String>, universe_size: usize) -> Option<Self> {
        Some(Topic {
            name: name.into(),
            dist: DiscreteDistribution::uniform(universe_size)?,
        })
    }

    /// Topic label (for reports and examples).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Universe size this topic is defined over.
    pub fn universe_size(&self) -> usize {
        self.dist.len()
    }

    /// Probability this topic assigns to `term`.
    pub fn prob(&self, term: usize) -> f64 {
        self.dist.prob(term)
    }

    /// The underlying distribution.
    pub fn distribution(&self) -> &DiscreteDistribution {
        &self.dist
    }

    /// The largest probability the topic assigns to any single term — the
    /// paper's `τ` parameter (Theorems 2–3 need it "sufficiently small").
    pub fn max_term_probability(&self) -> f64 {
        self.dist
            .probabilities()
            .iter()
            .fold(0.0, |acc, &p| acc.max(p))
    }

    /// Total probability mass on a term set (used to verify ε-separability).
    pub fn mass_on(&self, terms: &[usize]) -> f64 {
        terms.iter().map(|&t| self.dist.prob(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrated_matches_paper_shape() {
        // 0.95 on terms {0..99} of a 2000-term universe.
        let primary: Vec<usize> = (0..100).collect();
        let t = Topic::concentrated("space travel", 2000, &primary, 0.95).unwrap();
        // Primary term: 0.95/100 + 0.05/2000.
        let expect_primary = 0.95 / 100.0 + 0.05 / 2000.0;
        assert!((t.prob(0) - expect_primary).abs() < 1e-12);
        // Non-primary term: 0.05/2000.
        assert!((t.prob(1999) - 0.05 / 2000.0).abs() < 1e-12);
        // Mass on primary set is 1 − ε·(1 − |primary|/n) ≥ 1 − ε.
        assert!(t.mass_on(&primary) >= 0.95);
        assert!((t.max_term_probability() - expect_primary).abs() < 1e-12);
    }

    #[test]
    fn concentrated_validates_inputs() {
        assert!(Topic::concentrated("x", 10, &[], 0.9).is_none());
        assert!(Topic::concentrated("x", 10, &[10], 0.9).is_none());
        assert!(Topic::concentrated("x", 10, &[0], 1.5).is_none());
        assert!(Topic::concentrated("x", 10, &[0], -0.1).is_none());
    }

    #[test]
    fn zero_epsilon_is_exactly_separable() {
        let primary = [2, 3];
        let t = Topic::concentrated("t", 5, &primary, 1.0).unwrap();
        assert_eq!(t.prob(0), 0.0);
        assert!((t.prob(2) - 0.5).abs() < 1e-15);
        assert!((t.mass_on(&primary) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn uniform_topic() {
        let t = Topic::uniform("noise", 8).unwrap();
        assert!((t.prob(3) - 0.125).abs() < 1e-15);
        assert_eq!(t.universe_size(), 8);
        assert_eq!(t.name(), "noise");
    }

    #[test]
    fn from_weights_rejects_invalid() {
        assert!(Topic::from_weights("bad", &[]).is_none());
        assert!(Topic::from_weights("bad", &[0.0]).is_none());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let t = Topic::from_weights("t", &[1.0, 2.0, 3.0]).unwrap();
        let sum: f64 = (0..3).map(|i| t.prob(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
