#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The probabilistic corpus model of Papadimitriou, Raghavan, Tamaki &
//! Vempala (Section 3 of the paper).
//!
//! * A **universe** is a set of terms `0..n` ([`model::CorpusModel`] carries
//!   its size).
//! * A **topic** ([`Topic`]) is a probability distribution on the universe
//!   (Definition 2).
//! * A **style** ([`Style`]) is a row-stochastic matrix that rewrites term
//!   frequencies (Definition 3).
//! * A **corpus model** ([`CorpusModel`]) is the quadruple `(U, T, S, D)` of
//!   Definition 4: universe, topics, styles, and a distribution `D` over
//!   convex topic combinations × convex style combinations × document
//!   lengths.
//!
//! Documents are produced by the paper's two-step sampling process
//! ([`CorpusModel::sample_corpus`]): draw `(T̄, S̄, ℓ)` from `D`, then draw
//! `ℓ` terms i.i.d. from the styled mixture `T̄ S̄`.
//!
//! [`separable`] builds the pure, ε-separable models of Section 4 —
//! including the exact configuration of the paper's experiment (2000 terms,
//! 20 topics, 0.05-separable, 1000 documents of 50–100 terms).

pub mod distribution;
pub mod document;
pub mod model;
pub mod separable;
pub mod style;
pub mod topic;
pub mod vocab;

pub use distribution::DiscreteDistribution;
pub use document::{Document, GeneratedCorpus};
pub use model::{CorpusError, CorpusModel, DocumentLaw, DocumentSpec, LengthLaw};
pub use separable::{SeparableConfig, SeparableModel};
pub use style::Style;
pub use topic::Topic;
