//! Styles: row-stochastic term-rewriting matrices (Definition 3).
//!
//! "A 'formal' style may map 'car' often to 'automobile' and 'vehicle', and
//! seldom to 'car'" (§3). A style is a `|U| × |U|` stochastic matrix; since
//! realistic styles rewrite only a small subset of the vocabulary, the
//! representation here stores only the rows that differ from the identity.

use std::collections::BTreeMap;

/// A style: a sparse row-stochastic matrix over the term universe.
///
/// Row `t` is the distribution of terms that an occurrence of `t` is
/// rewritten to. Unlisted rows are identity rows (`t ↦ t` with probability
/// 1).
#[derive(Debug, Clone)]
pub struct Style {
    name: String,
    universe_size: usize,
    // BTreeMap, not HashMap: apply_to_distribution accumulates floats in
    // iteration order, which must not depend on a per-process hasher seed.
    overrides: BTreeMap<usize, Vec<(usize, f64)>>,
}

/// Problems detected while building a [`Style`].
#[derive(Debug, Clone, PartialEq)]
pub enum StyleError {
    /// A source or target term id is outside the universe.
    TermOutOfRange(usize),
    /// A rewrite probability is negative or non-finite.
    InvalidProbability(f64),
    /// A row's probabilities do not sum to 1 (within 1e-9).
    RowNotStochastic {
        /// The offending source term.
        term: usize,
        /// The row's actual sum.
        sum: f64,
    },
    /// The same source term was given two rows — the second would silently
    /// replace the first, so this is rejected instead.
    DuplicateSource(usize),
}

impl std::fmt::Display for StyleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StyleError::TermOutOfRange(t) => write!(f, "term {t} out of range"),
            StyleError::InvalidProbability(p) => write!(f, "invalid probability {p}"),
            StyleError::RowNotStochastic { term, sum } => {
                write!(f, "row {term} sums to {sum}, expected 1")
            }
            StyleError::DuplicateSource(t) => {
                write!(f, "source term {t} given more than one rewrite row")
            }
        }
    }
}

impl std::error::Error for StyleError {}

impl Style {
    /// The identity style (no rewriting).
    pub fn identity(universe_size: usize) -> Self {
        Style {
            name: "identity".to_owned(),
            universe_size,
            overrides: BTreeMap::new(),
        }
    }

    /// Builds a style from explicit non-identity rows. Each row is a list of
    /// `(target_term, probability)` pairs that must sum to 1.
    pub fn from_rows(
        name: impl Into<String>,
        universe_size: usize,
        rows: &[(usize, Vec<(usize, f64)>)],
    ) -> Result<Self, StyleError> {
        let mut overrides = BTreeMap::new();
        for (src, row) in rows {
            if *src >= universe_size {
                return Err(StyleError::TermOutOfRange(*src));
            }
            let mut sum = 0.0;
            for &(dst, p) in row {
                if dst >= universe_size {
                    return Err(StyleError::TermOutOfRange(dst));
                }
                if !p.is_finite() || p < 0.0 {
                    return Err(StyleError::InvalidProbability(p));
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(StyleError::RowNotStochastic { term: *src, sum });
            }
            if overrides.insert(*src, row.clone()).is_some() {
                return Err(StyleError::DuplicateSource(*src));
            }
        }
        Ok(Style {
            name: name.into(),
            universe_size,
            overrides,
        })
    }

    /// Convenience: a style that rewrites `src → dst` with probability `p`
    /// (keeping `src` with probability `1 − p`) for each listed pair.
    /// This is the natural encoding of the paper's "formal style" example.
    pub fn substitutions(
        name: impl Into<String>,
        universe_size: usize,
        pairs: &[(usize, usize, f64)],
    ) -> Result<Self, StyleError> {
        let rows: Vec<(usize, Vec<(usize, f64)>)> = pairs
            .iter()
            .map(|&(src, dst, p)| (src, vec![(dst, p), (src, 1.0 - p)]))
            .collect();
        Self::from_rows(name, universe_size, &rows)
    }

    /// Style label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Universe size this style is defined over.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Number of non-identity rows.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// `S[t][·]` as an iterator of `(target, probability)`. Identity rows
    /// yield the single pair `(t, 1.0)`.
    pub fn row(&self, t: usize) -> Vec<(usize, f64)> {
        match self.overrides.get(&t) {
            Some(row) => row.clone(),
            None => vec![(t, 1.0)],
        }
    }

    /// Applies the style to a term distribution: returns `p S` (the
    /// distribution of the rewritten term when the original is drawn from
    /// `probs`). `probs.len()` must equal the universe size.
    pub fn apply_to_distribution(&self, probs: &[f64]) -> Vec<f64> {
        assert_eq!(
            probs.len(),
            self.universe_size,
            "apply_to_distribution: universe size mismatch"
        );
        let mut out = probs.to_vec();
        for (&src, row) in &self.overrides {
            let mass = probs[src];
            if mass == 0.0 {
                continue;
            }
            out[src] -= mass;
            for &(dst, p) in row {
                out[dst] += mass * p;
            }
        }
        out
    }

    /// Applies the style to a single sampled term, drawing the rewrite from
    /// row `t`.
    pub fn rewrite<R: rand::Rng + ?Sized>(&self, t: usize, rng: &mut R) -> usize {
        match self.overrides.get(&t) {
            None => t,
            Some(row) => {
                let mut u: f64 = rng.gen();
                for &(dst, p) in row {
                    if u < p {
                        return dst;
                    }
                    u -= p;
                }
                // Rounding slack: fall back to the last listed target.
                row.last().map_or(t, |&(dst, _)| dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identity_is_noop() {
        let s = Style::identity(4);
        let p = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(s.apply_to_distribution(&p), p);
        assert_eq!(s.override_count(), 0);
        assert_eq!(s.row(2), vec![(2, 1.0)]);
    }

    #[test]
    fn substitution_moves_mass() {
        // car(0) → automobile(1) with prob 0.8.
        let s = Style::substitutions("formal", 3, &[(0, 1, 0.8)]).unwrap();
        let p = vec![1.0, 0.0, 0.0];
        let q = s.apply_to_distribution(&p);
        assert!((q[0] - 0.2).abs() < 1e-12);
        assert!((q[1] - 0.8).abs() < 1e-12);
        assert_eq!(q[2], 0.0);
        // Still a distribution.
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_validates() {
        assert!(matches!(
            Style::from_rows("x", 2, &[(5, vec![(0, 1.0)])]),
            Err(StyleError::TermOutOfRange(5))
        ));
        assert!(matches!(
            Style::from_rows("x", 2, &[(0, vec![(3, 1.0)])]),
            Err(StyleError::TermOutOfRange(3))
        ));
        assert!(matches!(
            Style::from_rows("x", 2, &[(0, vec![(1, 0.4)])]),
            Err(StyleError::RowNotStochastic { .. })
        ));
        assert!(matches!(
            Style::from_rows("x", 2, &[(0, vec![(1, -1.0), (0, 2.0)])]),
            Err(StyleError::InvalidProbability(_))
        ));
        // Two rows for the same source term are rejected, not silently
        // merged-by-overwrite.
        assert!(matches!(
            Style::substitutions("x", 3, &[(0, 1, 0.5), (0, 2, 0.5)]),
            Err(StyleError::DuplicateSource(0))
        ));
    }

    #[test]
    fn rewrite_respects_probabilities() {
        let s = Style::substitutions("s", 2, &[(0, 1, 0.75)]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| s.rewrite(0, &mut rng) == 1).count();
        let f = hits as f64 / n as f64;
        assert!((f - 0.75).abs() < 0.01, "{f}");
        // Identity row untouched.
        assert_eq!(s.rewrite(1, &mut rng), 1);
    }

    #[test]
    fn apply_preserves_total_mass() {
        let s = Style::from_rows(
            "spread",
            4,
            &[(0, vec![(1, 0.5), (2, 0.3), (3, 0.2)]), (1, vec![(0, 1.0)])],
        )
        .unwrap();
        let p = vec![0.4, 0.3, 0.2, 0.1];
        let q = s.apply_to_distribution(&p);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Mass of term 1 after: from 0 (0.4·0.5) plus nothing stays (row 1 maps away).
        assert!((q[1] - 0.4 * 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "universe size mismatch")]
    fn apply_panics_on_wrong_length() {
        let s = Style::identity(3);
        s.apply_to_distribution(&[0.5, 0.5]);
    }
}
