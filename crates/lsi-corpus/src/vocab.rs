//! Human-readable vocabularies for examples and demos.
//!
//! The experiments only need term *ids*; the runnable examples are far more
//! legible with actual words. This module provides small themed vocabularies
//! (the paper's own motivating topics — space travel, cars, the Internet)
//! plus a deterministic synthetic word generator to pad a universe to any
//! requested size.

/// A themed seed vocabulary: `(theme name, words)`.
pub const THEMES: &[(&str, &[&str])] = &[
    (
        "space-travel",
        &[
            "galaxy",
            "starship",
            "orbit",
            "rocket",
            "astronaut",
            "launch",
            "module",
            "lunar",
            "probe",
            "thruster",
            "cosmos",
            "satellite",
            "mission",
            "capsule",
            "telescope",
            "nebula",
        ],
    ),
    (
        "automobiles",
        &[
            "car",
            "automobile",
            "vehicle",
            "engine",
            "wheel",
            "highway",
            "driver",
            "gasoline",
            "brake",
            "chassis",
            "transmission",
            "sedan",
            "mileage",
            "traffic",
            "garage",
            "tire",
        ],
    ),
    (
        "internet",
        &[
            "search",
            "browser",
            "website",
            "server",
            "network",
            "protocol",
            "download",
            "email",
            "hyperlink",
            "router",
            "bandwidth",
            "domain",
            "packet",
            "modem",
            "online",
            "webpage",
        ],
    ),
    (
        "finance",
        &[
            "market",
            "stock",
            "bond",
            "dividend",
            "portfolio",
            "interest",
            "equity",
            "broker",
            "asset",
            "liability",
            "futures",
            "hedge",
            "yield",
            "capital",
            "ledger",
            "audit",
        ],
    ),
];

/// Builds a vocabulary of exactly `size` distinct words: the themed seed
/// words first (as many themes as fit), then deterministic synthetic tokens
/// `term0042`-style. Deterministic: same size ⇒ same vocabulary.
pub fn build_vocabulary(size: usize) -> Vec<String> {
    let mut words: Vec<String> = Vec::with_capacity(size);
    'outer: for (_, theme_words) in THEMES {
        for w in *theme_words {
            if words.len() >= size {
                break 'outer;
            }
            words.push((*w).to_owned());
        }
    }
    let mut i = 0usize;
    while words.len() < size {
        words.push(format!("term{i:04}"));
        i += 1;
    }
    words
}

/// Renders a bag-of-terms document as text using a vocabulary (terms in
/// count order); for example output only.
pub fn render_document(counts: &[(usize, u32)], vocab: &[String]) -> String {
    let mut parts: Vec<String> = counts
        .iter()
        .map(|&(t, c)| {
            let word = vocab.get(t).map_or("<oov>", |s| s.as_str());
            if c > 1 {
                format!("{word}×{c}")
            } else {
                word.to_owned()
            }
        })
        .collect();
    parts.sort();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_exact_size() {
        for size in [0usize, 1, 10, 64, 100, 500] {
            let v = build_vocabulary(size);
            assert_eq!(v.len(), size);
        }
    }

    #[test]
    fn words_are_distinct() {
        let v = build_vocabulary(300);
        let set: std::collections::HashSet<&String> = v.iter().collect();
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(build_vocabulary(128), build_vocabulary(128));
    }

    #[test]
    fn themed_words_come_first() {
        let v = build_vocabulary(4);
        assert_eq!(v[0], "galaxy");
    }

    #[test]
    fn render_document_formats() {
        let vocab = build_vocabulary(20);
        let s = render_document(&[(0, 2), (1, 1)], &vocab);
        assert!(s.contains("galaxy×2"));
        assert!(s.contains("starship"));
        let oov = render_document(&[(999, 1)], &vocab);
        assert!(oov.contains("<oov>"));
    }
}
