//! The corpus model quadruple `C = (U, T, S, D)` and its two-step sampler
//! (Definition 4 and the sampling process of Section 3).

use rand::Rng;

use crate::distribution::DiscreteDistribution;
use crate::document::{Document, GeneratedCorpus};
use crate::style::Style;
use crate::topic::Topic;

/// Configuration errors for [`CorpusModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The model needs at least one topic.
    NoTopics,
    /// A topic is defined over a different universe size than the model.
    UniverseMismatch {
        /// Index of the offending topic or style.
        index: usize,
        /// Its universe size.
        found: usize,
        /// The model's universe size.
        expected: usize,
    },
    /// `topics_per_doc` must satisfy `1 ≤ topics_per_doc ≤ |T|`.
    BadTopicsPerDoc(usize),
    /// The length law is degenerate (zero or inverted range).
    BadLengthLaw,
    /// A non-identity style mode was requested but the model has no styles.
    NoStyles,
    /// A configuration constraint was violated (details in the message).
    InvalidConfig(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::NoTopics => write!(f, "corpus model needs at least one topic"),
            CorpusError::UniverseMismatch {
                index,
                found,
                expected,
            } => write!(
                f,
                "component {index} has universe size {found}, model expects {expected}"
            ),
            CorpusError::BadTopicsPerDoc(k) => write!(f, "invalid topics_per_doc {k}"),
            CorpusError::BadLengthLaw => write!(f, "invalid document length law"),
            CorpusError::NoStyles => {
                write!(f, "style mode requires at least one style in the model")
            }
            CorpusError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// Distribution of document lengths (the `Z+` component of `D`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthLaw {
    /// Every document has exactly this many term occurrences.
    Fixed(usize),
    /// Uniform over `min..=max` — the paper's experiment uses `Uniform
    /// { min: 50, max: 100 }`.
    Uniform {
        /// Minimum length (inclusive), ≥ 1.
        min: usize,
        /// Maximum length (inclusive).
        max: usize,
    },
}

impl LengthLaw {
    fn validate(&self) -> Result<(), CorpusError> {
        match *self {
            LengthLaw::Fixed(l) if l >= 1 => Ok(()),
            LengthLaw::Uniform { min, max } if min >= 1 && min <= max => Ok(()),
            _ => Err(CorpusError::BadLengthLaw),
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            LengthLaw::Fixed(l) => l,
            LengthLaw::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }
}

/// How styles enter the per-document draw (the `S̄` component of `D`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StyleMode {
    /// No rewriting (the "style-free" setting of Section 4's theorems).
    #[default]
    Identity,
    /// One style chosen uniformly per document.
    RandomSingle,
    /// A uniform convex combination of all styles per document.
    UniformMixture,
}

/// The distribution `D` over (topic combination, style combination, length).
#[derive(Debug, Clone)]
pub struct DocumentLaw {
    /// Number of topics mixed per document; `1` makes the model **pure**.
    pub topics_per_doc: usize,
    /// Style selection mode.
    pub style_mode: StyleMode,
    /// Document length distribution.
    pub length: LengthLaw,
}

impl DocumentLaw {
    /// The law of the paper's Section 4 experiments: pure documents,
    /// style-free, lengths uniform in `[min, max]`.
    pub fn pure_uniform(min_len: usize, max_len: usize) -> Self {
        DocumentLaw {
            topics_per_doc: 1,
            style_mode: StyleMode::Identity,
            length: LengthLaw::Uniform {
                min: min_len,
                max: max_len,
            },
        }
    }
}

/// One draw from `D`: the recipe for a single document.
#[derive(Debug, Clone)]
pub struct DocumentSpec {
    /// `(topic index, weight)` convex combination.
    pub topic_mixture: Vec<(usize, f64)>,
    /// `(style index, weight)` convex combination; empty = identity.
    pub style_mixture: Vec<(usize, f64)>,
    /// Number of term occurrences to draw.
    pub length: usize,
}

/// The corpus model `C = (U, T, S, D)`.
#[derive(Debug, Clone)]
pub struct CorpusModel {
    universe_size: usize,
    topics: Vec<Topic>,
    styles: Vec<Style>,
    law: DocumentLaw,
}

impl CorpusModel {
    /// Assembles a model, validating that all components share the universe.
    pub fn new(
        universe_size: usize,
        topics: Vec<Topic>,
        styles: Vec<Style>,
        law: DocumentLaw,
    ) -> Result<Self, CorpusError> {
        if topics.is_empty() {
            return Err(CorpusError::NoTopics);
        }
        for (i, t) in topics.iter().enumerate() {
            if t.universe_size() != universe_size {
                return Err(CorpusError::UniverseMismatch {
                    index: i,
                    found: t.universe_size(),
                    expected: universe_size,
                });
            }
        }
        for (i, s) in styles.iter().enumerate() {
            if s.universe_size() != universe_size {
                return Err(CorpusError::UniverseMismatch {
                    index: i,
                    found: s.universe_size(),
                    expected: universe_size,
                });
            }
        }
        if law.topics_per_doc == 0 || law.topics_per_doc > topics.len() {
            return Err(CorpusError::BadTopicsPerDoc(law.topics_per_doc));
        }
        if law.style_mode != StyleMode::Identity && styles.is_empty() {
            return Err(CorpusError::NoStyles);
        }
        law.length.validate()?;
        Ok(CorpusModel {
            universe_size,
            topics,
            styles,
            law,
        })
    }

    /// Size of the term universe `|U|`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The topic set `T`.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// The style set `S`.
    pub fn styles(&self) -> &[Style] {
        &self.styles
    }

    /// The document law `D`.
    pub fn law(&self) -> &DocumentLaw {
        &self.law
    }

    /// True when every document involves a single topic (Section 4's
    /// "pure" condition).
    pub fn is_pure(&self) -> bool {
        self.law.topics_per_doc == 1
    }

    /// True when no style rewriting happens ("style-free").
    pub fn is_style_free(&self) -> bool {
        self.law.style_mode == StyleMode::Identity
    }

    /// The paper's `τ`: the largest probability any topic assigns to any
    /// single term.
    pub fn max_term_probability(&self) -> f64 {
        self.topics
            .iter()
            .map(|t| t.max_term_probability())
            .fold(0.0, f64::max)
    }

    /// First step of the two-step process: draw `(T̄, S̄, ℓ)` from `D`.
    pub fn sample_spec<R: Rng + ?Sized>(&self, rng: &mut R) -> DocumentSpec {
        let k = self.topics.len();
        let j = self.law.topics_per_doc;
        // Choose j distinct topics uniformly (partial Fisher–Yates).
        let mut ids: Vec<usize> = (0..k).collect();
        for i in 0..j {
            let pick = rng.gen_range(i..k);
            ids.swap(i, pick);
        }
        let chosen = &ids[..j];
        // Random convex weights (uniform on the simplex via exponentials).
        let mut weights: Vec<f64> = if j == 1 {
            vec![1.0]
        } else {
            let raw: Vec<f64> = (0..j).map(|_| -rng.gen::<f64>().max(1e-12).ln()).collect();
            let sum: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / sum).collect()
        };
        let topic_mixture: Vec<(usize, f64)> =
            chosen.iter().copied().zip(weights.drain(..)).collect();

        let style_mixture = match self.law.style_mode {
            StyleMode::Identity => Vec::new(),
            StyleMode::RandomSingle => {
                vec![(rng.gen_range(0..self.styles.len()), 1.0)]
            }
            StyleMode::UniformMixture => {
                let s = self.styles.len();
                (0..s).map(|i| (i, 1.0 / s as f64)).collect()
            }
        };

        DocumentSpec {
            topic_mixture,
            style_mixture,
            length: self.law.length.sample(rng),
        }
    }

    /// Second step: draw `spec.length` terms from the styled mixture `T̄ S̄`.
    pub fn sample_document_from_spec<R: Rng + ?Sized>(
        &self,
        spec: &DocumentSpec,
        rng: &mut R,
    ) -> Document {
        // Build the mixture distribution T̄.
        let dist = if spec.topic_mixture.len() == 1 {
            self.topics[spec.topic_mixture[0].0].distribution().clone()
        } else {
            let comps: Vec<(&DiscreteDistribution, f64)> = spec
                .topic_mixture
                .iter()
                .map(|&(i, w)| (self.topics[i].distribution(), w))
                .collect();
            DiscreteDistribution::mixture(&comps)
                // lsi-lint: allow(E1-panic-policy, "invariant: all topics of one model share the universe by construction")
                .expect("topic mixture over a common universe is valid")
        };

        let topic_label = if spec.topic_mixture.len() == 1 {
            Some(spec.topic_mixture[0].0)
        } else {
            None
        };

        let mut occurrences = Vec::with_capacity(spec.length);
        for _ in 0..spec.length {
            let mut t = dist.sample(rng);
            if !spec.style_mixture.is_empty() {
                // Draw which style applies to this occurrence (sampling the
                // convex combination S̄), then rewrite through it.
                let style_idx = pick_weighted(&spec.style_mixture, rng);
                t = self.styles[style_idx].rewrite(t, rng);
            }
            occurrences.push(t);
        }
        Document::from_occurrences(&occurrences, topic_label)
    }

    /// Samples one document (both steps).
    pub fn sample_document<R: Rng + ?Sized>(&self, rng: &mut R) -> Document {
        let spec = self.sample_spec(rng);
        self.sample_document_from_spec(&spec, rng)
    }

    /// Samples a corpus of `m` documents by repeating the two-step process.
    pub fn sample_corpus<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> GeneratedCorpus {
        let docs = (0..m).map(|_| self.sample_document(rng)).collect();
        GeneratedCorpus::new(self.universe_size, docs)
    }

    /// Samples a corpus and returns each document's spec alongside it — the
    /// mixture ground truth needed by experiments on non-pure models (the
    /// paper's open question of documents belonging to several topics).
    pub fn sample_corpus_with_specs<R: Rng + ?Sized>(
        &self,
        m: usize,
        rng: &mut R,
    ) -> (GeneratedCorpus, Vec<DocumentSpec>) {
        let mut docs = Vec::with_capacity(m);
        let mut specs = Vec::with_capacity(m);
        for _ in 0..m {
            let spec = self.sample_spec(rng);
            docs.push(self.sample_document_from_spec(&spec, rng));
            specs.push(spec);
        }
        (GeneratedCorpus::new(self.universe_size, docs), specs)
    }
}

impl DocumentSpec {
    /// The spec's topic weights as a dense length-`k` vector.
    pub fn topic_weight_vector(&self, num_topics: usize) -> Vec<f64> {
        let mut w = vec![0.0; num_topics];
        for &(t, weight) in &self.topic_mixture {
            w[t] = weight;
        }
        w
    }
}

fn pick_weighted<R: Rng + ?Sized>(weighted: &[(usize, f64)], rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for &(idx, w) in weighted {
        if u < w {
            return idx;
        }
        u -= w;
    }
    // lsi-lint: allow(E1-panic-policy, "invariant: model validation rejects empty mixtures")
    weighted.last().expect("nonempty mixture").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn two_topic_model(style_mode: StyleMode) -> CorpusModel {
        let t0 = Topic::concentrated("a", 10, &[0, 1, 2], 1.0).unwrap();
        let t1 = Topic::concentrated("b", 10, &[5, 6, 7], 1.0).unwrap();
        let style = Style::substitutions("swap", 10, &[(0, 9, 1.0)]).unwrap();
        CorpusModel::new(
            10,
            vec![t0, t1],
            vec![style],
            DocumentLaw {
                topics_per_doc: 1,
                style_mode,
                length: LengthLaw::Fixed(20),
            },
        )
        .unwrap()
    }

    #[test]
    fn validates_construction() {
        assert_eq!(
            CorpusModel::new(5, vec![], vec![], DocumentLaw::pure_uniform(1, 2)).unwrap_err(),
            CorpusError::NoTopics
        );
        let t = Topic::uniform("t", 4).unwrap();
        assert!(matches!(
            CorpusModel::new(5, vec![t.clone()], vec![], DocumentLaw::pure_uniform(1, 2)),
            Err(CorpusError::UniverseMismatch { .. })
        ));
        let t5 = Topic::uniform("t", 5).unwrap();
        assert!(matches!(
            CorpusModel::new(
                5,
                vec![t5.clone()],
                vec![],
                DocumentLaw {
                    topics_per_doc: 2,
                    style_mode: StyleMode::Identity,
                    length: LengthLaw::Fixed(3),
                }
            ),
            Err(CorpusError::BadTopicsPerDoc(2))
        ));
        assert!(matches!(
            CorpusModel::new(
                5,
                vec![t5],
                vec![],
                DocumentLaw {
                    topics_per_doc: 1,
                    style_mode: StyleMode::Identity,
                    length: LengthLaw::Uniform { min: 5, max: 2 },
                }
            ),
            Err(CorpusError::BadLengthLaw)
        ));
    }

    #[test]
    fn pure_documents_stay_on_topic_terms() {
        let model = two_topic_model(StyleMode::Identity);
        assert!(model.is_pure());
        assert!(model.is_style_free());
        let mut r = rng(3);
        let corpus = model.sample_corpus(50, &mut r);
        for doc in corpus.documents() {
            let topic = doc.topic().expect("pure model labels documents");
            let allowed: &[usize] = if topic == 0 { &[0, 1, 2] } else { &[5, 6, 7] };
            for &(t, _) in doc.counts() {
                assert!(allowed.contains(&t), "term {t} not in topic {topic}");
            }
            assert_eq!(doc.len(), 20);
        }
    }

    #[test]
    fn both_topics_appear() {
        let model = two_topic_model(StyleMode::Identity);
        let mut r = rng(4);
        let corpus = model.sample_corpus(100, &mut r);
        let zeros = corpus
            .documents()
            .iter()
            .filter(|d| d.topic() == Some(0))
            .count();
        assert!(zeros > 20 && zeros < 80, "topic balance off: {zeros}/100");
    }

    #[test]
    fn style_rewrites_terms() {
        let model = two_topic_model(StyleMode::RandomSingle);
        let mut r = rng(5);
        // Topic 0 uses terms {0,1,2}; the style maps 0 → 9 always.
        let mut saw_nine = false;
        for _ in 0..50 {
            let doc = model.sample_document(&mut r);
            assert_eq!(doc.count(0), 0, "term 0 must always be rewritten");
            if doc.count(9) > 0 {
                saw_nine = true;
            }
        }
        assert!(saw_nine, "rewritten term 9 never appeared");
    }

    #[test]
    fn mixture_documents_are_unlabeled() {
        let t0 = Topic::uniform("a", 6).unwrap();
        let t1 = Topic::uniform("b", 6).unwrap();
        let model = CorpusModel::new(
            6,
            vec![t0, t1],
            vec![],
            DocumentLaw {
                topics_per_doc: 2,
                style_mode: StyleMode::Identity,
                length: LengthLaw::Fixed(5),
            },
        )
        .unwrap();
        assert!(!model.is_pure());
        let mut r = rng(6);
        let doc = model.sample_document(&mut r);
        assert_eq!(doc.topic(), None);
        assert_eq!(doc.len(), 5);
    }

    #[test]
    fn spec_weights_form_convex_combination() {
        let t0 = Topic::uniform("a", 4).unwrap();
        let t1 = Topic::uniform("b", 4).unwrap();
        let t2 = Topic::uniform("c", 4).unwrap();
        let model = CorpusModel::new(
            4,
            vec![t0, t1, t2],
            vec![],
            DocumentLaw {
                topics_per_doc: 2,
                style_mode: StyleMode::Identity,
                length: LengthLaw::Fixed(3),
            },
        )
        .unwrap();
        let mut r = rng(7);
        for _ in 0..20 {
            let spec = model.sample_spec(&mut r);
            assert_eq!(spec.topic_mixture.len(), 2);
            let sum: f64 = spec.topic_mixture.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(spec.topic_mixture.iter().all(|&(_, w)| w >= 0.0));
            // Distinct topic indices.
            assert_ne!(spec.topic_mixture[0].0, spec.topic_mixture[1].0);
        }
    }

    #[test]
    fn lengths_respect_law() {
        let t = Topic::uniform("t", 3).unwrap();
        let model = CorpusModel::new(3, vec![t], vec![], DocumentLaw::pure_uniform(5, 9)).unwrap();
        let mut r = rng(8);
        for _ in 0..100 {
            let d = model.sample_document(&mut r);
            assert!((5..=9).contains(&d.len()), "length {}", d.len());
        }
    }

    #[test]
    fn sample_with_specs_aligns_documents_and_truth() {
        let t0 = Topic::uniform("a", 6).unwrap();
        let t1 = Topic::uniform("b", 6).unwrap();
        let model = CorpusModel::new(
            6,
            vec![t0, t1],
            vec![],
            DocumentLaw {
                topics_per_doc: 2,
                style_mode: StyleMode::Identity,
                length: LengthLaw::Fixed(7),
            },
        )
        .unwrap();
        let mut r = rng(13);
        let (corpus, specs) = model.sample_corpus_with_specs(10, &mut r);
        assert_eq!(corpus.len(), 10);
        assert_eq!(specs.len(), 10);
        for (doc, spec) in corpus.documents().iter().zip(&specs) {
            assert_eq!(doc.len(), spec.length);
            let w = spec.topic_weight_vector(2);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn max_term_probability_reflects_topics() {
        let model = two_topic_model(StyleMode::Identity);
        assert!((model.max_term_probability() - 1.0 / 3.0).abs() < 1e-12);
    }
}
