//! Discrete sampling by the Walker alias method.
//!
//! Document generation draws tens of thousands of terms per corpus; the
//! alias method gives O(1) draws after O(n) preprocessing, so corpus
//! generation stays linear in total corpus length.

use rand::Rng;

/// A normalized discrete distribution with O(1) sampling.
#[derive(Debug, Clone)]
pub struct DiscreteDistribution {
    /// Normalized probabilities (kept for exact queries and mixing).
    probs: Vec<f64>,
    /// Alias-table acceptance thresholds.
    accept: Vec<f64>,
    /// Alias targets.
    alias: Vec<usize>,
}

impl DiscreteDistribution {
    /// Builds from nonnegative weights (not necessarily normalized).
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = weights.len();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

        // Walker's alias construction: split entries into under- and
        // over-full relative to the uniform 1/n, pair them off.
        let mut accept = vec![0.0; n];
        let mut alias: Vec<usize> = (0..n).collect();
        let mut scaled: Vec<f64> = probs.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            accept[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in large.iter().chain(small.iter()) {
            accept[i] = 1.0;
        }

        Some(DiscreteDistribution {
            probs,
            accept,
            alias,
        })
    }

    /// The uniform distribution on `0..n`.
    pub fn uniform(n: usize) -> Option<Self> {
        Self::new(&vec![1.0; n])
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the support is empty (cannot happen for constructed values;
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Probability of outcome `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The normalized probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Draws one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.probs.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.accept[i] {
            i
        } else {
            self.alias[i]
        }
    }

    /// Convex combination `Σ wᵢ·distᵢ` of several distributions over the
    /// same support size. Weights must be nonnegative with positive sum.
    pub fn mixture(components: &[(&DiscreteDistribution, f64)]) -> Option<Self> {
        let n = components.first()?.0.len();
        if components.iter().any(|(d, w)| d.len() != n || *w < 0.0) {
            return None;
        }
        let mut weights = vec![0.0; n];
        for (d, w) in components {
            for (i, &p) in d.probs.iter().enumerate() {
                weights[i] += w * p;
            }
        }
        Self::new(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(DiscreteDistribution::new(&[]).is_none());
        assert!(DiscreteDistribution::new(&[0.0, 0.0]).is_none());
        assert!(DiscreteDistribution::new(&[1.0, -0.5]).is_none());
        assert!(DiscreteDistribution::new(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn normalizes() {
        let d = DiscreteDistribution::new(&[2.0, 6.0]).unwrap();
        assert!((d.prob(0) - 0.25).abs() < 1e-15);
        assert!((d.prob(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn uniform_is_uniform() {
        let d = DiscreteDistribution::uniform(4).unwrap();
        for i in 0..4 {
            assert!((d.prob(i) - 0.25).abs() < 1e-15);
        }
        assert!(DiscreteDistribution::uniform(0).is_none());
    }

    #[test]
    fn sampling_matches_probabilities() {
        let d = DiscreteDistribution::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut r = rng(42);
        let n = 300_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.1).abs() < 0.005, "{freqs:?}");
        assert!((freqs[1] - 0.2).abs() < 0.005, "{freqs:?}");
        assert!((freqs[2] - 0.7).abs() < 0.005, "{freqs:?}");
    }

    #[test]
    fn degenerate_single_outcome() {
        let d = DiscreteDistribution::new(&[5.0]).unwrap();
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn point_mass_never_samples_others() {
        let d = DiscreteDistribution::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut r = rng(2);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn mixture_combines() {
        let a = DiscreteDistribution::new(&[1.0, 0.0]).unwrap();
        let b = DiscreteDistribution::new(&[0.0, 1.0]).unwrap();
        let m = DiscreteDistribution::mixture(&[(&a, 0.25), (&b, 0.75)]).unwrap();
        assert!((m.prob(0) - 0.25).abs() < 1e-15);
        assert!((m.prob(1) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn mixture_rejects_mismatched_supports() {
        let a = DiscreteDistribution::uniform(2).unwrap();
        let b = DiscreteDistribution::uniform(3).unwrap();
        assert!(DiscreteDistribution::mixture(&[(&a, 0.5), (&b, 0.5)]).is_none());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = DiscreteDistribution::new(&[0.3, 0.3, 0.9, 1.5]).unwrap();
        let sum: f64 = d.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
