//! Generated documents and corpora.

/// A sampled document: a bag of term occurrences plus the ground truth the
/// generator knows about it (its topic, when the model is pure).
///
/// Ground-truth labels are what let the experiments *measure* whether LSI
/// rediscovered the structure (δ-skew, intratopic/intertopic angles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// `(term, count)` pairs sorted by term id; counts are ≥ 1.
    counts: Vec<(usize, u32)>,
    /// Total number of term occurrences (the paper's document length ℓ).
    length: usize,
    /// Ground-truth topic index for pure models; `None` for mixtures.
    topic: Option<usize>,
}

impl Document {
    /// Builds a document from a raw sequence of sampled term occurrences.
    pub fn from_occurrences(occurrences: &[usize], topic: Option<usize>) -> Self {
        let mut sorted = occurrences.to_vec();
        sorted.sort_unstable();
        let mut counts: Vec<(usize, u32)> = Vec::new();
        for &t in &sorted {
            match counts.last_mut() {
                Some((term, c)) if *term == t => *c += 1,
                _ => counts.push((t, 1)),
            }
        }
        Document {
            counts,
            length: occurrences.len(),
            topic,
        }
    }

    /// `(term, count)` pairs sorted by term id.
    pub fn counts(&self) -> &[(usize, u32)] {
        &self.counts
    }

    /// Total term occurrences.
    pub fn len(&self) -> usize {
        self.length
    }

    /// True if the document has no terms.
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Occurrence count of a specific term.
    pub fn count(&self, term: usize) -> u32 {
        match self.counts.binary_search_by_key(&term, |&(t, _)| t) {
            Ok(i) => self.counts[i].1,
            Err(_) => 0,
        }
    }

    /// Ground-truth topic (pure models only).
    pub fn topic(&self) -> Option<usize> {
        self.topic
    }
}

/// A corpus sampled from a [`crate::CorpusModel`].
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    universe_size: usize,
    documents: Vec<Document>,
}

impl GeneratedCorpus {
    /// Assembles a corpus; documents must reference terms `< universe_size`.
    pub fn new(universe_size: usize, documents: Vec<Document>) -> Self {
        debug_assert!(documents
            .iter()
            .all(|d| d.counts().iter().all(|&(t, _)| t < universe_size)));
        GeneratedCorpus {
            universe_size,
            documents,
        }
    }

    /// Size of the term universe.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// The documents.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Ground-truth topic labels, `None` entries for mixture documents.
    pub fn topic_labels(&self) -> Vec<Option<usize>> {
        self.documents.iter().map(|d| d.topic()).collect()
    }

    /// COO triplets `(term, doc, count)` of the raw count term–document
    /// matrix — the hand-off format to `lsi-ir`.
    pub fn to_triplets(&self) -> Vec<(usize, usize, f64)> {
        let mut trips = Vec::new();
        for (j, doc) in self.documents.iter().enumerate() {
            for &(t, c) in doc.counts() {
                trips.push((t, j, c as f64));
            }
        }
        trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_occurrences_counts() {
        let d = Document::from_occurrences(&[3, 1, 3, 3, 2], Some(0));
        assert_eq!(d.len(), 5);
        assert_eq!(d.distinct_terms(), 3);
        assert_eq!(d.count(3), 3);
        assert_eq!(d.count(1), 1);
        assert_eq!(d.count(9), 0);
        assert_eq!(d.topic(), Some(0));
        assert_eq!(d.counts(), &[(1, 1), (2, 1), (3, 3)]);
    }

    #[test]
    fn empty_document() {
        let d = Document::from_occurrences(&[], None);
        assert!(d.is_empty());
        assert_eq!(d.distinct_terms(), 0);
        assert_eq!(d.topic(), None);
    }

    #[test]
    fn corpus_triplets() {
        let d0 = Document::from_occurrences(&[0, 0, 1], Some(0));
        let d1 = Document::from_occurrences(&[2], Some(1));
        let c = GeneratedCorpus::new(3, vec![d0, d1]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.universe_size(), 3);
        let trips = c.to_triplets();
        assert!(trips.contains(&(0, 0, 2.0)));
        assert!(trips.contains(&(1, 0, 1.0)));
        assert!(trips.contains(&(2, 1, 1.0)));
        assert_eq!(trips.len(), 3);
        assert_eq!(c.topic_labels(), vec![Some(0), Some(1)]);
    }
}
