//! The concurrent query engine: worker pool, admission control, deadlines,
//! panic isolation, and degraded-mode fallback.
//!
//! ## Lifecycle of a query
//!
//! ```text
//! submit ──► bounded queue ──► worker ──► catch_unwind ┐
//!    │ full?                     │                     │ panic?
//!    ▼                           ▼                     ▼
//! Overloaded              deadline check      Internal + respawn
//!                               │
//!                    validate (BadQuery?) ──► score in LSI space
//!                               │                 │ soft deadline hit?
//!                               │                 ▼
//!                               │          term-space fallback
//!                               │                 │
//!                               ▼                 ▼
//!                        DeadlineExceeded   Ok(Ranked | Degraded)
//! ```
//!
//! Every submission resolves to exactly one of: `Ok(QueryResponse)`,
//! or a typed [`QueryError`] — never a panic, never a hang (deadlines are
//! cooperative: the scoring loops in `lsi-core` poll the query's
//! [`CancelToken`] and abandon work once it expires).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lsi_core::cancel::CancelToken;
use lsi_core::{
    BadQuery, BuildStatus, DurabilityError, DurableIndex, LsiError, LsiIndex, MutationRecord,
    SectionId, VectorQuery,
};
use lsi_ir::retrieval::{RankedList, VectorSpaceIndex};
use lsi_ir::TermDocumentMatrix;

use crate::stats::{Outcome, ServeStats, StatsSnapshot};

/// A fault-injection hook run by the worker at the start of every query,
/// inside the panic-isolation boundary. The argument is the query's
/// caller-chosen [`Query::tag`]. This is the serving-side analogue of
/// `lsi_linalg::faults::FaultPlan`: chaos tests use it to inject slow
/// (sleeping) and poison (panicking) scorers through the exact production
/// path. Not intended for production configurations.
pub type FaultHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Tuning knobs for a [`QueryEngine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads scoring queries (≥ 1; silently clamped).
    pub workers: usize,
    /// Capacity of the bounded submission queue; a full queue sheds new
    /// submissions with [`QueryError::Overloaded`].
    pub queue_capacity: usize,
    /// Hard per-query deadline, measured from submission. `None` disables
    /// deadline enforcement.
    pub deadline: Option<Duration>,
    /// Soft per-query deadline: once exceeded, LSI-space scoring is
    /// abandoned and the query is re-answered by the raw term-space
    /// fallback (when one is attached), marked
    /// [`DegradeReason::SoftDeadline`]. Ignored without a fallback.
    pub soft_deadline: Option<Duration>,
    /// Optional fault-injection hook (see [`FaultHook`]).
    pub fault_hook: Option<FaultHook>,
    /// Maximum number of queued queries a free worker coalesces into one
    /// batched scoring pass (≥ 1; `1` disables coalescing). Batched scoring
    /// streams the document rows once per batch instead of once per query
    /// and is **bitwise identical** to sequential per-query scoring for
    /// every batch size and arrival order (see
    /// [`lsi_core::LsiIndex::query_vectors_batch`]). When a
    /// [`fault_hook`](Self::fault_hook) is installed, coalescing is
    /// disabled: the hook contract is strictly per-query worker isolation
    /// (one poisoned query retires exactly one worker incarnation), which
    /// batch formation would blur.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            deadline: Some(Duration::from_secs(1)),
            soft_deadline: None,
            fault_hook: None,
            max_batch: 16,
        }
    }
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("deadline", &self.deadline)
            .field("soft_deadline", &self.soft_deadline)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("max_batch", &self.max_batch)
            .finish()
    }
}

/// One retrieval request.
#[derive(Debug, Clone)]
pub struct Query {
    /// Sparse term-space query: `(term id, weight)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Maximum number of hits to return.
    pub top_k: usize,
    /// Opaque caller tag, forwarded to the [`FaultHook`] and useful for
    /// tracing; the engine itself never interprets it.
    pub tag: u64,
}

impl Query {
    /// A query with tag 0.
    pub fn new(terms: Vec<(usize, f64)>, top_k: usize) -> Self {
        Query {
            terms,
            top_k,
            tag: 0,
        }
    }
}

/// Why a response was served from the degraded path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The index itself reported [`BuildStatus::Degraded`] (its true rank
    /// is below the requested rank).
    DegradedIndex,
    /// LSI-space scoring exceeded the soft deadline; the answer comes from
    /// the raw term-space scorer instead.
    SoftDeadline,
    /// The snapshot was partially opened with this section quarantined
    /// (corrupt on disk); answers come from the term-space fallback, or
    /// from the surviving LSI state when no fallback is attached, until
    /// `lsi recover` rebuilds the section.
    DamagedSection(SectionId),
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DegradedIndex => write!(f, "index built at degraded rank"),
            DegradeReason::SoftDeadline => write!(f, "soft deadline exceeded"),
            DegradeReason::DamagedSection(section) => {
                write!(f, "snapshot section `{section}` quarantined")
            }
        }
    }
}

/// A successful answer: full-fidelity or explicitly degraded.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Cosine-ranked hits in LSI space — the full-fidelity path.
    Ranked(RankedList),
    /// Hits from the degraded path, with the reason attached so callers
    /// can distinguish "best effort" from "the real thing".
    Degraded {
        /// The ranked hits (term-space cosine, or live-subspace LSI for a
        /// degraded index with no fallback attached).
        hits: RankedList,
        /// Why the engine degraded.
        reason: DegradeReason,
    },
}

impl QueryResponse {
    /// The ranked hits, whichever path produced them.
    pub fn hits(&self) -> &RankedList {
        match self {
            QueryResponse::Ranked(hits) => hits,
            QueryResponse::Degraded { hits, .. } => hits,
        }
    }

    /// True for the degraded path.
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryResponse::Degraded { .. })
    }
}

/// Typed failure of one submission. Every variant is a defined outcome of
/// the serving contract — a submitter never sees a panic or a hang.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The bounded submission queue was full; the query was shed at
    /// admission and never scored.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The hard deadline expired before an answer was produced.
    DeadlineExceeded,
    /// The query was malformed (out-of-range term id, non-finite weight);
    /// rejected by validation before scoring.
    BadQuery(BadQuery),
    /// A worker panicked or hit an unexpected error while handling the
    /// query. The worker was respawned; the engine keeps serving.
    Internal {
        /// Human-readable description of what went wrong.
        detail: String,
    },
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Overloaded { capacity } => {
                write!(f, "overloaded: submission queue full ({capacity} slots)")
            }
            QueryError::DeadlineExceeded => write!(f, "deadline exceeded"),
            QueryError::BadQuery(b) => write!(f, "bad query: {b}"),
            QueryError::Internal { detail } => write!(f, "internal error: {detail}"),
            QueryError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A pending response: wait on it to get the query's terminal state.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<QueryResponse, QueryError>>,
}

impl Ticket {
    /// Blocks until the query resolves. The worker always sends exactly
    /// one result per admitted job (panics included, via the isolation
    /// boundary), so this returns promptly once the queue drains; a
    /// severed channel — only possible if the engine was torn down
    /// abnormally — maps to [`QueryError::Internal`].
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(QueryError::Internal {
                detail: "reply channel severed before a result was sent".into(),
            })
        })
    }

    /// Blocks until the query resolves or `deadline` passes, whichever is
    /// first. On timeout the ticket itself is handed back (`Err`), so the
    /// caller can hedge — submit a retry elsewhere — and still collect
    /// this original answer later; the pending query is *not* cancelled.
    pub fn wait_until(
        self,
        deadline: Instant,
    ) -> Result<Result<QueryResponse, QueryError>, Ticket> {
        let budget = deadline.saturating_duration_since(Instant::now());
        match self.rx.recv_timeout(budget) {
            Ok(result) => Ok(result),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(self),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Err(QueryError::Internal {
                detail: "reply channel severed before a result was sent".into(),
            })),
        }
    }
}

struct Job {
    query: Query,
    submitted_at: Instant,
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
}

/// The served index: plain in-memory, or wrapped in the write-ahead
/// durability layer so every accepted fold-in is journaled (and fsynced)
/// before it is acknowledged.
enum ServedIndex {
    Plain(LsiIndex),
    Durable(DurableIndex),
}

impl ServedIndex {
    fn index(&self) -> &LsiIndex {
        match self {
            ServedIndex::Plain(index) => index,
            ServedIndex::Durable(durable) => durable.index(),
        }
    }

    /// Applies one fold-in. The durable variant journals first; a storage
    /// failure surfaces as [`QueryError::Internal`] and leaves the
    /// in-memory index untouched — the mutation was never acknowledged.
    fn add_document(&mut self, terms: &[(usize, f64)]) -> Result<usize, QueryError> {
        match self {
            ServedIndex::Plain(index) => index.try_add_document(terms).map_err(map_lsi_error),
            ServedIndex::Durable(durable) => {
                durable.add_document(terms).map_err(map_durability_error)
            }
        }
    }

    /// Appends a document by its precomputed LSI-space coordinates (the
    /// sharding transplant path). The durable variant journals an
    /// `AddVector` frame carrying `doc_id` first.
    fn add_document_vector(&mut self, doc_id: &str, coords: &[f64]) -> Result<usize, QueryError> {
        match self {
            ServedIndex::Plain(index) => index.add_document_vector(coords).map_err(map_lsi_error),
            ServedIndex::Durable(durable) => durable
                .add_document_vector(doc_id, coords)
                .map_err(map_durability_error),
        }
    }

    /// Retires a document (zeroed representation, skipped by cosine
    /// scans). The durable variant journals a `Retire` frame first.
    fn retire_document(&mut self, doc: usize) -> Result<(), QueryError> {
        match self {
            ServedIndex::Plain(index) => index.retire_document(doc).map_err(map_lsi_error),
            ServedIndex::Durable(durable) => {
                durable.retire_document(doc).map_err(map_durability_error)
            }
        }
    }
}

/// Index state guarded by one RwLock: queries share read access; fold-in
/// updates take the write lock.
struct EngineState {
    served: ServedIndex,
    /// Raw term-space fallback over the same (weighted) corpus, kept in
    /// lockstep with fold-in updates; `None` when the engine was built
    /// without a term-document matrix.
    raw: Option<VectorSpaceIndex>,
    /// Cached `matches!(index.build_status(), Degraded)`.
    index_degraded: bool,
    /// First *answer-affecting* quarantined section of a partially opened
    /// snapshot (see [`SectionId::affects_queries`]), cached from
    /// [`LsiIndex::quarantined_sections`] at construction. Bookkeeping
    /// quarantines (`doc-factors`, `foldin-meta`) never touch query
    /// scoring and do not degrade answers.
    quarantined_section: Option<SectionId>,
}

struct Shared {
    state: RwLock<EngineState>,
    stats: ServeStats,
    config: EngineConfig,
}

/// How one incarnation of a worker loop ended.
enum LoopExit {
    /// The submission channel closed: clean shutdown.
    Shutdown,
    /// A job panicked inside the isolation boundary; the caller got
    /// `QueryError::Internal` and this incarnation retires so a fresh one
    /// can be counted in as its respawn.
    PanicCaught,
}

/// A resilient, concurrent query front end over an [`LsiIndex`].
///
/// See the [module docs](self) for the lifecycle. Construction spawns the
/// worker pool; dropping the engine closes the queue, lets workers drain
/// outstanding jobs (every ticket still resolves), and joins them.
///
/// # Examples
///
/// ```
/// use lsi_core::{LsiConfig, LsiIndex};
/// use lsi_ir::TermDocumentMatrix;
/// use lsi_serve::{EngineConfig, Query, QueryEngine};
///
/// let td = TermDocumentMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 2.0), (1, 0, 1.0), (0, 1, 1.0), (2, 2, 3.0)],
/// )
/// .unwrap();
/// let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
/// let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
///
/// let response = engine.query(Query::new(vec![(0, 1.0)], 3)).unwrap();
/// assert!(!response.hits().is_empty());
/// ```
pub struct QueryEngine {
    shared: Arc<Shared>,
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    next_tag: AtomicU64,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("config", &self.shared.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl QueryEngine {
    /// Builds an engine over `index` with no term-space fallback: degraded
    /// situations are still answered (in the index's live subspace) and
    /// marked, but soft deadlines have nothing to fall back to and are
    /// ignored.
    pub fn new(index: LsiIndex, config: EngineConfig) -> Self {
        Self::build(ServedIndex::Plain(index), None, config)
    }

    /// Builds an engine over `index` plus a raw term-space fallback scorer
    /// constructed from `td` (weighted with the index's own weighting
    /// scheme), enabling full degraded-mode retrieval.
    pub fn with_fallback(index: LsiIndex, td: &TermDocumentMatrix, config: EngineConfig) -> Self {
        let weighted = td.weighted(index.config().weighting);
        let raw = VectorSpaceIndex::build(&weighted);
        Self::build(ServedIndex::Plain(index), Some(raw), config)
    }

    /// Builds an engine over a [`DurableIndex`]: every accepted fold-in is
    /// journaled and fsynced *before* [`add_document`](Self::add_document)
    /// returns, so a crash never loses an acknowledged mutation. Pair with
    /// [`checkpoint`](Self::checkpoint) to compact the journal.
    pub fn with_durable(durable: DurableIndex, config: EngineConfig) -> Self {
        Self::build(ServedIndex::Durable(durable), None, config)
    }

    /// Builds an engine over a [`DurableIndex`] plus a raw term-space
    /// fallback scorer built from `td`. The fallback both absorbs soft
    /// deadlines and keeps a partially opened snapshot (quarantined
    /// [`DocVectors`](SectionId::DocVectors)) answering at full corpus
    /// coverage, marked [`DegradeReason::DamagedSection`].
    pub fn with_durable_fallback(
        durable: DurableIndex,
        td: &TermDocumentMatrix,
        config: EngineConfig,
    ) -> Self {
        let weighted = td.weighted(durable.index().config().weighting);
        let raw = VectorSpaceIndex::build(&weighted);
        Self::build(ServedIndex::Durable(durable), Some(raw), config)
    }

    /// # Panics
    /// Panics when the OS refuses to spawn a worker thread (resource
    /// exhaustion at construction time; an engine without workers could
    /// never serve).
    fn build(served: ServedIndex, raw: Option<VectorSpaceIndex>, config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let index_degraded = matches!(served.index().build_status(), BuildStatus::Degraded { .. });
        let quarantined_section = served
            .index()
            .quarantined_sections()
            .iter()
            .copied()
            .find(|s| s.affects_queries());
        let shared = Arc::new(Shared {
            state: RwLock::new(EngineState {
                served,
                raw,
                index_degraded,
                quarantined_section,
            }),
            stats: ServeStats::new(),
            config,
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("lsi-serve-worker-{i}"))
                    .spawn(move || worker_supervisor(&shared, &rx))
                    .expect("spawning a worker thread")
            })
            .collect();
        QueryEngine {
            shared,
            sender: Some(tx),
            workers: handles,
            next_tag: AtomicU64::new(1),
        }
    }

    /// Submits a query without blocking on its result. Admission control
    /// happens here: a full queue sheds the query with
    /// [`QueryError::Overloaded`] immediately.
    pub fn submit(&self, query: Query) -> Result<Ticket, QueryError> {
        let stats = &self.shared.stats;
        stats.record_submitted();
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            query,
            submitted_at: Instant::now(),
            reply: reply_tx,
        };
        let Some(sender) = &self.sender else {
            stats.record_shed();
            return Err(QueryError::ShuttingDown);
        };
        match sender.try_send(job) {
            Ok(()) => {
                stats.record_admitted();
                Ok(Ticket { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                stats.record_shed();
                Err(QueryError::Overloaded {
                    capacity: self.shared.config.queue_capacity.max(1),
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                stats.record_shed();
                Err(QueryError::ShuttingDown)
            }
        }
    }

    /// Submits and blocks until the query resolves — the convenience
    /// one-shot path.
    pub fn query(&self, query: Query) -> Result<QueryResponse, QueryError> {
        self.submit(query)?.wait()
    }

    /// Folds a new document into the served index (and the term-space
    /// fallback, when present) under the write lock; concurrent queries
    /// see either the old or the new document set, never a torn one.
    /// Malformed updates are rejected with [`QueryError::BadQuery`]. On a
    /// durable engine ([`with_durable`](Self::with_durable)) the mutation
    /// is journaled and fsynced before this returns; a journal I/O failure
    /// surfaces as [`QueryError::Internal`] with nothing applied.
    pub fn add_document(&self, terms: &[(usize, f64)]) -> Result<usize, QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let id = state.served.add_document(terms)?;
        if let Some(raw) = &mut state.raw {
            raw.add_document(terms);
        }
        self.shared.stats.record_doc_added();
        Ok(id)
    }

    /// Appends a document by its precomputed LSI-space coordinates under
    /// the write lock — the sharding transplant path: the bits are stored
    /// verbatim, so the document scores identically to the donor index's
    /// row. On a durable engine the mutation is journaled as an
    /// `AddVector` frame carrying `doc_id` (fsynced) before this returns.
    /// The term-space fallback, when present, is *not* updated (shards are
    /// built without one). Returns the new document's local id.
    pub fn add_document_vector(&self, doc_id: &str, coords: &[f64]) -> Result<usize, QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let id = state.served.add_document_vector(doc_id, coords)?;
        self.shared.stats.record_doc_added();
        Ok(id)
    }

    /// Retires a document under the write lock: its representation is
    /// zeroed so every subsequent scan skips it; the id stays allocated.
    /// On a durable engine the retirement is journaled (fsynced) first.
    pub fn retire_document(&self, doc: usize) -> Result<(), QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        state.served.retire_document(doc)
    }

    /// Journals a retirement (fsynced) **without** zeroing the live row.
    /// This is the rebalance tombstone path: the coordinator makes the
    /// document invisible through its own id map, and must not mutate the
    /// row bits while queries snapshotted before the move may still score
    /// against them. Returns `Ok(false)` for engines without a durability
    /// layer (nothing to journal; the caller's map is the only state).
    pub fn log_retire(&self, doc: usize) -> Result<bool, QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        match &mut state.served {
            ServedIndex::Plain(index) => {
                if doc >= index.n_docs() {
                    return Err(map_lsi_error(
                        lsi_core::BadQuery::DocOutOfRange {
                            doc,
                            n_docs: index.n_docs(),
                        }
                        .into(),
                    ));
                }
                Ok(false)
            }
            ServedIndex::Durable(durable) => durable
                .log_retire(doc)
                .map(|()| true)
                .map_err(map_durability_error),
        }
    }

    /// Runs `f` against the served index under the read lock (concurrent
    /// with queries, serialized against mutations). This is the
    /// coordinator's window into shard state — reading document rows for
    /// a rebalance transfer, or dumping live state for a compaction —
    /// without cloning the index out.
    pub fn with_index<R>(&self, f: impl FnOnce(&LsiIndex) -> R) -> R {
        let state = self
            .shared
            .state
            .read()
            .unwrap_or_else(|poison| poison.into_inner());
        f(state.served.index())
    }

    /// Rotates a durable engine's journal down to an explicit record list
    /// under the write lock ([`lsi_core::Journal::rotate_with`]), without
    /// touching the snapshot. Returns `Ok(false)` for engines without a
    /// durability layer. This is the compaction path for shards, whose
    /// journal is the canonical document list (the snapshot is an
    /// immutable basis that cannot carry the shard's id map).
    pub fn rotate_journal(&self, records: &[MutationRecord]) -> Result<bool, QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        match &mut state.served {
            ServedIndex::Plain(_) => Ok(false),
            ServedIndex::Durable(durable) => durable
                .rotate_journal_with(records)
                .map(|()| true)
                .map_err(|e| QueryError::Internal {
                    detail: format!("journal rotation failed: {e}"),
                }),
        }
    }

    /// Compacts the durability layer under the write lock: atomically
    /// rewrites the snapshot from the live index and rotates the journal.
    /// Returns `Ok(true)` after a compaction, `Ok(false)` for engines
    /// built without a durability layer, and [`QueryError::Internal`] when
    /// the snapshot or rotation I/O fails (the in-memory index keeps
    /// serving either way).
    pub fn checkpoint(&self) -> Result<bool, QueryError> {
        let mut state = self
            .shared
            .state
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        match &mut state.served {
            ServedIndex::Plain(_) => Ok(false),
            ServedIndex::Durable(durable) => {
                durable
                    .checkpoint()
                    .map(|()| true)
                    .map_err(|e| QueryError::Internal {
                        detail: format!("checkpoint failed: {e}"),
                    })
            }
        }
    }

    /// True when the engine journals mutations
    /// ([`with_durable`](Self::with_durable)).
    pub fn is_durable(&self) -> bool {
        matches!(
            self.shared
                .state
                .read()
                .unwrap_or_else(|poison| poison.into_inner())
                .served,
            ServedIndex::Durable(_)
        )
    }

    /// Number of documents currently served.
    pub fn n_docs(&self) -> usize {
        self.shared
            .state
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .served
            .index()
            .n_docs()
    }

    /// A point-in-time copy of the serving statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A fresh engine-unique tag for [`Query::tag`].
    pub fn fresh_tag(&self) -> u64 {
        self.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// Closes the submission queue, drains outstanding jobs, and joins the
    /// workers. Equivalent to dropping the engine, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Dropping the sender closes the channel; workers finish queued
        // jobs (every ticket resolves) and then exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Outer worker guard: re-enters the loop after a caught panic so the pool
/// never shrinks. Each re-entry is one "respawn" in the stats.
fn worker_supervisor(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let exit = catch_unwind(AssertUnwindSafe(|| worker_loop(shared, rx)));
        match exit {
            Ok(LoopExit::Shutdown) => break,
            Ok(LoopExit::PanicCaught) => shared.stats.record_respawn(),
            // A panic escaping worker_loop itself (outside the per-job
            // boundary) should be impossible; recover anyway.
            Err(_) => shared.stats.record_respawn(),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) -> LoopExit {
    // Coalescing is disabled under a fault hook: the hook contract is
    // per-query worker isolation, which batch formation would blur.
    let max_batch = if shared.config.fault_hook.is_some() {
        1
    } else {
        shared.config.max_batch.max(1)
    };
    let mut jobs: Vec<Job> = Vec::new();
    loop {
        // Take the next job — and, opportunistically, any backlog up to
        // max_batch — while holding the pickup lock only briefly.
        jobs.clear();
        {
            let guard = rx.lock().unwrap_or_else(|poison| poison.into_inner());
            match guard.recv() {
                Ok(job) => jobs.push(job),
                Err(_) => return LoopExit::Shutdown,
            }
            while jobs.len() < max_batch {
                match guard.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        if jobs.len() == 1 {
            // lsi-lint: allow(E1-panic-policy, "invariant: the branch condition guarantees one job")
            let job = jobs.pop().expect("one job");
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                handle_job(shared, &job.query, job.submitted_at)
            }));
            let latency = job.submitted_at.elapsed();
            match outcome {
                Ok(result) => {
                    shared.stats.record_outcome(outcome_of(&result), latency);
                    let _ = job.reply.send(result);
                }
                Err(panic_payload) => {
                    shared.stats.record_outcome(Outcome::Internal, latency);
                    let detail = panic_message(&*panic_payload);
                    let _ = job.reply.send(Err(QueryError::Internal {
                        detail: format!("query worker panicked: {detail}"),
                    }));
                    // Retire this incarnation; the supervisor respawns it.
                    return LoopExit::PanicCaught;
                }
            }
            continue;
        }
        // Coalesced path: one batched scoring pass, demultiplexed into the
        // ordinary per-query responses.
        shared.stats.record_batch(jobs.len());
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_batch(shared, &jobs)));
        match outcome {
            Ok(results) => {
                for (job, result) in jobs.drain(..).zip(results) {
                    shared
                        .stats
                        .record_outcome(outcome_of(&result), job.submitted_at.elapsed());
                    let _ = job.reply.send(result);
                }
            }
            Err(panic_payload) => {
                // Should be unreachable (scoring panics require a fault
                // hook, which disables batching) — but the isolation
                // contract holds regardless: every ticket resolves, the
                // incarnation retires.
                let detail = panic_message(&*panic_payload);
                for job in jobs.drain(..) {
                    shared
                        .stats
                        .record_outcome(Outcome::Internal, job.submitted_at.elapsed());
                    let _ = job.reply.send(Err(QueryError::Internal {
                        detail: format!("query worker panicked mid-batch: {detail}"),
                    }));
                }
                return LoopExit::PanicCaught;
            }
        }
    }
}

fn outcome_of(result: &Result<QueryResponse, QueryError>) -> Outcome {
    match result {
        Ok(QueryResponse::Ranked(_)) => Outcome::CompletedFull,
        Ok(QueryResponse::Degraded { .. }) => Outcome::CompletedDegraded,
        Err(QueryError::DeadlineExceeded) => Outcome::TimedOut,
        Err(QueryError::BadQuery(_)) => Outcome::BadQuery,
        Err(_) => Outcome::Internal,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The per-query state machine (runs inside the panic-isolation boundary).
fn handle_job(
    shared: &Shared,
    query: &Query,
    submitted_at: Instant,
) -> Result<QueryResponse, QueryError> {
    if let Some(hook) = &shared.config.fault_hook {
        hook(query.tag);
    }

    let hard_at = shared.config.deadline.map(|d| submitted_at + d);
    let hard = match hard_at {
        Some(at) => CancelToken::with_deadline_at(at),
        None => CancelToken::new(),
    };
    // Queue wait (or a slow fault hook) may already have consumed the
    // budget; don't start scoring a dead query.
    if hard.is_cancelled() {
        return Err(QueryError::DeadlineExceeded);
    }

    let state = shared
        .state
        .read()
        .unwrap_or_else(|poison| poison.into_inner());
    let index = state.served.index();

    // Validation gates every path, so malformed input can never reach a
    // scorer (LSI or fallback).
    index.validate_query(&query.terms).map_err(map_lsi_error)?;

    // Partially opened snapshot or degraded index: route through the
    // marked fallback path.
    if let Some(reason) = degrade_reason(&state) {
        return degraded_response(&state, query, &hard, reason);
    }

    // Healthy index: score in LSI space under the soft deadline (when a
    // fallback exists to degrade to; otherwise only the hard one).
    let soft_at = match (&state.raw, shared.config.soft_deadline) {
        (Some(_), Some(soft)) => Some(submitted_at + soft),
        _ => None,
    };
    let token = match soft_at {
        Some(at) => hard.child_with_deadline_at(at),
        None => hard.clone(),
    };
    match index.try_query(&query.terms, query.top_k, Some(&token)) {
        Ok(hits) => Ok(QueryResponse::Ranked(hits)),
        Err(LsiError::Cancelled) => {
            if hard.is_cancelled() {
                return Err(QueryError::DeadlineExceeded);
            }
            // Soft deadline fired with budget to spare: degrade to the raw
            // term-space scorer (guaranteed present when soft_at is set).
            // lsi-lint: allow(E1-panic-policy, "invariant: degraded mode is only entered when the fallback index exists")
            let raw = state.raw.as_ref().expect("soft deadline implies fallback");
            let hits = raw.query(&query.terms, query.top_k);
            hard.check().map_err(|_| QueryError::DeadlineExceeded)?;
            Ok(QueryResponse::Degraded {
                hits,
                reason: DegradeReason::SoftDeadline,
            })
        }
        Err(e) => Err(map_lsi_error(e)),
    }
}

/// Why the current state cannot serve full-fidelity LSI answers, if so.
fn degrade_reason(state: &EngineState) -> Option<DegradeReason> {
    // Partially opened snapshot: a quarantined section means the LSI
    // document vectors cannot be trusted (zeroed rows), so prefer the raw
    // term-space scorer; without one, the surviving LSI state still
    // answers (quarantined rows score zero and sink), but marked.
    if let Some(section) = state.quarantined_section {
        return Some(DegradeReason::DamagedSection(section));
    }
    // Degraded index: prefer the raw term-space scorer; without one, the
    // live-subspace LSI answer is still served, but marked.
    if state.index_degraded {
        return Some(DegradeReason::DegradedIndex);
    }
    None
}

/// Answers one query in degraded mode: the raw term-space scorer when a
/// fallback is attached, the surviving LSI state otherwise — either way
/// marked with `reason`.
fn degraded_response(
    state: &EngineState,
    query: &Query,
    hard: &CancelToken,
    reason: DegradeReason,
) -> Result<QueryResponse, QueryError> {
    let hits = match &state.raw {
        Some(raw) => raw.query(&query.terms, query.top_k),
        None => state
            .served
            .index()
            .try_query(&query.terms, query.top_k, Some(hard))
            .map_err(map_lsi_error)?,
    };
    hard.check().map_err(|_| QueryError::DeadlineExceeded)?;
    Ok(QueryResponse::Degraded { hits, reason })
}

/// The coalesced counterpart of [`handle_job`]: resolves every job in the
/// batch, scoring all still-live queries in one pass over the document
/// rows via [`LsiIndex::query_vectors_batch`].
///
/// Every per-query decision — hard-deadline admission, validation,
/// degraded routing, soft-deadline fallback — is made with the same
/// predicates, in the same order, with the same per-job tokens as the
/// sequential path, and the batched scorer is bitwise identical to
/// [`LsiIndex::try_query_vector`], so the response for each job is
/// exactly what [`handle_job`] would have produced for it.
fn handle_batch(shared: &Shared, jobs: &[Job]) -> Vec<Result<QueryResponse, QueryError>> {
    debug_assert!(
        shared.config.fault_hook.is_none(),
        "coalescing is disabled under a fault hook"
    );

    // Per-job hard deadlines, measured from each job's own submission.
    let hards: Vec<CancelToken> = jobs
        .iter()
        .map(|job| match shared.config.deadline {
            Some(d) => CancelToken::with_deadline_at(job.submitted_at + d),
            None => CancelToken::new(),
        })
        .collect();

    let state = shared
        .state
        .read()
        .unwrap_or_else(|poison| poison.into_inner());
    let index = state.served.index();

    // Resolve admission, validation, and degraded routing per job; jobs
    // still unresolved afterwards are the healthy-path scoring set.
    let mut results: Vec<Option<Result<QueryResponse, QueryError>>> = jobs
        .iter()
        .zip(&hards)
        .map(|(job, hard)| {
            if hard.is_cancelled() {
                return Some(Err(QueryError::DeadlineExceeded));
            }
            if let Err(e) = index.validate_query(&job.query.terms) {
                return Some(Err(map_lsi_error(e)));
            }
            degrade_reason(&state).map(|reason| degraded_response(&state, &job.query, hard, reason))
        })
        .collect();

    // Healthy path: fold in the surviving queries and score them together.
    // Soft deadlines are per job (each measured from its own submission),
    // carried by per-entry child tokens exactly as in the sequential path.
    let soft = match (&state.raw, shared.config.soft_deadline) {
        (Some(_), Some(soft)) => Some(soft),
        _ => None,
    };
    let mut live: Vec<usize> = Vec::new();
    let mut folded: Vec<Vec<f64>> = Vec::new();
    let mut tokens: Vec<CancelToken> = Vec::new();
    for (i, (job, hard)) in jobs.iter().zip(&hards).enumerate() {
        if results[i].is_some() {
            continue;
        }
        folded.push(index.fold_in(&job.query.terms));
        tokens.push(match soft {
            Some(s) => hard.child_with_deadline_at(job.submitted_at + s),
            None => hard.clone(),
        });
        live.push(i);
    }
    let batch: Vec<VectorQuery<'_>> = live
        .iter()
        .enumerate()
        .map(|(slot, &i)| VectorQuery {
            vector: &folded[slot],
            top_k: jobs[i].query.top_k,
            cancel: Some(&tokens[slot]),
        })
        .collect();
    for (slot, scored) in index.query_vectors_batch(&batch).into_iter().enumerate() {
        let i = live[slot];
        let job = &jobs[i];
        let hard = &hards[i];
        let resolved = match scored {
            Ok(hits) => Ok(QueryResponse::Ranked(hits)),
            Err(LsiError::Cancelled) => {
                if hard.is_cancelled() {
                    Err(QueryError::DeadlineExceeded)
                } else {
                    // Soft deadline fired with budget to spare: degrade to
                    // the raw term-space scorer (guaranteed present when a
                    // soft token was built).
                    // lsi-lint: allow(E1-panic-policy, "invariant: degraded mode is only entered when the fallback index exists")
                    let raw = state.raw.as_ref().expect("soft deadline implies fallback");
                    let hits = raw.query(&job.query.terms, job.query.top_k);
                    match hard.check() {
                        Ok(()) => Ok(QueryResponse::Degraded {
                            hits,
                            reason: DegradeReason::SoftDeadline,
                        }),
                        Err(_) => Err(QueryError::DeadlineExceeded),
                    }
                }
            }
            Err(e) => Err(map_lsi_error(e)),
        };
        results[i] = Some(resolved);
    }

    results
        .into_iter()
        // lsi-lint: allow(E1-panic-policy, "invariant: every job was resolved by exactly one of the passes above")
        .map(|r| r.expect("every job resolves"))
        .collect()
}

fn map_durability_error(e: DurabilityError) -> QueryError {
    match e {
        DurabilityError::Index(inner) => map_lsi_error(inner),
        DurabilityError::Storage(inner) => QueryError::Internal {
            detail: format!("journal append failed: {inner}"),
        },
    }
}

fn map_lsi_error(e: LsiError) -> QueryError {
    match e {
        LsiError::BadQuery(b) => QueryError::BadQuery(b),
        LsiError::Cancelled => QueryError::DeadlineExceeded,
        other => QueryError::Internal {
            detail: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiConfig;

    fn sample() -> (LsiIndex, TermDocumentMatrix) {
        let td = TermDocumentMatrix::from_triplets(
            6,
            5,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (0, 1, 1.0),
                (2, 2, 3.0),
                (3, 2, 1.0),
                (2, 3, 2.0),
                (4, 4, 1.0),
                (5, 4, 2.0),
            ],
        )
        .unwrap();
        let index = LsiIndex::build(&td, LsiConfig::with_rank(3)).unwrap();
        (index, td)
    }

    #[test]
    fn basic_query_round_trip() {
        let (index, td) = sample();
        let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
        let resp = engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap();
        assert!(!resp.is_degraded());
        assert!(!resp.hits().is_empty());
        let s = engine.stats();
        assert_eq!(s.completed_full, 1);
        assert!(s.consistent());
    }

    /// A deterministic mix of well-formed queries over the sample corpus.
    fn query_mix(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    vec![(i % 6, 1.0 + (i % 3) as f64), ((i + 2) % 6, 0.5)],
                    1 + i % 5,
                )
            })
            .collect()
    }

    #[test]
    fn coalesced_scoring_is_bitwise_sequential_and_books_balance() {
        let (index, _td) = sample();
        // Sequential spec for every query, straight from the index.
        let mix = query_mix(48);
        let want: Vec<Vec<(usize, u64)>> = mix
            .iter()
            .map(|q| {
                index
                    .try_query(&q.terms, q.top_k, None)
                    .unwrap()
                    .hits()
                    .iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect()
            })
            .collect();
        let engine = QueryEngine::new(
            index,
            EngineConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                ..EngineConfig::default()
            },
        );
        // A single worker facing a standing backlog must coalesce on some
        // pickup; submit waves until the counter proves it did (each wave
        // is also a full bitwise check against the sequential spec).
        let mut waves = 0;
        while engine.stats().batches == 0 {
            waves += 1;
            assert!(waves <= 50, "48-deep backlogs never produced a batch");
            let tickets: Vec<Ticket> = mix
                .iter()
                .map(|q| engine.submit(q.clone()).expect("queue sized for the wave"))
                .collect();
            for (ticket, want_bits) in tickets.into_iter().zip(&want) {
                let response = ticket.wait().expect("healthy engine query");
                assert!(matches!(response, QueryResponse::Ranked(_)));
                let got: Vec<(usize, u64)> = response
                    .hits()
                    .hits()
                    .iter()
                    .map(|h| (h.doc, h.score.to_bits()))
                    .collect();
                assert_eq!(&got, want_bits, "batched answer diverged");
            }
        }
        let s = engine.stats();
        assert!(s.batches >= 1);
        assert!(s.batched_queries >= 2 * s.batches);
        assert!(
            s.batched_queries <= 8 * s.batches,
            "a coalesced pass exceeded max_batch: {s:?}"
        );
        assert_eq!(s.completed_full, 48 * waves);
        assert!(s.consistent(), "{s:?}");
    }

    #[test]
    fn coalesced_soft_deadline_degrades_per_job() {
        let (index, td) = sample();
        let weighted = td.weighted(index.config().weighting);
        let raw = VectorSpaceIndex::build(&weighted);
        let engine = QueryEngine::with_fallback(
            index,
            &td,
            EngineConfig {
                workers: 1,
                queue_capacity: 64,
                soft_deadline: Some(Duration::ZERO),
                max_batch: 8,
                ..EngineConfig::default()
            },
        );
        // Every query's soft budget is already spent at pickup, so batched
        // entries come back Cancelled from the scorer and each one must
        // demultiplex into its own marked fallback answer.
        let mix = query_mix(32);
        let tickets: Vec<Ticket> = mix
            .iter()
            .map(|q| engine.submit(q.clone()).expect("queue sized for the load"))
            .collect();
        for (ticket, q) in tickets.into_iter().zip(&mix) {
            match ticket.wait().expect("healthy engine query") {
                QueryResponse::Degraded { hits, reason } => {
                    assert_eq!(reason, DegradeReason::SoftDeadline);
                    let want = raw.query(&q.terms, q.top_k);
                    assert_eq!(hits, want, "fallback answer diverged");
                }
                other => panic!("expected soft-deadline degrade, got {other:?}"),
            }
        }
        let s = engine.stats();
        assert_eq!(s.completed_degraded, 32);
        assert!(s.consistent(), "{s:?}");
    }

    #[test]
    fn bad_queries_are_typed_not_panics() {
        let (index, td) = sample();
        let n = index.n_terms();
        let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
        let oor = engine.query(Query::new(vec![(n + 1, 1.0)], 5));
        assert!(matches!(
            oor,
            Err(QueryError::BadQuery(BadQuery::TermOutOfRange { .. }))
        ));
        let nan = engine.query(Query::new(vec![(0, f64::NAN)], 5));
        assert!(matches!(
            nan,
            Err(QueryError::BadQuery(BadQuery::NonFiniteWeight { .. }))
        ));
        assert_eq!(engine.stats().bad_query, 2);
    }

    #[test]
    fn poison_scorer_is_isolated_and_worker_respawns() {
        let (index, td) = sample();
        let config = EngineConfig {
            workers: 2,
            fault_hook: Some(Arc::new(|tag| {
                if tag == 666 {
                    panic!("injected poison scorer");
                }
            })),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_fallback(index, &td, config);
        let poison = engine.query(Query {
            terms: vec![(0, 1.0)],
            top_k: 5,
            tag: 666,
        });
        match poison {
            Err(QueryError::Internal { detail }) => {
                assert!(detail.contains("poison"), "{detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The engine keeps serving on fresh worker incarnations.
        for _ in 0..8 {
            let ok = engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap();
            assert!(!ok.hits().is_empty());
        }
        // The respawn is recorded by the worker's supervisor *after* the
        // Internal reply reaches the caller, so it lands asynchronously;
        // wait (bounded) instead of racing the supervisor thread.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.stats().worker_respawns < 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let s = engine.stats();
        assert_eq!(s.internal, 1);
        assert_eq!(s.worker_respawns, 1);
        assert!(s.consistent());
    }

    #[test]
    fn slow_query_hits_hard_deadline() {
        let (index, td) = sample();
        let config = EngineConfig {
            workers: 2,
            deadline: Some(Duration::from_millis(40)),
            fault_hook: Some(Arc::new(|tag| {
                if tag == 7 {
                    std::thread::sleep(Duration::from_millis(200));
                }
            })),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_fallback(index, &td, config);
        let slow = engine.query(Query {
            terms: vec![(0, 1.0)],
            top_k: 5,
            tag: 7,
        });
        assert_eq!(slow, Err(QueryError::DeadlineExceeded));
        assert_eq!(engine.stats().timed_out, 1);
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        let (index, td) = sample();
        let config = EngineConfig {
            workers: 1,
            queue_capacity: 1,
            deadline: None,
            fault_hook: Some(Arc::new(|_| {
                std::thread::sleep(Duration::from_millis(30));
            })),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_fallback(index, &td, config);
        let mut tickets = Vec::new();
        let mut shed = 0;
        for _ in 0..12 {
            match engine.submit(Query::new(vec![(0, 1.0)], 3)) {
                Ok(t) => tickets.push(t),
                Err(QueryError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 1);
                    shed += 1;
                }
                Err(other) => panic!("unexpected admission error {other:?}"),
            }
        }
        assert!(shed > 0, "queue never filled");
        for t in tickets {
            t.wait().unwrap();
        }
        let s = engine.stats();
        assert_eq!(s.shed, shed);
        assert!(s.consistent(), "{s:?}");
    }

    #[test]
    fn soft_deadline_degrades_to_term_space() {
        let (index, td) = sample();
        let config = EngineConfig {
            soft_deadline: Some(Duration::ZERO), // degrade immediately
            deadline: Some(Duration::from_secs(30)),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_fallback(index, &td, config);
        let resp = engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap();
        match &resp {
            QueryResponse::Degraded { hits, reason } => {
                assert_eq!(*reason, DegradeReason::SoftDeadline);
                assert!(!hits.is_empty());
            }
            other => panic!("expected degraded response, got {other:?}"),
        }
        assert_eq!(engine.stats().completed_degraded, 1);
    }

    #[test]
    fn soft_deadline_without_fallback_is_ignored() {
        let (index, _td) = sample();
        let config = EngineConfig {
            soft_deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::new(index, config);
        let resp = engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap();
        assert!(!resp.is_degraded());
    }

    #[test]
    fn degraded_index_marks_responses() {
        // Two identical documents: true rank 1 < requested rank 2.
        let td = TermDocumentMatrix::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 0, 2.0), (0, 1, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
        assert!(matches!(index.build_status(), BuildStatus::Degraded { .. }));
        let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
        let resp = engine.query(Query::new(vec![(0, 1.0)], 5)).unwrap();
        match resp {
            QueryResponse::Degraded { hits, reason } => {
                assert_eq!(reason, DegradeReason::DegradedIndex);
                assert!(!hits.is_empty());
            }
            other => panic!("expected degraded response, got {other:?}"),
        }
    }

    #[test]
    fn add_document_is_immediately_searchable() {
        let (index, td) = sample();
        let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
        let before = engine.n_docs();
        let id = engine.add_document(&[(0, 3.0), (1, 1.0)]).unwrap();
        assert_eq!(id, before);
        assert_eq!(engine.n_docs(), before + 1);
        let resp = engine
            .query(Query::new(vec![(0, 1.0)], before + 1))
            .unwrap();
        assert!(resp.hits().doc_ids().contains(&id));
        // Malformed updates are typed errors.
        let bad = engine.add_document(&[(0, f64::INFINITY)]);
        assert!(matches!(bad, Err(QueryError::BadQuery(_))));
        assert_eq!(engine.stats().docs_added, 1);
    }

    #[test]
    fn durable_engine_journals_mutations_and_recovers() {
        let dir = std::env::temp_dir().join(format!("lsi_serve_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("index.lsix");

        let (index, _td) = sample();
        let durable = DurableIndex::create(&snapshot, index).unwrap();
        let engine = QueryEngine::with_durable(durable, EngineConfig::default());
        assert!(engine.is_durable());

        let before = engine.n_docs();
        engine.add_document(&[(0, 2.0), (1, 1.0)]).unwrap();
        engine.add_document(&[(2, 1.5)]).unwrap();
        assert_eq!(engine.n_docs(), before + 2);
        // Malformed updates never reach the journal.
        assert!(matches!(
            engine.add_document(&[(0, f64::NAN)]),
            Err(QueryError::BadQuery(_))
        ));
        let s = engine.stats();
        assert_eq!(s.docs_added, 2);
        assert!(s.consistent());

        // Pre-checkpoint crash model: journal replay restores both docs.
        let (recovered, report) = DurableIndex::open_durable(&snapshot).unwrap();
        assert_eq!(recovered.index().n_docs(), before + 2);
        assert_eq!(report.frames_replayed, 2);
        drop(recovered);

        assert!(engine.checkpoint().unwrap(), "durable engine compacts");
        let (recovered, report) = DurableIndex::open_durable(&snapshot).unwrap();
        assert_eq!(recovered.index().n_docs(), before + 2);
        assert_eq!(report.snapshot_docs, before + 2);
        assert_eq!(report.frames_replayed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_engine_checkpoint_is_a_typed_no_op() {
        let (index, td) = sample();
        let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
        assert!(!engine.is_durable());
        assert_eq!(engine.checkpoint(), Ok(false));
    }

    #[test]
    fn shutdown_resolves_outstanding_tickets() {
        let (index, td) = sample();
        let config = EngineConfig {
            workers: 1,
            queue_capacity: 16,
            deadline: None,
            fault_hook: Some(Arc::new(|_| {
                std::thread::sleep(Duration::from_millis(5));
            })),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_fallback(index, &td, config);
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| engine.submit(Query::new(vec![(0, 1.0)], 3)).unwrap())
            .collect();
        engine.shutdown(); // drains the queue and joins workers
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    /// Worker scoring composes with the linalg thread knob: the index build
    /// and every scored query run through the parallel kernels, and the
    /// ranked results (documents *and* scores, bitwise) are identical for
    /// every `LSI_THREADS` setting.
    #[test]
    fn scoring_is_bitwise_invariant_across_linalg_threads() {
        use lsi_linalg::parallel::set_threads;

        let run = |threads: usize| {
            set_threads(threads);
            let (index, td) = sample();
            let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
            let resp = engine
                .query(Query::new(vec![(0, 1.0), (2, 0.5)], 5))
                .unwrap();
            resp.hits()
                .hits()
                .iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect::<Vec<_>>()
        };
        let reference = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), reference, "scoring differs at {t} linalg threads");
        }
        set_threads(0);
    }
}
