//! Process supervision for out-of-process shard daemons.
//!
//! [`ShardSupervisor::launch`] turns a shard directory (the
//! `shard-NNN.lsix` + journal layout that [`Cluster::create`] writes) into
//! a running cross-process cluster: one `lsi shard-serve` daemon per
//! shard, each reached over its own Unix domain socket, all behind the
//! same [`Cluster`] coordinator the in-process mode uses — so every
//! Complete answer is bitwise identical across the two modes.
//!
//! ## Supervision loop
//!
//! A heartbeat thread wakes every [`SupervisorConfig::heartbeat_interval`]
//! and, per shard, first reaps exited children (`try_wait`, which is what
//! notices a SIGKILL) and then pings the daemon over RPC. A dead or
//! persistently unresponsive shard is **respawned**: kill + reap whatever
//! is left, start a fresh daemon on the same snapshot but a **fresh,
//! never-reused socket path** (`shard-NNN.gK.sock`), wait out its journal
//! replay with bounded backoff (riding the hello RPC's
//! [`RetryPolicy`]-style retries), and swap the new transport into the
//! coordinator with a **bumped incarnation** — in-flight queries holding
//! the pre-crash id snapshot never hedge into the recovered daemon,
//! exactly the in-process `crash_shard_with` contract. The fresh path is
//! what extends that contract to per-path transports: until the swap
//! lands, the coordinator's old transport still scatters by the old path,
//! and its id map can disagree with the replayed daemon (a retire
//! journaled but killed before its ack). On a reused path those scatters
//! would reach the new incarnation and mis-map its answers; on a fresh
//! path they fail to connect and the shard honestly degrades instead.
//!
//! ## Lost-ack reconciliation
//!
//! A kill can land between a daemon fsyncing a mutation and the
//! coordinator receiving the ack. The journal is the truth: the respawned
//! daemon replays it and reports the replayed id map in its hello, and the
//! coordinator **adopts** that map (superseding its own), so
//! journaled-but-unacked documents reappear and unjournaled ones stay
//! gone — at-most-once on the wire, exactly-once after recovery.
//!
//! ## Adoption
//!
//! `launch` first tries the sockets of an already-running daemon (every
//! `shard-NNN*.sock` candidate — a prior supervisor may have respawned
//! past the base path) and only spawns a child when no hello answers — so
//! supervisors can hand clusters over without a restart storm.
//! Non-adopted candidate files are swept as stale. Adopted daemons have
//! no `Child` handle; they are supervised by ping alone.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsi_core::StorageError;

use crate::cluster::{Cluster, ClusterConfig, ClusterError};
use crate::transport::{RemoteShard, ShardPart, ShardTransport};

/// How to start one shard daemon: a program plus fixed leading arguments;
/// the supervisor appends `--snapshot <path> --socket <path> --workers N
/// --deadline-ms M` per shard.
#[derive(Debug, Clone)]
pub struct DaemonCommand {
    /// Executable to run (`lsi` in production; the test harness re-execs
    /// itself).
    pub program: PathBuf,
    /// Leading arguments (e.g. `["shard-serve"]`).
    pub args: Vec<String>,
}

impl DaemonCommand {
    /// A command running `program` with `args` before the per-shard flags.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        DaemonCommand {
            program: program.into(),
            args,
        }
    }
}

/// Tuning knobs for a [`ShardSupervisor`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Cadence of the reap-and-ping supervision loop.
    pub heartbeat_interval: Duration,
    /// Budget for a freshly spawned daemon to finish its journal replay
    /// and answer its first hello.
    pub connect_timeout: Duration,
    /// Per-RPC deadline applied by every shard transport.
    pub rpc_timeout: Duration,
    /// Worker threads per shard daemon.
    pub workers: usize,
    /// Consecutive failed pings after which a live-looking process is
    /// declared wedged and respawned.
    pub ping_failures_before_respawn: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_interval: Duration::from_millis(100),
            connect_timeout: Duration::from_secs(10),
            rpc_timeout: Duration::from_secs(1),
            workers: 2,
            ping_failures_before_respawn: 5,
        }
    }
}

/// One supervised daemon: its child handle (None for adopted daemons),
/// pid, consecutive ping-failure count, and the socket path of the
/// incarnation currently (or last) installed in the coordinator.
struct Worker {
    child: Option<Child>,
    pid: u32,
    ping_failures: u32,
    /// Socket of this shard's current incarnation. Every respawn binds a
    /// **fresh** path (see [`incarnation_socket_path`]) so a coordinator
    /// transport created for an earlier incarnation — which connects by
    /// path, per RPC — can never reach the replacement daemon: its
    /// connects fail and the shard honestly degrades until the swap
    /// installs the new transport, id map, and incarnation atomically.
    socket: PathBuf,
    /// Monotonic incarnation counter feeding the socket naming; bumped
    /// before every respawn attempt so even failed attempts never reuse
    /// a path.
    incarnation: u64,
}

/// State shared between the supervisor handle and its heartbeat thread.
struct Shared {
    cluster: Arc<Cluster>,
    workers: Mutex<Vec<Worker>>,
    snapshots: Vec<PathBuf>,
    dir: PathBuf,
    command: DaemonCommand,
    config: SupervisorConfig,
    hard_deadline: Duration,
    stop: AtomicBool,
}

/// Spawns, adopts, heartbeats, and respawns the shard daemons behind a
/// cross-process [`Cluster`].
pub struct ShardSupervisor {
    shared: Arc<Shared>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

/// Socket filename for shard `shard`'s first incarnation under `dir`.
fn shard_socket_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.sock"))
}

/// Socket filename for shard `shard`'s `incarnation`-th respawn:
/// `shard-NNN.sock` for the first incarnation, `shard-NNN.gK.sock` after.
/// Paths are never reused across incarnations — socket identity IS
/// incarnation identity, which is what keeps stale per-path transports
/// from crossing a respawn.
fn incarnation_socket_path(dir: &Path, shard: usize, incarnation: u64) -> PathBuf {
    if incarnation == 0 {
        shard_socket_path(dir, shard)
    } else {
        dir.join(format!("shard-{shard:03}.g{incarnation}.sock"))
    }
}

/// All socket files under `dir` that belong to shard `shard` — the base
/// `shard-NNN.sock` plus any `shard-NNN.gK.sock` left by respawns of a
/// previous supervisor. Returned as `(incarnation, path)`, base first.
fn shard_socket_candidates(dir: &Path, shard: usize) -> Vec<(u64, PathBuf)> {
    let prefix = format!("shard-{shard:03}");
    let mut found: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter_map(|path| {
            let name = path.file_name()?.to_str()?;
            let middle = name.strip_prefix(&prefix)?.strip_suffix(".sock")?;
            if middle.is_empty() {
                Some((0, path))
            } else {
                let gen: u64 = middle.strip_prefix(".g")?.parse().ok()?;
                Some((gen, path))
            }
        })
        .collect();
    found.sort();
    found
}

/// Sorted `shard-NNN.lsix` snapshots under `dir`.
fn discover_snapshots(dir: &Path) -> Result<Vec<PathBuf>, ClusterError> {
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(StorageError::from)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".lsix"))
        })
        .collect();
    snapshots.sort();
    if snapshots.is_empty() {
        return Err(ClusterError::BadOperation(format!(
            "no shard-NNN.lsix snapshots under {}",
            dir.display()
        )));
    }
    Ok(snapshots)
}

/// Spawns one daemon process for (`snapshot`, `socket`).
fn spawn_daemon(
    command: &DaemonCommand,
    config: &SupervisorConfig,
    hard_deadline: Duration,
    snapshot: &Path,
    socket: &Path,
) -> Result<Child, ClusterError> {
    Command::new(&command.program)
        .args(&command.args)
        .arg("--snapshot")
        .arg(snapshot)
        .arg("--socket")
        .arg(socket)
        .arg("--workers")
        .arg(config.workers.to_string())
        .arg("--deadline-ms")
        .arg(hard_deadline.as_millis().to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| {
            ClusterError::BadOperation(format!(
                "failed to spawn shard daemon {}: {e}",
                command.program.display()
            ))
        })
}

/// Retries the hello handshake with doubling backoff until `timeout` —
/// the daemon may still be mid journal replay.
fn hello_with_backoff(
    shard: &RemoteShard,
    timeout: Duration,
) -> Result<(u32, Vec<Option<u64>>), ClusterError> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(2);
    loop {
        match shard.hello() {
            Ok(hello) => return Ok(hello),
            Err(e) => {
                if Instant::now() + backoff >= deadline {
                    return Err(ClusterError::BadOperation(format!(
                        "shard daemon on {} never answered hello: {e}",
                        shard.socket().display()
                    )));
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
        }
    }
}

impl ShardSupervisor {
    /// Brings up a cross-process cluster over the shard directory `dir`:
    /// per shard, adopt an already-listening daemon or spawn a fresh one
    /// via `command`, handshake, and assemble the coordinator from the
    /// hello-reported id maps. The basis is read (read-only) from the
    /// first shard snapshot — the daemons own their journals exclusively.
    ///
    /// # Errors
    /// [`ClusterError`] when the directory holds no shards, a daemon
    /// cannot be spawned, or a daemon never answers its hello within
    /// [`SupervisorConfig::connect_timeout`].
    pub fn launch(
        dir: &Path,
        cluster_config: ClusterConfig,
        command: DaemonCommand,
        config: SupervisorConfig,
    ) -> Result<(Arc<Cluster>, ShardSupervisor), ClusterError> {
        let snapshots = discover_snapshots(dir)?;

        // The shared basis, read without touching any journal (recovery,
        // and therefore journal writes, are strictly daemon business).
        let basis = {
            let file = std::fs::File::open(&snapshots[0]).map_err(StorageError::from)?;
            let mut reader = std::io::BufReader::new(file);
            lsi_core::read_index(&mut reader)
                .map_err(ClusterError::Storage)?
                .basis_clone()
        };

        let mut workers = Vec::with_capacity(snapshots.len());
        let mut parts: Vec<ShardPart> = Vec::with_capacity(snapshots.len());
        for (shard, snapshot) in snapshots.iter().enumerate() {
            // Adopt a surviving daemon when one already answers on any of
            // the shard's candidate sockets — a previous supervisor may
            // have respawned past the base path. Non-adopted candidates
            // are stale files; sweep them so they cannot be mistaken for
            // live incarnations later.
            let candidates = shard_socket_candidates(dir, shard);
            let max_incarnation = candidates.iter().map(|(gen, _)| *gen).max().unwrap_or(0);
            let mut adopted: Option<(RemoteShard, u32, Vec<Option<u64>>)> = None;
            for (_, candidate) in &candidates {
                if adopted.is_some() {
                    break;
                }
                let transport = RemoteShard::new(candidate.clone(), config.rpc_timeout);
                if let Ok((pid, ids)) = transport.hello() {
                    adopted = Some((transport, pid, ids));
                }
            }
            for (_, candidate) in &candidates {
                if adopted
                    .as_ref()
                    .is_none_or(|(t, _, _)| t.socket() != candidate)
                {
                    let _ = std::fs::remove_file(candidate);
                }
            }
            match adopted {
                Some((transport, pid, ids)) => {
                    workers.push(Worker {
                        child: None,
                        pid,
                        ping_failures: 0,
                        socket: transport.socket().to_path_buf(),
                        incarnation: max_incarnation,
                    });
                    parts.push((Box::new(transport), ids));
                }
                None => {
                    let socket = shard_socket_path(dir, shard);
                    let child = spawn_daemon(
                        &command,
                        &config,
                        cluster_config.hard_deadline,
                        snapshot,
                        &socket,
                    )?;
                    let transport = RemoteShard::new(socket.clone(), config.rpc_timeout);
                    let (pid, ids) = hello_with_backoff(&transport, config.connect_timeout)?;
                    workers.push(Worker {
                        child: Some(child),
                        pid,
                        ping_failures: 0,
                        socket,
                        incarnation: 0,
                    });
                    parts.push((Box::new(transport), ids));
                }
            }
        }

        let hard_deadline = cluster_config.hard_deadline;
        let cluster = Arc::new(Cluster::from_remote_parts(
            basis,
            parts,
            dir.to_path_buf(),
            cluster_config,
        )?);

        let shared = Arc::new(Shared {
            cluster: Arc::clone(&cluster),
            workers: Mutex::new(workers),
            snapshots,
            dir: dir.to_path_buf(),
            command,
            config,
            hard_deadline,
            stop: AtomicBool::new(false),
        });
        let heartbeat = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lsi-shard-heartbeat".to_string())
                .spawn(move || heartbeat_loop(&shared))
                .map_err(|e| {
                    ClusterError::BadOperation(format!("failed to start heartbeat thread: {e}"))
                })?
        };
        Ok((
            cluster,
            ShardSupervisor {
                shared,
                heartbeat: Some(heartbeat),
            },
        ))
    }

    /// SIGKILLs shard `shard`'s daemon process — the chaos harness's kill
    /// switch. The corpse is *not* reaped here; the heartbeat notices the
    /// death, reaps it, and respawns. No-op for adopted daemons (no child
    /// handle to kill).
    ///
    /// # Errors
    /// [`ClusterError::BadOperation`] for an out-of-range shard.
    pub fn kill_shard(&self, shard: usize) -> Result<(), ClusterError> {
        let mut workers = lock_workers(&self.shared);
        let worker = workers
            .get_mut(shard)
            .ok_or_else(|| ClusterError::BadOperation(format!("shard {shard} out of range")))?;
        if let Some(child) = &mut worker.child {
            let _ = child.kill();
        }
        Ok(())
    }

    /// Kills (if needed), reaps, respawns, and re-adopts shard `shard`'s
    /// daemon, swapping the fresh transport into the coordinator with a
    /// bumped incarnation. Normally the heartbeat's job; exposed for
    /// deterministic tests.
    ///
    /// # Errors
    /// [`ClusterError`] when the respawned daemon cannot be started or
    /// never answers its hello.
    pub fn respawn_shard(&self, shard: usize) -> Result<(), ClusterError> {
        respawn(&self.shared, shard)
    }

    /// The supervised daemons' pids, shard-index order.
    pub fn pids(&self) -> Vec<u32> {
        lock_workers(&self.shared).iter().map(|w| w.pid).collect()
    }

    /// Stops the heartbeat, asks every daemon to shut down cleanly, and
    /// reaps every child — escalating to SIGKILL for daemons that ignore
    /// the request. Socket files are removed (daemons remove their own on
    /// clean exit; this sweeps the rest).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        let mut workers = lock_workers(&self.shared);
        for worker in workers.iter_mut() {
            let remote = RemoteShard::new(worker.socket.clone(), self.shared.config.rpc_timeout);
            let _ = remote.send_shutdown();
            if let Some(child) = &mut worker.child {
                let deadline = Instant::now() + self.shared.config.connect_timeout;
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() >= deadline => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(_) => break,
                    }
                }
            }
        }
        // Sweep every incarnation's socket file — the current ones plus
        // anything a respawn racing this shutdown may have left.
        for shard in 0..self.shared.snapshots.len() {
            for (_, socket) in shard_socket_candidates(&self.shared.dir, shard) {
                let _ = std::fs::remove_file(&socket);
            }
        }
    }
}

impl Drop for ShardSupervisor {
    fn drop(&mut self) {
        // Last-resort hygiene for a dropped (not shut down) supervisor:
        // stop the heartbeat and reap hard, so tests never leak zombies.
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        let mut workers = lock_workers(&self.shared);
        for worker in workers.iter_mut() {
            if let Some(child) = &mut worker.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

fn lock_workers(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<Worker>> {
    shared.workers.lock().unwrap_or_else(|p| p.into_inner())
}

/// The reap-and-ping supervision loop.
fn heartbeat_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::Acquire) {
        for shard in 0..shared.snapshots.len() {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let (needs_respawn, socket) = {
                let mut workers = lock_workers(shared);
                let Some(worker) = workers.get_mut(shard) else {
                    continue;
                };
                let dead = match &mut worker.child {
                    // try_wait reaps the zombie a SIGKILL leaves behind.
                    Some(child) => matches!(child.try_wait(), Ok(Some(_))),
                    // Adopted daemon: ping-only supervision below.
                    None => false,
                };
                (dead, worker.socket.clone())
            };
            if needs_respawn {
                let _ = respawn(shared, shard);
                continue;
            }
            let remote = RemoteShard::new(socket, shared.config.rpc_timeout);
            let ping_failed = remote.ping().is_err();
            let over_limit = {
                let mut workers = lock_workers(shared);
                let Some(worker) = workers.get_mut(shard) else {
                    continue;
                };
                if ping_failed {
                    worker.ping_failures += 1;
                } else {
                    worker.ping_failures = 0;
                }
                worker.ping_failures >= shared.config.ping_failures_before_respawn
            };
            if over_limit {
                let _ = respawn(shared, shard);
            }
        }
        std::thread::sleep(shared.config.heartbeat_interval);
    }
}

/// Kill + reap + spawn + hello + swap-with-bumped-incarnation for one
/// shard. The worker lock is *not* held across the slow parts (spawn and
/// replay-bounded hello), so other shards keep being supervised.
///
/// The replacement binds a **fresh socket path** ([`incarnation_socket_path`])
/// and the dead incarnation's path is removed before the spawn. This is a
/// correctness requirement, not hygiene: coordinator transports connect
/// by path per RPC, so until [`Cluster::swap_shard_transport`] installs
/// the new transport the coordinator still scatters through the old one —
/// whose id map can disagree with the replayed daemon (a retire journaled
/// but killed before its ack leaves the coordinator mapping a local the
/// replay zeroed). Reusing the path would let those stale scatters reach
/// the new incarnation and mis-map its answers into a Complete reply;
/// with a fresh path they fail to connect and the shard honestly degrades
/// until the swap lands.
fn respawn(shared: &Shared, shard: usize) -> Result<(), ClusterError> {
    let (old_socket, socket) = {
        let mut workers = lock_workers(shared);
        let worker = workers
            .get_mut(shard)
            .ok_or_else(|| ClusterError::BadOperation(format!("shard {shard} out of range")))?;
        if let Some(mut child) = worker.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // Bump before the attempt: even a failed respawn burns its path,
        // so no two daemon processes can ever have bound the same one.
        worker.incarnation += 1;
        let old_socket = std::mem::replace(
            &mut worker.socket,
            incarnation_socket_path(&shared.dir, shard, worker.incarnation),
        );
        (old_socket, worker.socket.clone())
    };
    // The SIGKILLed incarnation's socket file lingers (the kernel removes
    // the listener, not the path); sweep it now so the only socket files
    // on disk are live or about-to-be-live incarnations.
    let _ = std::fs::remove_file(&old_socket);
    let child = spawn_daemon(
        &shared.command,
        &shared.config,
        shared.hard_deadline,
        &shared.snapshots[shard],
        &socket,
    )?;
    let transport = RemoteShard::new(socket.clone(), shared.config.rpc_timeout);
    let (pid, ids) = match hello_with_backoff(&transport, shared.config.connect_timeout) {
        Ok(hello) => hello,
        Err(e) => {
            // The replacement is wedged too: reap it, drop its socket
            // file, and leave the shard down (slot intact, scatter skips
            // it) for the next heartbeat to try again on yet another
            // fresh path.
            let mut child = child;
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(&socket);
            return Err(e);
        }
    };
    // The journal's truth (hello ids) supersedes the coordinator's map —
    // see the module docs on lost-ack reconciliation.
    shared
        .cluster
        .swap_shard_transport(shard, Box::new(transport), ids)?;
    {
        let mut workers = lock_workers(shared);
        if let Some(worker) = workers.get_mut(shard) {
            worker.child = Some(child);
            worker.pid = pid;
            worker.ping_failures = 0;
        }
    }
    // Close the breaker: the shard is healthy again.
    shared.cluster.revive(shard)?;
    Ok(())
}
