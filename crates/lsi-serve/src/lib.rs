#![forbid(unsafe_code)]
//! Resilient concurrent query serving for LSI indexes.
//!
//! The paper's retrieval model is a pure function: project a query into the
//! rank-`k` LSI subspace and rank documents by cosine. This crate wraps that
//! function in the machinery a long-running service needs to keep answering
//! under load and partial failure:
//!
//! - **Deadlines & cancellation** — every query carries a hard deadline;
//!   the scoring loops in `lsi-core` poll a [`CancelToken`] and abandon
//!   work cooperatively once it expires ([`QueryError::DeadlineExceeded`]).
//! - **Admission control** — a bounded submission queue sheds excess load
//!   at the front door ([`QueryError::Overloaded`]) instead of queueing
//!   unboundedly.
//! - **Panic isolation** — each query runs inside `catch_unwind`; a panic
//!   becomes [`QueryError::Internal`] for that one caller and the worker
//!   respawns, so one poisoned query never takes the service down.
//! - **Graceful degradation** — an index built at degraded rank, or a
//!   query that overruns its *soft* deadline, is answered by the raw
//!   term-space scorer from `lsi-ir` and the response is explicitly marked
//!   [`QueryResponse::Degraded`].
//! - **Observability** — a lock-free [`ServeStats`] block counts every
//!   admission decision and terminal outcome plus a latency histogram, with
//!   an accounting identity ([`StatsSnapshot::consistent`]) the chaos suite
//!   asserts after every storm.
//! - **Sharded scatter-gather** — [`Cluster`] partitions the corpus across
//!   N durable shards (one journal and worker pool each) behind a
//!   coordinator with hedged retries, a consecutive-failure circuit
//!   breaker, and quorum-gated partial answers; the order-fixed
//!   [`merge_top_k`] reduction keeps merged rankings bitwise identical for
//!   every shard count and reply order.
//! - **Process isolation** — every shard sits behind a [`ShardTransport`]:
//!   in-process ([`LocalShard`]) or a separate `lsi shard-serve` daemon
//!   reached over a Unix-domain-socket RPC protocol ([`RemoteShard`],
//!   [`daemon`]) framed with the journal's CRC discipline. A
//!   [`ShardSupervisor`] spawns/adopts the daemons, heartbeats them, and
//!   respawns kill -9 casualties from their journals with a bumped
//!   incarnation — Complete answers stay bitwise identical to
//!   single-process mode for every transport and kill schedule.
//!
//! Concurrency is std-only: a fixed pool of named worker threads, a bounded
//! `sync_channel` for admission, and an `RwLock` around the index so
//! fold-in updates serialize against reads.
//!
//! # Examples
//!
//! ```
//! use lsi_core::{LsiConfig, LsiIndex};
//! use lsi_ir::TermDocumentMatrix;
//! use lsi_serve::{EngineConfig, Query, QueryEngine};
//!
//! let td = TermDocumentMatrix::from_triplets(
//!     3,
//!     3,
//!     &[(0, 0, 2.0), (1, 0, 1.0), (0, 1, 1.0), (2, 2, 3.0)],
//! )
//! .unwrap();
//! let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
//! let engine = QueryEngine::with_fallback(index, &td, EngineConfig::default());
//! let response = engine.query(Query::new(vec![(0, 1.0)], 3)).unwrap();
//! assert!(!response.hits().is_empty());
//! println!("{}", engine.stats().table());
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod daemon;
mod engine;
pub mod stats;
pub mod supervisor;
pub mod transport;

pub use cluster::{
    merge_top_k, Cluster, ClusterConfig, ClusterDegradeReason, ClusterError, ClusterResponse,
};
pub use daemon::{run_shard_daemon, ShardDaemonConfig};
pub use engine::{
    DegradeReason, EngineConfig, FaultHook, Query, QueryEngine, QueryError, QueryResponse, Ticket,
};
pub use lsi_core::cancel::CancelToken;
pub use stats::{
    ClusterStatsSnapshot, Outcome, ServeStats, ShardStatsRow, StatsSnapshot, LATENCY_BUCKETS_US,
};
pub use supervisor::{DaemonCommand, ShardSupervisor, SupervisorConfig};
pub use transport::{
    LocalShard, PendingReply, RemoteShard, ShardPart, ShardTransport, TransportError,
};
