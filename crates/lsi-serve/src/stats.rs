//! Engine-level serving statistics: admission, outcomes, latency.
//!
//! Every query submitted to a [`QueryEngine`](crate::QueryEngine) ends in
//! exactly one terminal state, and the counters here are written at the
//! moment that state is decided, so at quiescence (all tickets resolved)
//! the books balance:
//!
//! ```text
//! submitted = shed + admitted
//! admitted  = completed_full + completed_degraded
//!           + timed_out + bad_query + internal     (once drained)
//! ```
//!
//! [`StatsSnapshot::consistent`] checks exactly that identity; the chaos
//! suite asserts it after every storm.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper edges of the latency histogram buckets, in microseconds; the
/// final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Terminal state of one admitted query, as recorded in [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Full-fidelity LSI-space answer.
    CompletedFull,
    /// Answered, but through the degraded path (term-space fallback or a
    /// degraded index).
    CompletedDegraded,
    /// The hard deadline expired before an answer was produced.
    TimedOut,
    /// The query itself was malformed; rejected before scoring.
    BadQuery,
    /// A panic or unexpected error inside the worker; the submitter got
    /// `QueryError::Internal`.
    Internal,
}

/// Lock-free counter block shared by the engine and its workers.
#[derive(Debug, Default)]
pub struct ServeStats {
    submitted: AtomicU64,
    shed: AtomicU64,
    admitted: AtomicU64,
    completed_full: AtomicU64,
    completed_degraded: AtomicU64,
    timed_out: AtomicU64,
    bad_query: AtomicU64,
    internal: AtomicU64,
    worker_respawns: AtomicU64,
    docs_added: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    latency: [AtomicU64; 6],
}

impl ServeStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_doc_added(&self) {
        self.docs_added.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced scoring pass over `n ≥ 2` queries. Single-job
    /// pickups are not batches and are not recorded here.
    pub(crate) fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records one terminal outcome plus its end-to-end latency
    /// (submission to resolution).
    pub(crate) fn record_outcome(&self, outcome: Outcome, latency: Duration) {
        let counter = match outcome {
            Outcome::CompletedFull => &self.completed_full,
            Outcome::CompletedDegraded => &self.completed_degraded,
            Outcome::TimedOut => &self.timed_out,
            Outcome::BadQuery => &self.bad_query,
            Outcome::Internal => &self.internal,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            completed_full: self.completed_full.load(Ordering::Relaxed),
            completed_degraded: self.completed_degraded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            bad_query: self.bad_query.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            docs_added: self.docs_added.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            latency: std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed)),
        }
    }
}

/// An immutable copy of [`ServeStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries offered to the engine (admitted or shed).
    pub submitted: u64,
    /// Queries rejected at admission because the queue was full.
    pub shed: u64,
    /// Queries accepted into the submission queue.
    pub admitted: u64,
    /// Full-fidelity LSI answers.
    pub completed_full: u64,
    /// Degraded-mode answers (term-space fallback or degraded index).
    pub completed_degraded: u64,
    /// Hard-deadline expiries.
    pub timed_out: u64,
    /// Malformed queries rejected with a typed error.
    pub bad_query: u64,
    /// Worker panics / unexpected failures surfaced as internal errors.
    pub internal: u64,
    /// Times a worker was respawned after a panic escaped a job.
    pub worker_respawns: u64,
    /// Documents folded in through the engine.
    pub docs_added: u64,
    /// Coalesced scoring passes (a free worker picked up ≥ 2 queued
    /// queries and scored them in one pass over the document rows).
    pub batches: u64,
    /// Queries resolved through those coalesced passes. Batching never
    /// changes answers — only the number of passes over the document
    /// rows — so this is a throughput diagnostic, not a terminal state:
    /// every batched query still lands in exactly one outcome counter.
    pub batched_queries: u64,
    /// Latency histogram; bucket `i` counts resolutions with latency
    /// `≤ LATENCY_BUCKETS_US[i]` µs (last bucket: everything slower).
    pub latency: [u64; 6],
}

impl StatsSnapshot {
    /// Number of admitted queries that reached a terminal state.
    pub fn resolved(&self) -> u64 {
        self.completed_full
            + self.completed_degraded
            + self.timed_out
            + self.bad_query
            + self.internal
    }

    /// The accounting identity at quiescence: every submission was either
    /// shed at admission or resolved to exactly one terminal state. While
    /// queries are still in flight, `resolved()` lags `admitted` and this
    /// returns `false`.
    pub fn consistent(&self) -> bool {
        self.submitted == self.shed + self.admitted && self.admitted == self.resolved()
    }

    /// A fixed-width human-readable table of every counter.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("serve stats\n");
        out.push_str(&format!("  submitted          {:>10}\n", self.submitted));
        out.push_str(&format!("  shed (overload)    {:>10}\n", self.shed));
        out.push_str(&format!("  admitted           {:>10}\n", self.admitted));
        out.push_str(&format!(
            "  completed          {:>10}  ({} full, {} degraded)\n",
            self.completed_full + self.completed_degraded,
            self.completed_full,
            self.completed_degraded
        ));
        out.push_str(&format!("  timed out          {:>10}\n", self.timed_out));
        out.push_str(&format!("  bad query          {:>10}\n", self.bad_query));
        out.push_str(&format!("  internal errors    {:>10}\n", self.internal));
        out.push_str(&format!(
            "  worker respawns    {:>10}\n",
            self.worker_respawns
        ));
        out.push_str(&format!("  docs folded in     {:>10}\n", self.docs_added));
        out.push_str(&format!(
            "  batched            {:>10}  (in {} coalesced passes)\n",
            self.batched_queries, self.batches
        ));
        out.push_str("  latency            ");
        let labels = ["≤100µs", "≤1ms", "≤10ms", "≤100ms", "≤1s", ">1s"];
        for (label, count) in labels.iter().zip(self.latency.iter()) {
            out.push_str(&format!("{label}:{count}  "));
        }
        out.push('\n');
        out
    }
}

/// One shard's row in a [`ClusterStatsSnapshot`]: coordinator-side health
/// counters plus the shard engine's own [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatsRow {
    /// Shard index (stable for the cluster's lifetime).
    pub shard: usize,
    /// Documents currently visible through the shard's id map.
    pub docs: usize,
    /// Tombstoned id-map slots (documents moved away or retired).
    pub tombstones: usize,
    /// Queries the coordinator scattered to this shard.
    pub queries: u64,
    /// Scattered queries this shard failed to answer (submit rejection,
    /// worker error, or hard-deadline expiry).
    pub failures: u64,
    /// Current consecutive-failure count feeding the circuit breaker.
    pub consecutive_failures: u64,
    /// Soft-deadline expiries observed by the coordinator (each one
    /// triggers a hedged retry to the shard's pool).
    pub deadline_hits: u64,
    /// Hedged retries actually submitted.
    pub hedges: u64,
    /// True once the circuit breaker ejected the shard from the scatter
    /// set (cleared by [`Cluster::revive`](crate::cluster::Cluster::revive)).
    pub ejected: bool,
    /// The shard engine's own counters (includes `shed` — queries dropped
    /// at the shard's admission queue).
    pub engine: StatsSnapshot,
}

/// A point-in-time copy of a cluster coordinator's counters, one
/// [`ShardStatsRow`] per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatsSnapshot {
    /// Queries offered to the coordinator.
    pub queries: u64,
    /// Responses with every shard answering at full fidelity.
    pub complete: u64,
    /// Responses honestly marked [`Degraded`](crate::cluster::ClusterResponse::Degraded).
    pub degraded: u64,
    /// Queries refused because fewer shards answered than the configured
    /// quorum fraction requires.
    pub quorum_lost: u64,
    /// Malformed queries rejected before the scatter.
    pub bad_query: u64,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStatsRow>,
}

impl ClusterStatsSnapshot {
    /// The coordinator's accounting identity: every query offered resolved
    /// to exactly one of the four terminal states. Unlike the engine-level
    /// identity this holds at every instant — the coordinator's `query`
    /// call is synchronous.
    pub fn consistent(&self) -> bool {
        self.queries == self.complete + self.degraded + self.quorum_lost + self.bad_query
    }

    /// A fixed-width table: the cluster summary line followed by one row
    /// per shard.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("cluster stats\n");
        out.push_str(&format!(
            "  queries {:>8}  ({} complete, {} degraded, {} quorum-lost, {} bad)\n",
            self.queries, self.complete, self.degraded, self.quorum_lost, self.bad_query
        ));
        out.push_str(
            "  shard    docs    tomb  queries     fail     cons   dl-hit    hedge     shed  breaker\n",
        );
        for row in &self.shards {
            out.push_str(&format!(
                "  {:>5} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}  {}\n",
                row.shard,
                row.docs,
                row.tombstones,
                row.queries,
                row.failures,
                row.consecutive_failures,
                row.deadline_hits,
                row.hedges,
                row.engine.shed,
                if row.ejected { "ejected" } else { "closed" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_table_renders_summary_and_shard_rows() {
        let shard_row = |shard: usize, ejected: bool| ShardStatsRow {
            shard,
            docs: 10 + shard,
            tombstones: shard,
            queries: 42,
            failures: 3,
            consecutive_failures: 1,
            deadline_hits: 2,
            hedges: 2,
            ejected,
            engine: ServeStats::new().snapshot(),
        };
        let snap = ClusterStatsSnapshot {
            queries: 7,
            complete: 4,
            degraded: 2,
            quorum_lost: 1,
            bad_query: 0,
            shards: vec![shard_row(0, false), shard_row(1, true)],
        };
        assert!(snap.consistent());
        let t = snap.table();
        assert!(t.contains("cluster stats"), "{t}");
        assert!(t.contains("2 degraded"), "{t}");
        assert!(t.contains("ejected"), "{t}");
        assert!(t.contains("closed"), "{t}");

        let broken = ClusterStatsSnapshot {
            complete: 3,
            ..snap
        };
        assert!(!broken.consistent());
    }

    #[test]
    fn outcomes_and_latency_land_in_the_right_buckets() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_admitted();
        stats.record_outcome(Outcome::CompletedFull, Duration::from_micros(50));
        stats.record_submitted();
        stats.record_admitted();
        stats.record_outcome(Outcome::TimedOut, Duration::from_secs(2));
        stats.record_submitted();
        stats.record_shed();

        let s = stats.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.shed, 1);
        assert_eq!(s.admitted, 2);
        assert_eq!(s.completed_full, 1);
        assert_eq!(s.timed_out, 1);
        assert_eq!(s.latency[0], 1); // 50µs → first bucket
        assert_eq!(s.latency[5], 1); // 2s → unbounded bucket
        assert!(s.consistent());
    }

    #[test]
    fn consistency_fails_while_in_flight() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_admitted();
        // Admitted but not yet resolved.
        assert!(!stats.snapshot().consistent());
        stats.record_outcome(Outcome::BadQuery, Duration::ZERO);
        assert!(stats.snapshot().consistent());
    }

    #[test]
    fn batch_counters_track_passes_without_touching_the_identity() {
        let stats = ServeStats::new();
        for _ in 0..5 {
            stats.record_submitted();
            stats.record_admitted();
        }
        // One pass of 3 and one of 2; outcomes are recorded per query as
        // usual, so the accounting identity is untouched by batching.
        stats.record_batch(3);
        stats.record_batch(2);
        for _ in 0..5 {
            stats.record_outcome(Outcome::CompletedFull, Duration::from_micros(10));
        }
        let s = stats.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.batched_queries, 5);
        assert!(s.consistent());
        assert!(
            s.table().contains("(in 2 coalesced passes)"),
            "{}",
            s.table()
        );
    }

    #[test]
    fn table_renders_every_counter() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_admitted();
        stats.record_outcome(Outcome::CompletedDegraded, Duration::from_millis(5));
        let t = stats.snapshot().table();
        assert!(t.contains("submitted"), "{t}");
        assert!(t.contains("degraded"), "{t}");
        assert!(t.contains("≤10ms:1"), "{t}");
    }
}
