//! The shard transport abstraction: in-process engines and out-of-process
//! socket RPC behind one trait.
//!
//! A [`Cluster`](crate::cluster::Cluster) talks to every shard through
//! [`ShardTransport`]. The in-process implementation ([`LocalShard`]) wraps
//! a [`QueryEngine`] directly; the cross-process implementation
//! ([`RemoteShard`]) speaks a length-prefixed CRC-framed RPC protocol
//! (`lsi_core::frame`, the journal's framing discipline applied to wire
//! bytes) over a Unix domain socket to a `lsi shard-serve` daemon
//! ([`crate::daemon`]). Because a shard daemon replays the same journal
//! over the same basis snapshot and scores with the same engine, a
//! `Complete` cluster answer is bitwise identical across transports for
//! every shard count and kill schedule — the merge never learns which side
//! of a process boundary a reply crossed.
//!
//! ## Wire grammar
//!
//! One RPC = one request frame, one reply frame (fresh connection per
//! call; a hedged retry is simply a second connection). Frame payloads are
//! tagged little-endian structs; every decoded length and count is bounded
//! (`MAX_*` caps, remaining-input clamps) before any allocation, so a
//! corrupt or hostile peer surfaces as a typed [`TransportError`], never
//! an OOM abort — the S2 discipline end to end.
//!
//! ## Deadlines
//!
//! Every socket read is bounded: unary RPCs carry a per-call deadline
//! enforced through `set_read_timeout` / `set_write_timeout`, and a
//! pending query reply ([`PendingReply::wait_until`]) re-arms the read
//! timeout with the caller's remaining budget on every partial read, so a
//! stalled or killed daemon costs exactly the shard's hard deadline and
//! nothing more. Idempotent control RPCs (hello, ping, row reads) retry
//! transient timeouts through [`RetryPolicy`]; mutations are at-most-once
//! on the wire and surface their uncertainty as typed errors instead.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lsi_core::frame::{encode_frame, scan_frame, FrameError, FrameScan};
use lsi_core::{RetryPolicy, SectionId, StorageError};
use lsi_ir::retrieval::{RankedList, SearchHit};

use crate::engine::{DegradeReason, Query, QueryEngine, QueryError, QueryResponse, Ticket};
use crate::stats::StatsSnapshot;

/// Upper bound on term pairs in one query frame (mirrors the journal's
/// term cap).
const MAX_WIRE_TERMS: u32 = 1 << 22;
/// Upper bound on LSI coordinates in one frame (ranks are small; this is
/// purely a corrupt-length guard).
const MAX_WIRE_COORDS: u32 = 1 << 16;
/// Upper bound on hits in one reply frame.
const MAX_WIRE_HITS: u32 = 1 << 22;
/// Upper bound on id-map entries in one frame.
const MAX_WIRE_IDS: u32 = 1 << 24;
/// Upper bound on a doc-id or error-detail string, in bytes.
const MAX_WIRE_STRING: u32 = 1 << 16;

/// Typed failure of the socket RPC layer.
#[derive(Debug)]
pub enum TransportError {
    /// A socket operation failed (connect, read, write).
    Io(std::io::Error),
    /// The peer's bytes were not a valid frame (bad length, bad CRC).
    Frame(FrameError),
    /// The frame decoded but its payload was not a valid RPC message.
    Malformed(String),
    /// The peer closed the connection before a complete reply arrived —
    /// the kill -9 signature.
    Disconnected,
    /// The per-call deadline expired before a complete reply arrived.
    Deadline,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "shard rpc i/o error: {e}"),
            TransportError::Frame(e) => write!(f, "shard rpc frame error: {e}"),
            TransportError::Malformed(detail) => write!(f, "shard rpc malformed message: {detail}"),
            TransportError::Disconnected => write!(f, "shard rpc peer disconnected mid-reply"),
            TransportError::Deadline => write!(f, "shard rpc deadline expired"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl TransportError {
    /// Maps into the [`StorageError`] space so [`RetryPolicy`] can decide
    /// retryability: genuine I/O errors keep their kind, a deadline
    /// becomes a transient `TimedOut`, and protocol-level damage becomes
    /// hard `InvalidData` (retrying corrupt bytes only wastes budget).
    fn into_storage(self) -> StorageError {
        match self {
            TransportError::Io(e) => StorageError::Io(e),
            TransportError::Deadline => StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "shard rpc deadline expired",
            )),
            other => StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                other.to_string(),
            )),
        }
    }

    /// Maps into the engine's error space for the cluster boundary.
    fn into_query_error(self) -> QueryError {
        match self {
            TransportError::Deadline => QueryError::DeadlineExceeded,
            other => QueryError::Internal {
                detail: other.to_string(),
            },
        }
    }
}

/// One RPC request, as framed onto the shard socket.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcRequest {
    /// Identify the daemon: returns its pid and local → global id map.
    Hello,
    /// Score a query against the shard's documents.
    Query {
        /// Sparse `(term, weight)` pairs (weights as exact f64 bits).
        terms: Vec<(usize, f64)>,
        /// Shard-local result cutoff (`u64::MAX` = every hit).
        top_k: u64,
        /// Engine tag for fault-hook targeting and tracing.
        tag: u64,
    },
    /// Journal + apply one document by its exact LSI-space coordinates.
    AddVector {
        /// Caller-side document id (the cluster's global id, decimal).
        doc_id: String,
        /// The length-`rank` row, bit-exact.
        coords: Vec<f64>,
    },
    /// Journal a tombstone for a local row (journal-only; the live row
    /// keeps its bits).
    LogRetire {
        /// Shard-local row index.
        doc: u64,
    },
    /// Read one row's exact LSI-space coordinates.
    DocVector {
        /// Shard-local row index.
        doc: u64,
    },
    /// Rotate the journal down to the replayable state dump of `ids`.
    Compact {
        /// The coordinator's local → global id map for this shard.
        ids: Vec<Option<u64>>,
    },
    /// Liveness probe.
    Ping,
    /// Ask the daemon to shut down cleanly (reply comes first).
    Shutdown,
}

/// One RPC reply, as framed back from the shard socket.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcReply {
    /// Reply to [`RpcRequest::Hello`].
    Hello {
        /// The daemon's process id.
        pid: u32,
        /// The daemon's local → global id map (`len` = document count).
        ids: Vec<Option<u64>>,
    },
    /// Reply to [`RpcRequest::Query`]: the engine's answer.
    Answer(QueryResponse),
    /// Reply to [`RpcRequest::AddVector`]: the new local row index.
    Local {
        /// Shard-local row index the document landed on.
        local: u64,
    },
    /// Boolean ack ([`RpcRequest::LogRetire`], [`RpcRequest::Compact`]).
    Flag {
        /// The operation's boolean result.
        value: bool,
    },
    /// Reply to [`RpcRequest::DocVector`]: the row bits.
    Coords {
        /// The row's LSI-space coordinates, bit-exact.
        coords: Vec<f64>,
    },
    /// Bare success ack ([`RpcRequest::Ping`], [`RpcRequest::Shutdown`]).
    Ok,
    /// The shard engine rejected the request.
    Fail(QueryError),
}

/// A bounds-checked little-endian cursor over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| TransportError::Malformed("payload truncated".to_string()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64_bits(&mut self) -> Result<f64, TransportError> {
        self.u64().map(f64::from_bits)
    }

    /// A `u32` count, rejected against `cap` (and implicitly against the
    /// remaining payload: `min_elem_bytes` bounds the `with_capacity`
    /// pre-allocation to what the payload could actually hold).
    fn count(&mut self, cap: u32, min_elem_bytes: usize) -> Result<(u32, usize), TransportError> {
        let n = self.u32()?;
        if n > cap {
            return Err(TransportError::Malformed(format!(
                "count {n} exceeds the {cap} cap"
            )));
        }
        let reserve = (n as usize).min(self.remaining() / min_elem_bytes.max(1));
        Ok((n, reserve))
    }

    fn string(&mut self) -> Result<String, TransportError> {
        let len = self.u32()?;
        if len > MAX_WIRE_STRING {
            return Err(TransportError::Malformed(format!(
                "string length {len} exceeds the {MAX_WIRE_STRING} cap"
            )));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TransportError::Malformed("string is not UTF-8".to_string()))
    }

    fn finish(&self) -> Result<(), TransportError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(TransportError::Malformed(format!(
                "{} trailing bytes after the message",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_ids(out: &mut Vec<u8>, ids: &[Option<u64>]) {
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        match id {
            Some(gid) => {
                out.push(1);
                out.extend_from_slice(&gid.to_le_bytes());
            }
            None => out.push(0),
        }
    }
}

fn get_ids(c: &mut Cursor<'_>) -> Result<Vec<Option<u64>>, TransportError> {
    let (n, reserve) = c.count(MAX_WIRE_IDS, 1)?;
    let mut ids = Vec::with_capacity(reserve);
    for _ in 0..n {
        ids.push(match c.u8()? {
            0 => None,
            1 => Some(c.u64()?),
            other => {
                return Err(TransportError::Malformed(format!(
                    "bad id-presence byte {other}"
                )))
            }
        });
    }
    Ok(ids)
}

fn put_coords(out: &mut Vec<u8>, coords: &[f64]) {
    out.extend_from_slice(&(coords.len() as u32).to_le_bytes());
    for &x in coords {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn get_coords(c: &mut Cursor<'_>) -> Result<Vec<f64>, TransportError> {
    let (n, reserve) = c.count(MAX_WIRE_COORDS, 8)?;
    let mut coords = Vec::with_capacity(reserve);
    for _ in 0..n {
        let x = c.f64_bits()?;
        if !x.is_finite() {
            return Err(TransportError::Malformed(
                "non-finite coordinate".to_string(),
            ));
        }
        coords.push(x);
    }
    Ok(coords)
}

/// Serializes one request into a frame payload (not yet framed).
pub fn encode_request(req: &RpcRequest) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        RpcRequest::Hello => out.push(0),
        RpcRequest::Query { terms, top_k, tag } => {
            out.push(1);
            out.extend_from_slice(&top_k.to_le_bytes());
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
            for &(t, w) in terms {
                out.extend_from_slice(&(t as u64).to_le_bytes());
                out.extend_from_slice(&w.to_bits().to_le_bytes());
            }
        }
        RpcRequest::AddVector { doc_id, coords } => {
            out.push(2);
            put_string(&mut out, doc_id);
            put_coords(&mut out, coords);
        }
        RpcRequest::LogRetire { doc } => {
            out.push(3);
            out.extend_from_slice(&doc.to_le_bytes());
        }
        RpcRequest::DocVector { doc } => {
            out.push(4);
            out.extend_from_slice(&doc.to_le_bytes());
        }
        RpcRequest::Compact { ids } => {
            out.push(5);
            put_ids(&mut out, ids);
        }
        RpcRequest::Ping => out.push(6),
        RpcRequest::Shutdown => out.push(7),
    }
    out
}

/// Deserializes one request frame payload.
///
/// # Errors
/// [`TransportError::Malformed`] for an unknown tag, an over-cap count or
/// string, truncated fields, trailing bytes, or non-finite weights.
pub fn decode_request(payload: &[u8]) -> Result<RpcRequest, TransportError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        0 => RpcRequest::Hello,
        1 => {
            let top_k = c.u64()?;
            let tag = c.u64()?;
            let (n, reserve) = c.count(MAX_WIRE_TERMS, 16)?;
            let mut terms = Vec::with_capacity(reserve);
            for _ in 0..n {
                let t = c.u64()?;
                let w = c.f64_bits()?;
                let t = usize::try_from(t)
                    .map_err(|_| TransportError::Malformed("term id overflows".to_string()))?;
                terms.push((t, w));
            }
            RpcRequest::Query { terms, top_k, tag }
        }
        2 => RpcRequest::AddVector {
            doc_id: c.string()?,
            coords: get_coords(&mut c)?,
        },
        3 => RpcRequest::LogRetire { doc: c.u64()? },
        4 => RpcRequest::DocVector { doc: c.u64()? },
        5 => RpcRequest::Compact {
            ids: get_ids(&mut c)?,
        },
        6 => RpcRequest::Ping,
        7 => RpcRequest::Shutdown,
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown request tag {other}"
            )))
        }
    };
    c.finish()?;
    Ok(req)
}

fn put_hits(out: &mut Vec<u8>, hits: &RankedList) {
    out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
    for h in hits.hits() {
        out.extend_from_slice(&(h.doc as u64).to_le_bytes());
        out.extend_from_slice(&h.score.to_bits().to_le_bytes());
    }
}

fn get_hits(c: &mut Cursor<'_>) -> Result<RankedList, TransportError> {
    let (n, reserve) = c.count(MAX_WIRE_HITS, 16)?;
    let mut hits = Vec::with_capacity(reserve);
    for _ in 0..n {
        let doc = c.u64()?;
        let score = c.f64_bits()?;
        let doc = usize::try_from(doc)
            .map_err(|_| TransportError::Malformed("hit doc id overflows".to_string()))?;
        if !score.is_finite() {
            return Err(TransportError::Malformed("non-finite score".to_string()));
        }
        hits.push(SearchHit { doc, score });
    }
    // `from_hits` re-sorts by (score desc, doc asc) — a deterministic
    // total order over finite scores, so reconstruction is bit-exact.
    Ok(RankedList::from_hits(hits))
}

fn put_degrade_reason(out: &mut Vec<u8>, reason: &DegradeReason) {
    match reason {
        DegradeReason::DegradedIndex => out.push(0),
        DegradeReason::SoftDeadline => out.push(1),
        DegradeReason::DamagedSection(section) => {
            out.push(2);
            out.push(section.tag());
        }
    }
}

fn get_degrade_reason(c: &mut Cursor<'_>) -> Result<DegradeReason, TransportError> {
    Ok(match c.u8()? {
        0 => DegradeReason::DegradedIndex,
        1 => DegradeReason::SoftDeadline,
        2 => {
            let tag = c.u8()?;
            let section = SectionId::from_tag(tag)
                .ok_or_else(|| TransportError::Malformed(format!("unknown section tag {tag}")))?;
            DegradeReason::DamagedSection(section)
        }
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown degrade reason {other}"
            )))
        }
    })
}

fn put_query_error(out: &mut Vec<u8>, e: &QueryError) {
    match e {
        QueryError::Overloaded { capacity } => {
            out.push(0);
            out.extend_from_slice(&(*capacity as u64).to_le_bytes());
        }
        QueryError::DeadlineExceeded => out.push(1),
        QueryError::Internal { detail } => {
            out.push(2);
            let detail: String = detail.chars().take(MAX_WIRE_STRING as usize / 4).collect();
            put_string(out, &detail);
        }
        QueryError::ShuttingDown => out.push(3),
        // `BadQuery` carries a structured reason that only matters on the
        // validating side; the coordinator pre-validates against the same
        // basis, so this crossing the wire means a version skew — carry
        // the rendered reason.
        QueryError::BadQuery(bad) => {
            out.push(4);
            put_string(out, &bad.to_string());
        }
    }
}

fn get_query_error(c: &mut Cursor<'_>) -> Result<QueryError, TransportError> {
    Ok(match c.u8()? {
        0 => QueryError::Overloaded {
            capacity: c.u64()? as usize,
        },
        1 => QueryError::DeadlineExceeded,
        2 => QueryError::Internal {
            detail: c.string()?,
        },
        3 => QueryError::ShuttingDown,
        4 => QueryError::Internal {
            detail: format!("shard-side bad query: {}", c.string()?),
        },
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown error code {other}"
            )))
        }
    })
}

/// Serializes one reply into a frame payload (not yet framed).
pub fn encode_reply(reply: &RpcReply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        RpcReply::Hello { pid, ids } => {
            out.push(0);
            out.extend_from_slice(&pid.to_le_bytes());
            put_ids(&mut out, ids);
        }
        RpcReply::Answer(response) => {
            out.push(1);
            match response {
                QueryResponse::Ranked(hits) => {
                    out.push(0);
                    put_hits(&mut out, hits);
                }
                QueryResponse::Degraded { hits, reason } => {
                    out.push(1);
                    put_degrade_reason(&mut out, reason);
                    put_hits(&mut out, hits);
                }
            }
        }
        RpcReply::Local { local } => {
            out.push(2);
            out.extend_from_slice(&local.to_le_bytes());
        }
        RpcReply::Flag { value } => {
            out.push(3);
            out.push(u8::from(*value));
        }
        RpcReply::Coords { coords } => {
            out.push(4);
            put_coords(&mut out, coords);
        }
        RpcReply::Ok => out.push(5),
        RpcReply::Fail(e) => {
            out.push(6);
            put_query_error(&mut out, e);
        }
    }
    out
}

/// Deserializes one reply frame payload.
///
/// # Errors
/// [`TransportError::Malformed`] for an unknown tag, an over-cap count or
/// string, truncated fields, trailing bytes, or non-finite scores.
pub fn decode_reply(payload: &[u8]) -> Result<RpcReply, TransportError> {
    let mut c = Cursor::new(payload);
    let reply = match c.u8()? {
        0 => RpcReply::Hello {
            pid: c.u32()?,
            ids: get_ids(&mut c)?,
        },
        1 => RpcReply::Answer(match c.u8()? {
            0 => QueryResponse::Ranked(get_hits(&mut c)?),
            1 => {
                let reason = get_degrade_reason(&mut c)?;
                QueryResponse::Degraded {
                    hits: get_hits(&mut c)?,
                    reason,
                }
            }
            other => {
                return Err(TransportError::Malformed(format!(
                    "unknown response kind {other}"
                )))
            }
        }),
        2 => RpcReply::Local { local: c.u64()? },
        3 => RpcReply::Flag {
            value: match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(TransportError::Malformed(format!(
                        "bad boolean byte {other}"
                    )))
                }
            },
        },
        4 => RpcReply::Coords {
            coords: get_coords(&mut c)?,
        },
        5 => RpcReply::Ok,
        6 => RpcReply::Fail(get_query_error(&mut c)?),
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown reply tag {other}"
            )))
        }
    };
    c.finish()?;
    Ok(reply)
}

/// Remaining budget until `deadline`, as a nonzero socket timeout.
fn remaining_timeout(deadline: Instant) -> Result<Duration, TransportError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(TransportError::Deadline);
    }
    Ok(left)
}

/// Writes one framed payload with the deadline's remaining budget as the
/// write timeout.
pub(crate) fn send_frame(
    stream: &mut UnixStream,
    payload: &[u8],
    deadline: Instant,
) -> Result<(), TransportError> {
    stream
        .set_write_timeout(Some(remaining_timeout(deadline)?))
        .map_err(TransportError::Io)?;
    let wire = encode_frame(payload);
    stream.write_all(&wire).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportError::Deadline
        } else {
            TransportError::Io(e)
        }
    })?;
    stream.flush().map_err(TransportError::Io)?;
    Ok(())
}

/// Reads one complete frame off `stream` into/through `buf`, re-arming
/// the read timeout with the deadline's remaining budget before every
/// partial read (plain `read`, never `read_exact`: a timeout mid-frame
/// must not lose the bytes already buffered). `buf` carries partial-frame
/// state across calls so a [`TransportError::Deadline`] return can be
/// retried without losing progress.
pub(crate) fn read_frame(
    stream: &mut UnixStream,
    deadline: Instant,
    buf: &mut Vec<u8>,
) -> Result<Vec<u8>, TransportError> {
    loop {
        match scan_frame(buf)? {
            FrameScan::Complete { payload, consumed } => {
                buf.drain(..consumed);
                return Ok(payload);
            }
            FrameScan::Incomplete => {}
        }
        stream
            .set_read_timeout(Some(remaining_timeout(deadline)?))
            .map_err(TransportError::Io)?;
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(TransportError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(TransportError::Deadline)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

/// One unary RPC on a fresh connection: connect, send, read one reply.
fn call_once(
    socket: &Path,
    req: &RpcRequest,
    timeout: Duration,
) -> Result<RpcReply, TransportError> {
    let deadline = Instant::now() + timeout;
    let mut stream = UnixStream::connect(socket).map_err(TransportError::Io)?;
    send_frame(&mut stream, &encode_request(req), deadline)?;
    let mut buf = Vec::new();
    let payload = read_frame(&mut stream, deadline, &mut buf)?;
    decode_reply(&payload)
}

/// An in-flight query reply: the transport-agnostic analogue of
/// [`Ticket`].
pub enum PendingReply {
    /// In-process: the engine ticket.
    Local(Ticket),
    /// Cross-process: the RPC connection with its partial-read buffer.
    Remote(RemotePending),
}

/// The remote half of [`PendingReply`]: an open connection whose reply
/// frame may arrive across several bounded reads.
pub struct RemotePending {
    stream: UnixStream,
    buf: Vec<u8>,
}

impl PendingReply {
    /// Waits for the reply until `deadline`. `Ok` carries the terminal
    /// result; `Err` hands the still-pending reply back (the hedging
    /// contract of [`Ticket::wait_until`]). A disconnect, frame error, or
    /// malformed reply is terminal: `Ok(Err(_))` with a typed engine
    /// error, so the caller's failure accounting sees it exactly like an
    /// in-process worker failure.
    pub fn wait_until(
        self,
        deadline: Instant,
    ) -> Result<Result<QueryResponse, QueryError>, PendingReply> {
        match self {
            PendingReply::Local(ticket) => ticket.wait_until(deadline).map_err(PendingReply::Local),
            PendingReply::Remote(mut pending) => {
                match read_frame(&mut pending.stream, deadline, &mut pending.buf) {
                    Ok(payload) => Ok(match decode_reply(&payload) {
                        Ok(RpcReply::Answer(response)) => Ok(response),
                        Ok(RpcReply::Fail(e)) => Err(e),
                        Ok(other) => Err(QueryError::Internal {
                            detail: format!("unexpected reply to a query rpc: {other:?}"),
                        }),
                        Err(e) => Err(e.into_query_error()),
                    }),
                    Err(TransportError::Deadline) => Err(PendingReply::Remote(pending)),
                    Err(e) => Ok(Err(e.into_query_error())),
                }
            }
        }
    }
}

/// How a [`Cluster`](crate::cluster::Cluster) talks to one shard.
///
/// The in-process implementation is [`LocalShard`]; the socket RPC
/// implementation is [`RemoteShard`]. Both expose the same journaled
/// mutation surface as [`QueryEngine`], and both return shard-local hits
/// that score to identical bits for identical rows — the merge layer
/// cannot tell transports apart.
pub trait ShardTransport: Send + Sync {
    /// Submits a query; the reply is awaited through
    /// [`PendingReply::wait_until`].
    ///
    /// # Errors
    /// [`QueryError`] when the shard refuses the submission (overload,
    /// shutdown, unreachable daemon).
    fn submit(&self, query: Query) -> Result<PendingReply, QueryError>;

    /// Journals + applies one document by its exact LSI-space
    /// coordinates; returns the shard-local row index.
    ///
    /// # Errors
    /// [`QueryError`] when the mutation was not durably acknowledged. For
    /// a remote shard the mutation may still have been journaled (the ack
    /// can be lost to a crash); recovery adopts the journal's truth.
    fn add_document_vector(&self, doc_id: &str, coords: &[f64]) -> Result<usize, QueryError>;

    /// Journals a tombstone for local row `doc` (journal-only retire).
    ///
    /// # Errors
    /// [`QueryError`] when the tombstone was not durably acknowledged.
    fn log_retire(&self, doc: usize) -> Result<bool, QueryError>;

    /// Reads local row `doc`'s exact LSI-space coordinates.
    ///
    /// # Errors
    /// [`QueryError`] when the row is out of range or the shard is
    /// unreachable.
    fn doc_vector(&self, doc: usize) -> Result<Vec<f64>, QueryError>;

    /// Rotates the shard's journal down to the replayable state dump of
    /// `ids`. `Ok(false)` for shards with no journal.
    ///
    /// # Errors
    /// [`QueryError`] when the rotation failed or `ids` is out of step
    /// with the shard's document count.
    fn compact(&self, ids: &[Option<u64>]) -> Result<bool, QueryError>;

    /// Liveness probe (cheap; retried on transient failures).
    ///
    /// # Errors
    /// [`QueryError`] when the shard does not answer within the RPC
    /// deadline.
    fn ping(&self) -> Result<(), QueryError>;

    /// The shard's serving statistics ([`StatsSnapshot`]); empty for
    /// transports that do not mirror remote counters.
    fn stats(&self) -> StatsSnapshot;

    /// Releases the transport (joins in-process workers; remote daemons
    /// are owned and shut down by their supervisor, not the transport).
    fn shutdown(self: Box<Self>);

    /// The in-process engine behind this transport, when there is one
    /// (chaos hooks and crash simulation need it; remote shards return
    /// `None`).
    fn engine(&self) -> Option<&QueryEngine> {
        None
    }

    /// Consumes the transport, yielding the in-process engine when there
    /// is one.
    fn take_engine(self: Box<Self>) -> Option<QueryEngine> {
        None
    }
}

/// One assembled shard handed to the coordinator: a transport plus the
/// local → global id map its daemon reported in `Hello` (or the builder
/// derived in-process).
pub type ShardPart = (Box<dyn ShardTransport>, Vec<Option<u64>>);

/// The in-process transport: a thin wrapper over [`QueryEngine`].
pub struct LocalShard {
    engine: QueryEngine,
}

impl LocalShard {
    /// Wraps an engine.
    pub fn new(engine: QueryEngine) -> Self {
        LocalShard { engine }
    }
}

impl ShardTransport for LocalShard {
    fn submit(&self, query: Query) -> Result<PendingReply, QueryError> {
        self.engine.submit(query).map(PendingReply::Local)
    }

    fn add_document_vector(&self, doc_id: &str, coords: &[f64]) -> Result<usize, QueryError> {
        self.engine.add_document_vector(doc_id, coords)
    }

    fn log_retire(&self, doc: usize) -> Result<bool, QueryError> {
        self.engine.log_retire(doc)
    }

    fn doc_vector(&self, doc: usize) -> Result<Vec<f64>, QueryError> {
        self.engine.with_index(|index| {
            if doc < index.n_docs() {
                Ok(index.doc_vector(doc).to_vec())
            } else {
                Err(QueryError::Internal {
                    detail: format!("row {doc} out of range ({} rows)", index.n_docs()),
                })
            }
        })
    }

    fn compact(&self, ids: &[Option<u64>]) -> Result<bool, QueryError> {
        let records = self.engine.with_index(|index| {
            if ids.len() == index.n_docs() {
                Ok(crate::cluster::state_dump(ids, index))
            } else {
                Err(QueryError::Internal {
                    detail: format!(
                        "compact id map covers {} rows, shard holds {}",
                        ids.len(),
                        index.n_docs()
                    ),
                })
            }
        })?;
        self.engine.rotate_journal(&records)
    }

    fn ping(&self) -> Result<(), QueryError> {
        Ok(())
    }

    fn stats(&self) -> StatsSnapshot {
        self.engine.stats()
    }

    fn shutdown(self: Box<Self>) {
        self.engine.shutdown();
    }

    fn engine(&self) -> Option<&QueryEngine> {
        Some(&self.engine)
    }

    fn take_engine(self: Box<Self>) -> Option<QueryEngine> {
        Some(self.engine)
    }
}

/// The socket RPC transport: one Unix-domain-socket connection per call
/// to a `lsi shard-serve` daemon.
pub struct RemoteShard {
    socket: PathBuf,
    rpc_timeout: Duration,
    retry: RetryPolicy,
}

impl RemoteShard {
    /// A transport for the daemon listening on `socket`, with `rpc_timeout`
    /// as the per-call deadline.
    pub fn new(socket: impl Into<PathBuf>, rpc_timeout: Duration) -> Self {
        RemoteShard {
            socket: socket.into(),
            rpc_timeout,
            retry: RetryPolicy::default(),
        }
    }

    /// The daemon's socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// One at-most-once RPC (mutations must not be blindly re-sent: a
    /// lost ack does not imply a lost journal append).
    fn call(&self, req: &RpcRequest) -> Result<RpcReply, QueryError> {
        call_once(&self.socket, req, self.rpc_timeout).map_err(TransportError::into_query_error)
    }

    /// One idempotent RPC, retried on transient failures (timeouts,
    /// interrupts) under the bounded [`RetryPolicy`] backoff.
    fn call_retrying(&self, req: &RpcRequest) -> Result<RpcReply, QueryError> {
        self.retry
            .run(|| {
                call_once(&self.socket, req, self.rpc_timeout).map_err(TransportError::into_storage)
            })
            .map_err(|e| QueryError::Internal {
                detail: format!("shard rpc failed: {e}"),
            })
    }

    /// Performs the hello handshake: the daemon's pid and id map.
    ///
    /// # Errors
    /// [`QueryError`] when the daemon is unreachable or replies with
    /// anything but a hello.
    pub fn hello(&self) -> Result<(u32, Vec<Option<u64>>), QueryError> {
        match self.call_retrying(&RpcRequest::Hello)? {
            RpcReply::Hello { pid, ids } => Ok((pid, ids)),
            other => Err(unexpected_reply("hello", &other)),
        }
    }

    /// Asks the daemon to exit cleanly (it acks, then stops accepting).
    ///
    /// # Errors
    /// [`QueryError`] when the daemon is already gone — usually fine for
    /// callers tearing the cluster down.
    pub fn send_shutdown(&self) -> Result<(), QueryError> {
        match self.call(&RpcRequest::Shutdown)? {
            RpcReply::Ok => Ok(()),
            other => Err(unexpected_reply("shutdown", &other)),
        }
    }
}

fn unexpected_reply(what: &str, reply: &RpcReply) -> QueryError {
    QueryError::Internal {
        detail: format!("unexpected reply to a {what} rpc: {reply:?}"),
    }
}

/// Unwraps `RpcReply::Fail` into the carried error, otherwise applies `f`.
fn expect_reply<T>(
    reply: RpcReply,
    what: &str,
    f: impl FnOnce(RpcReply) -> Option<T>,
) -> Result<T, QueryError> {
    if let RpcReply::Fail(e) = reply {
        return Err(e);
    }
    let detail = unexpected_reply(what, &reply);
    f(reply).ok_or(detail)
}

impl ShardTransport for RemoteShard {
    fn submit(&self, query: Query) -> Result<PendingReply, QueryError> {
        let deadline = Instant::now() + self.rpc_timeout;
        let mut stream = UnixStream::connect(&self.socket).map_err(|e| QueryError::Internal {
            detail: format!("shard daemon unreachable: {e}"),
        })?;
        let req = RpcRequest::Query {
            terms: query.terms,
            top_k: query.top_k as u64,
            tag: query.tag,
        };
        send_frame(&mut stream, &encode_request(&req), deadline)
            .map_err(TransportError::into_query_error)?;
        Ok(PendingReply::Remote(RemotePending {
            stream,
            buf: Vec::new(),
        }))
    }

    fn add_document_vector(&self, doc_id: &str, coords: &[f64]) -> Result<usize, QueryError> {
        let req = RpcRequest::AddVector {
            doc_id: doc_id.to_string(),
            coords: coords.to_vec(),
        };
        expect_reply(self.call(&req)?, "add-vector", |r| match r {
            RpcReply::Local { local } => usize::try_from(local).ok(),
            _ => None,
        })
    }

    fn log_retire(&self, doc: usize) -> Result<bool, QueryError> {
        let req = RpcRequest::LogRetire { doc: doc as u64 };
        expect_reply(self.call(&req)?, "log-retire", |r| match r {
            RpcReply::Flag { value } => Some(value),
            _ => None,
        })
    }

    fn doc_vector(&self, doc: usize) -> Result<Vec<f64>, QueryError> {
        let req = RpcRequest::DocVector { doc: doc as u64 };
        expect_reply(self.call_retrying(&req)?, "doc-vector", |r| match r {
            RpcReply::Coords { coords } => Some(coords),
            _ => None,
        })
    }

    fn compact(&self, ids: &[Option<u64>]) -> Result<bool, QueryError> {
        let req = RpcRequest::Compact { ids: ids.to_vec() };
        expect_reply(self.call(&req)?, "compact", |r| match r {
            RpcReply::Flag { value } => Some(value),
            _ => None,
        })
    }

    fn ping(&self) -> Result<(), QueryError> {
        expect_reply(
            self.call_retrying(&RpcRequest::Ping)?,
            "ping",
            |r| match r {
                RpcReply::Ok => Some(()),
                _ => None,
            },
        )
    }

    fn stats(&self) -> StatsSnapshot {
        // Remote engine counters live in the daemon process; the
        // coordinator's per-shard health rows carry the serving signal.
        crate::stats::ServeStats::new().snapshot()
    }

    fn shutdown(self: Box<Self>) {
        // Connection-per-call: nothing held open. Daemon lifecycle belongs
        // to the supervisor.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: RpcRequest) {
        let wire = encode_request(&req);
        assert_eq!(decode_request(&wire).unwrap(), req);
    }

    fn round_trip_reply(reply: RpcReply) {
        let wire = encode_reply(&reply);
        assert_eq!(decode_reply(&wire).unwrap(), reply);
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        round_trip_request(RpcRequest::Hello);
        round_trip_request(RpcRequest::Query {
            terms: vec![(0, 1.5), (7, -0.25), (usize::MAX >> 1, 1e-300)],
            top_k: u64::MAX,
            tag: 42,
        });
        round_trip_request(RpcRequest::AddVector {
            doc_id: "1729".to_string(),
            coords: vec![0.1, -2.5, 3.25],
        });
        round_trip_request(RpcRequest::LogRetire { doc: 3 });
        round_trip_request(RpcRequest::DocVector { doc: 0 });
        round_trip_request(RpcRequest::Compact {
            ids: vec![Some(5), None, Some(u64::MAX)],
        });
        round_trip_request(RpcRequest::Ping);
        round_trip_request(RpcRequest::Shutdown);
    }

    #[test]
    fn replies_round_trip_bit_exactly() {
        round_trip_reply(RpcReply::Hello {
            pid: 4321,
            ids: vec![Some(0), None, Some(17)],
        });
        let hits = RankedList::from_hits(vec![
            SearchHit {
                doc: 2,
                score: 0.75,
            },
            SearchHit { doc: 0, score: 0.5 },
        ]);
        round_trip_reply(RpcReply::Answer(QueryResponse::Ranked(hits.clone())));
        round_trip_reply(RpcReply::Answer(QueryResponse::Degraded {
            hits,
            reason: DegradeReason::SoftDeadline,
        }));
        round_trip_reply(RpcReply::Answer(QueryResponse::Degraded {
            hits: RankedList::default(),
            reason: DegradeReason::DamagedSection(SectionId::DocVectors),
        }));
        round_trip_reply(RpcReply::Local { local: 9 });
        round_trip_reply(RpcReply::Flag { value: true });
        round_trip_reply(RpcReply::Coords {
            coords: vec![1.0, -1.0],
        });
        round_trip_reply(RpcReply::Ok);
        round_trip_reply(RpcReply::Fail(QueryError::Overloaded { capacity: 64 }));
        round_trip_reply(RpcReply::Fail(QueryError::DeadlineExceeded));
        round_trip_reply(RpcReply::Fail(QueryError::Internal {
            detail: "worker panicked".to_string(),
        }));
        round_trip_reply(RpcReply::Fail(QueryError::ShuttingDown));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut wire = encode_request(&RpcRequest::Ping);
        wire.push(0);
        assert!(matches!(
            decode_request(&wire),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn over_cap_counts_are_rejected_before_allocation() {
        // A Compact request whose id count claims 2^31 entries.
        let mut wire = vec![5u8];
        wire.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(matches!(
            decode_request(&wire),
            Err(TransportError::Malformed(_))
        ));
        // A reply whose hit count is over the cap.
        let mut wire = vec![1u8, 0u8];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_reply(&wire),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_tags_are_malformed() {
        assert!(matches!(
            decode_request(&[200]),
            Err(TransportError::Malformed(_))
        ));
        assert!(matches!(
            decode_reply(&[200]),
            Err(TransportError::Malformed(_))
        ));
        assert!(matches!(
            decode_request(&[]),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn remote_submit_to_a_dead_socket_is_a_typed_refusal() {
        let dir = std::env::temp_dir().join(format!("lsi_transport_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let shard = RemoteShard::new(dir.join("nope.sock"), Duration::from_millis(100));
        assert!(shard.submit(Query::new(vec![(0, 1.0)], 3)).is_err());
        assert!(shard.ping().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
