//! Fault-tolerant sharded scatter-gather serving.
//!
//! A [`Cluster`] splits a corpus across `N` document-partitioned shards.
//! Every shard carries the **same** rank-`k` spectral basis
//! ([`LsiIndex::basis_clone`]) and only its own documents' LSI-space rows,
//! transplanted bitwise ([`LsiIndex::add_document_vector`]); a document
//! therefore scores to *identical bits* on whichever shard holds it, which
//! is what makes the merged answer independent of the partitioning.
//!
//! ## Coordinator state machine (per query)
//!
//! ```text
//! validate ──► scatter (skip ejected) ──► gather slot s = 0..N in order
//!    │ bad?          │ submit refused?        │
//!    ▼               ▼                        ▼
//! BadQuery      shard failure        wait soft deadline ── hit? ──► hedge
//!                                         │                          │
//!                                         ▼                          ▼
//!                                     map → slot s        wait hard deadline
//!                                                             │ miss?
//!                                                             ▼
//!                                                       shard failure
//! answered < quorum ──► QuorumLost
//! all N, none degraded ──► Complete(top-k)
//! otherwise ──► Degraded { MissingShards(n) | DegradedReplies(n) }
//! ```
//!
//! ## Order-fixed merge
//!
//! Replies land in **slot `s`** (shard-index order), never in arrival
//! order; [`merge_top_k`] concatenates the slots in index order, sorts by
//! `(doc, score)`, deduplicates by global id, and re-ranks through
//! [`RankedList::from_hits`] (score-descending, doc-ascending ties). The
//! merged bits are therefore identical for every shard count, every
//! partitioning, and every reply arrival order — the serving-layer
//! analogue of `lsi_linalg::parallel`'s order-fixed reductions.
//!
//! ## Failure containment
//!
//! Per-shard *soft* deadlines trigger a hedged retry into the same shard's
//! pool (a respawned or idle worker often answers while the first pick is
//! stuck); the *hard* deadline gives up on the shard for this query.
//! A consecutive-failure circuit breaker ejects a misbehaving shard from
//! the scatter set ([`Cluster::revive`] closes it again). As long as the
//! configured quorum fraction of shards answers, the response degrades
//! honestly — [`ClusterResponse::Degraded`] with the missing-shard count —
//! instead of erroring; below quorum the query fails loudly with
//! [`ClusterError::QuorumLost`]. A response is **never** silently wrong:
//! every hit it does return carries the same score bits the full corpus
//! would produce.
//!
//! ## Durability & rebalance crash-consistency
//!
//! A durable shard is anchored to an immutable basis-only snapshot
//! (`shard-NNN.lsix`, zero documents); its write-ahead journal is the
//! canonical document list (`AddVector` frames carry the global id).
//! [`Cluster::rebalance`] moves a document by appending (and fsyncing) the
//! `AddVector` on the **destination journal before** tombstoning the
//! source — a crash between the two leaves the document on both shards,
//! and the merge's global-id dedup collapses the copies (identical bits)
//! back to exactly-once. The source tombstone is journal-only
//! ([`QueryEngine::log_retire`]): the live row is never zeroed, so queries
//! that snapshotted the source's id map before the move still score
//! against stable bits; visibility is decided solely by the per-shard id
//! map, snapshotted atomically against moves at scatter time.
//! [`Cluster::compact_shard`] bounds the journal by rotating it down to a
//! replayable state dump; shard [`split`](Cluster::split) and
//! [`merge_shards`](Cluster::merge_shards) are built from the same
//! journaled move, so every lifecycle step is recoverable by replay.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use lsi_core::{
    journal_path, BadQuery, DurableIndex, Journal, LsiError, LsiIndex, MutationRecord,
    RecoveryReport, StorageError,
};
use lsi_ir::retrieval::{RankedList, SearchHit};

use crate::engine::{EngineConfig, FaultHook, Query, QueryEngine, QueryError, QueryResponse};
use crate::stats::{ClusterStatsSnapshot, ShardStatsRow};
use crate::transport::{LocalShard, PendingReply, ShardTransport};

/// Builds the per-shard [`FaultHook`] at cluster construction; the chaos
/// suite uses it to give each shard its own failure personality.
pub type ShardFaultHooks = Arc<dyn Fn(usize) -> Option<FaultHook> + Send + Sync>;

/// Tuning knobs for a [`Cluster`].
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of shards to partition the corpus into (≥ 1; silently
    /// clamped). Ignored by [`Cluster::open`], which trusts the on-disk
    /// shard set.
    pub shards: usize,
    /// Per-shard engine configuration. The engine's own `deadline` is
    /// overridden with [`hard_deadline`](Self::hard_deadline) so worker-side
    /// cooperative cancellation matches the coordinator's give-up point.
    /// [`max_batch`](EngineConfig::max_batch) flows through unchanged:
    /// shard workers coalesce concurrently scattered queries into batched
    /// scoring passes, and because batching is bitwise invisible, the
    /// order-fixed merge still yields partition-invariant answers
    /// (property-tested in `tests/cluster_properties.rs`).
    pub engine: EngineConfig,
    /// Per-shard soft deadline: once a shard's reply is this late, the
    /// coordinator hedges a retry into the shard's pool. `None` disables
    /// hedging.
    pub soft_deadline: Option<Duration>,
    /// Per-shard hard deadline: a shard that has not answered (original or
    /// hedge) by this point counts as failed for the query.
    pub hard_deadline: Duration,
    /// Consecutive failures after which the circuit breaker ejects a shard
    /// from the scatter set.
    pub breaker_threshold: u64,
    /// Minimum fraction of shards (of the full shard set) that must answer
    /// for a response to be produced at all; below it the query fails with
    /// [`ClusterError::QuorumLost`].
    pub quorum: f64,
    /// Explicit document → shard assignment (length = corpus size, values
    /// `< shards`). `None` assigns document `j` to shard `j % shards`.
    pub assignment: Option<Vec<usize>>,
    /// Optional per-shard fault-hook factory (chaos testing only); takes
    /// precedence over `engine.fault_hook` for shards where it returns
    /// `Some`.
    pub fault_hooks: Option<ShardFaultHooks>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            engine: EngineConfig::default(),
            soft_deadline: None,
            hard_deadline: Duration::from_secs(1),
            breaker_threshold: 3,
            quorum: 0.5,
            assignment: None,
            fault_hooks: None,
        }
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("shards", &self.shards)
            .field("engine", &self.engine)
            .field("soft_deadline", &self.soft_deadline)
            .field("hard_deadline", &self.hard_deadline)
            .field("breaker_threshold", &self.breaker_threshold)
            .field("quorum", &self.quorum)
            .field("assignment", &self.assignment.is_some())
            .field("fault_hooks", &self.fault_hooks.is_some())
            .finish()
    }
}

/// Why a cluster response is degraded rather than complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterDegradeReason {
    /// This many shards (ejected, refused, failed, or past the hard
    /// deadline) contributed nothing; their documents are absent from the
    /// hits.
    MissingShards(usize),
    /// Every shard answered, but this many answered through their own
    /// degraded path.
    DegradedReplies(usize),
}

impl std::fmt::Display for ClusterDegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterDegradeReason::MissingShards(n) => write!(f, "{n} shard(s) missing"),
            ClusterDegradeReason::DegradedReplies(n) => write!(f, "{n} degraded shard replies"),
        }
    }
}

/// A cluster answer: complete, or honestly marked partial.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterResponse {
    /// Every shard answered at full fidelity; the hits are bitwise what a
    /// single unsharded index would return.
    Complete(RankedList),
    /// Quorum was met but the answer is partial or best-effort; the reason
    /// says exactly how.
    Degraded {
        /// The merged hits over the shards that did answer.
        hits: RankedList,
        /// Why the response is partial.
        reason: ClusterDegradeReason,
    },
}

impl ClusterResponse {
    /// The merged hits, whichever path produced them.
    pub fn hits(&self) -> &RankedList {
        match self {
            ClusterResponse::Complete(hits) => hits,
            ClusterResponse::Degraded { hits, .. } => hits,
        }
    }

    /// True for a partial / best-effort answer.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ClusterResponse::Degraded { .. })
    }
}

/// Typed failure of a cluster operation.
#[derive(Debug)]
pub enum ClusterError {
    /// The query was malformed; rejected before the scatter.
    BadQuery(BadQuery),
    /// Fewer shards answered than the quorum fraction requires.
    QuorumLost {
        /// Shards that produced a usable reply.
        answered: usize,
        /// Minimum answering shards required by the configured quorum.
        needed: usize,
        /// Total shards in the cluster.
        shards: usize,
    },
    /// A storage / journal operation failed.
    Storage(StorageError),
    /// A shard engine rejected a mutation or lifecycle operation.
    Query(QueryError),
    /// A rebalance named a global document id not present on the source
    /// shard.
    UnknownDocument {
        /// The missing global id.
        doc: u64,
    },
    /// The operation's arguments are invalid for this cluster (shard index
    /// out of range, identical source and destination, bad assignment…).
    BadOperation(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadQuery(b) => write!(f, "bad query: {b}"),
            ClusterError::QuorumLost {
                answered,
                needed,
                shards,
            } => write!(
                f,
                "quorum lost: {answered}/{shards} shards answered, {needed} required"
            ),
            ClusterError::Storage(e) => write!(f, "shard storage error: {e}"),
            ClusterError::Query(e) => write!(f, "shard engine error: {e}"),
            ClusterError::UnknownDocument { doc } => {
                write!(f, "document {doc} not found on the source shard")
            }
            ClusterError::BadOperation(detail) => write!(f, "bad cluster operation: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Storage(e) => Some(e),
            ClusterError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ClusterError {
    fn from(e: StorageError) -> Self {
        ClusterError::Storage(e)
    }
}

impl From<QueryError> for ClusterError {
    fn from(e: QueryError) -> Self {
        ClusterError::Query(e)
    }
}

/// One shard: its transport plus the coordinator's local → global id map.
/// `ids[local] = None` marks a tombstone (moved away or retired); the map,
/// not the index row, is the single source of visibility truth. The
/// transport is in-process ([`LocalShard`]) or a socket RPC client to a
/// shard daemon — the cell, and everything downstream of it, cannot tell.
struct ShardCell {
    /// `None` only for shards that failed to open (down slots) or while a
    /// crash-recovery swap is mid-flight; every accessor treats it as a
    /// shard failure.
    transport: Option<Box<dyn ShardTransport>>,
    ids: Vec<Option<u64>>,
    /// Shard incarnation, bumped by every crash-recovery swap — the
    /// in-process [`Cluster::crash_shard_with`] and the supervisor's
    /// daemon respawn alike. Journal replay re-applies `Retire` frames by
    /// zeroing rows, so a recovered shard can score a pre-crash id
    /// snapshot differently than the incarnation the scatter submitted
    /// to — hedges therefore never cross incarnations (the shard's
    /// contribution is honestly dropped and the answer degrades instead).
    generation: u64,
}

impl ShardCell {
    fn alive(&self) -> usize {
        self.ids.iter().filter(|id| id.is_some()).count()
    }

    fn tombstones(&self) -> usize {
        self.ids.len() - self.alive()
    }
}

/// Coordinator-side per-shard health counters (see [`ShardStatsRow`]).
#[derive(Default)]
struct ShardHealth {
    queries: AtomicU64,
    failures: AtomicU64,
    consecutive: AtomicU64,
    deadline_hits: AtomicU64,
    hedges: AtomicU64,
    ejected: AtomicBool,
}

/// Coordinator-level terminal-state counters (see [`ClusterStatsSnapshot`]).
#[derive(Default)]
struct ClusterCounters {
    queries: AtomicU64,
    complete: AtomicU64,
    degraded: AtomicU64,
    quorum_lost: AtomicU64,
    bad_query: AtomicU64,
}

/// What the scatter produced for one shard slot.
enum ShardAttempt {
    /// Breaker open (or engine mid-recovery): not queried.
    Skipped,
    /// `submit` was refused (overload / shutdown): counts as a failure.
    Refused,
    /// In flight; `ids` is the submit-time id-map snapshot the reply (and
    /// any hedge reply) is mapped through.
    InFlight {
        pending: PendingReply,
        ids: Vec<Option<u64>>,
        generation: u64,
        submitted: Instant,
    },
}

/// A document-partitioned scatter-gather cluster over one LSI model.
///
/// See the [module docs](self) for the architecture. All query and
/// rebalance paths take `&self` and are safe to drive from many threads;
/// only the shard-set lifecycle ops ([`split`](Self::split),
/// [`merge_shards`](Self::merge_shards)) need `&mut self`.
///
/// # Examples
///
/// ```
/// use lsi_core::{LsiConfig, LsiIndex};
/// use lsi_ir::TermDocumentMatrix;
/// use lsi_serve::cluster::{Cluster, ClusterConfig};
/// use lsi_serve::Query;
///
/// let td = TermDocumentMatrix::from_triplets(
///     4,
///     4,
///     &[(0, 0, 2.0), (1, 0, 1.0), (0, 1, 1.0), (2, 2, 3.0), (3, 3, 1.0)],
/// )
/// .unwrap();
/// let index = LsiIndex::build(&td, LsiConfig::with_rank(2)).unwrap();
/// let config = ClusterConfig {
///     shards: 2,
///     ..ClusterConfig::default()
/// };
/// let cluster = Cluster::build(&index, config).unwrap();
/// let response = cluster.query(Query::new(vec![(0, 1.0)], 4)).unwrap();
/// assert!(!response.is_degraded());
/// cluster.shutdown();
/// ```
pub struct Cluster {
    /// The shared spectral basis (zero documents); folds queries in and
    /// validates them without touching any shard.
    basis: LsiIndex,
    cells: Vec<RwLock<ShardCell>>,
    health: Vec<ShardHealth>,
    counters: ClusterCounters,
    config: ClusterConfig,
    /// Shard directory for durable clusters; `None` for in-memory ones.
    dir: Option<PathBuf>,
    next_gid: AtomicU64,
    /// Serializes document moves against query scatters: a scatter holds
    /// the read side while snapshotting **all** shard id maps, so every
    /// query sees each move either entirely applied or not at all — the
    /// lock that turns the two-journal move into one atom from a reader's
    /// point of view.
    moves: RwLock<()>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.cells.len())
            .field("durable", &self.dir.is_some())
            .field("config", &self.config)
            .finish()
    }
}

/// Snapshot filename for shard `shard` under `dir`.
fn shard_snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.lsix"))
}

/// Maps one shard reply's local hits to global ids through the submit-time
/// id-map snapshot. Locals past the snapshot (documents added after the
/// submit) and tombstoned locals are dropped — visibility is exactly the
/// snapshot's.
fn map_hits(hits: &RankedList, ids: &[Option<u64>]) -> Vec<SearchHit> {
    hits.hits()
        .iter()
        .filter_map(|h| {
            ids.get(h.doc).copied().flatten().map(|gid| SearchHit {
                doc: gid as usize,
                score: h.score,
            })
        })
        .collect()
}

/// The order-fixed reduction over per-shard reply slots: concatenates the
/// slots in shard-index order, deduplicates by global id (copies produced
/// by an interrupted move carry identical score bits, so which copy
/// survives is immaterial), and re-ranks score-descending with ascending-id
/// ties. The output bits depend only on the *set* of `(gid, score)` pairs —
/// never on shard count, reply arrival order, or slot permutation of equal
/// content.
pub fn merge_top_k(slots: &[Option<Vec<SearchHit>>], top_k: usize) -> RankedList {
    let mut all: Vec<SearchHit> = Vec::new();
    for hits in slots.iter().flatten() {
        all.extend_from_slice(hits);
    }
    all.sort_by(|a, b| match a.doc.cmp(&b.doc) {
        std::cmp::Ordering::Equal => b.score.total_cmp(&a.score),
        other => other,
    });
    all.dedup_by(|a, b| a.doc == b.doc);
    RankedList::from_hits(all).truncated(top_k)
}

/// Rebuilds a shard's local → global id map by mirroring the journal
/// replay: `AddVector` frames carry the global id as a decimal string
/// (empty / unparsable ids — e.g. a compaction dump of a tombstoned row —
/// map to `None`), legacy fold-in frames have no global identity, and
/// `Retire` frames tombstone their slot.
pub(crate) fn rebuild_ids(
    snapshot_docs: usize,
    records: &[MutationRecord],
    n_docs: usize,
) -> Vec<Option<u64>> {
    let mut ids: Vec<Option<u64>> = vec![None; snapshot_docs];
    for record in records {
        match record {
            MutationRecord::AddVector { seq, doc_id, .. } => {
                if *seq as usize == ids.len() {
                    ids.push(doc_id.parse::<u64>().ok());
                }
            }
            MutationRecord::AddDocument { seq, .. } | MutationRecord::FoldIn { seq, .. } => {
                if *seq as usize == ids.len() {
                    ids.push(None);
                }
            }
            MutationRecord::Retire { seq, doc } => {
                if *seq as usize <= ids.len() {
                    if let Some(slot) = ids.get_mut(*doc as usize) {
                        *slot = None;
                    }
                }
            }
            MutationRecord::Checkpoint { .. } => {}
        }
    }
    // Paranoid alignment with the replayed index; the chaos suite's
    // fingerprint check would catch any divergence this hides.
    ids.truncate(n_docs);
    while ids.len() < n_docs {
        ids.push(None);
    }
    ids
}

/// The replayable state dump a compaction rotates the journal down to: one
/// `AddVector` per local row (tombstoned rows keep their live bits and an
/// empty global id) followed by one `Retire` per tombstone. Replaying the
/// dump reproduces the same document count, the same visible `(gid, row)`
/// set, and the same next sequence number as the live shard.
pub(crate) fn state_dump(ids: &[Option<u64>], index: &LsiIndex) -> Vec<MutationRecord> {
    let n = ids.len();
    let mut records = Vec::with_capacity(n + ids.iter().filter(|id| id.is_none()).count());
    for (local, gid) in ids.iter().enumerate() {
        records.push(MutationRecord::AddVector {
            seq: local as u64,
            doc_id: gid.map(|g| g.to_string()).unwrap_or_default(),
            coords: index.doc_vector(local).to_vec(),
        });
    }
    for (local, gid) in ids.iter().enumerate() {
        if gid.is_none() {
            records.push(MutationRecord::Retire {
                seq: n as u64,
                doc: local as u64,
            });
        }
    }
    records
}

impl Cluster {
    /// Partitions `index`'s documents into an in-memory cluster. Document
    /// `j` keeps `j` as its global id, goes to shard `j % shards` (or
    /// where [`ClusterConfig::assignment`] says), and its LSI-space row is
    /// transplanted bitwise — so the cluster's merged answers are bitwise
    /// those of `index` itself.
    pub fn build(index: &LsiIndex, config: ClusterConfig) -> Result<Self, ClusterError> {
        Self::assemble(index, None, config)
    }

    /// Like [`build`](Self::build), but every shard is durable: a
    /// basis-only snapshot `shard-NNN.lsix` plus a write-ahead journal
    /// seeded with one `AddVector` frame per document — the journal *is*
    /// the shard's canonical document list. The directory is created if
    /// missing; reopen with [`open`](Self::open).
    pub fn create(
        index: &LsiIndex,
        dir: &Path,
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        std::fs::create_dir_all(dir).map_err(StorageError::from)?;
        Self::assemble(index, Some(dir), config)
    }

    fn assemble(
        index: &LsiIndex,
        dir: Option<&Path>,
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        let config = ClusterConfig {
            shards: config.shards.max(1),
            ..config
        };
        if !(config.quorum > 0.0 && config.quorum <= 1.0) {
            return Err(ClusterError::BadOperation(format!(
                "quorum fraction must be in (0, 1], got {}",
                config.quorum
            )));
        }
        let m = index.n_docs();
        let assignment: Vec<usize> = match &config.assignment {
            Some(a) => {
                if a.len() != m {
                    return Err(ClusterError::BadOperation(format!(
                        "assignment length {} != corpus size {m}",
                        a.len()
                    )));
                }
                if let Some(&bad) = a.iter().find(|&&s| s >= config.shards) {
                    return Err(ClusterError::BadOperation(format!(
                        "assignment names shard {bad}, but the cluster has {}",
                        config.shards
                    )));
                }
                a.clone()
            }
            None => (0..m).map(|j| j % config.shards).collect(),
        };

        let basis = index.basis_clone();
        let mut cells = Vec::with_capacity(config.shards);
        let mut health = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let docs: Vec<(u64, Vec<f64>)> = (0..m)
                .filter(|&j| assignment[j] == shard)
                .map(|j| (j as u64, index.doc_vector(j).to_vec()))
                .collect();
            let cell = match dir {
                Some(dir) => Self::create_durable_shard(dir, shard, &basis, &docs, &config)?,
                None => Self::create_plain_shard(&basis, &docs, shard, &config)?,
            };
            cells.push(RwLock::new(cell));
            health.push(ShardHealth::default());
        }
        Ok(Cluster {
            basis,
            cells,
            health,
            counters: ClusterCounters::default(),
            config,
            dir: dir.map(Path::to_path_buf),
            next_gid: AtomicU64::new(m as u64),
            moves: RwLock::new(()),
        })
    }

    fn engine_config_for(config: &ClusterConfig, shard: usize) -> EngineConfig {
        let mut engine = config.engine.clone();
        engine.deadline = Some(config.hard_deadline);
        if let Some(hooks) = &config.fault_hooks {
            if let Some(hook) = hooks(shard) {
                engine.fault_hook = Some(hook);
            }
        }
        engine
    }

    fn create_plain_shard(
        basis: &LsiIndex,
        docs: &[(u64, Vec<f64>)],
        shard: usize,
        config: &ClusterConfig,
    ) -> Result<ShardCell, ClusterError> {
        let mut index = basis.clone();
        for (_, coords) in docs {
            index.add_document_vector(coords).map_err(|e| {
                ClusterError::Query(QueryError::Internal {
                    detail: format!("shard seeding rejected a row: {e}"),
                })
            })?;
        }
        let engine = QueryEngine::new(index, Self::engine_config_for(config, shard));
        Ok(ShardCell {
            transport: Some(Box::new(LocalShard::new(engine))),
            ids: docs.iter().map(|&(gid, _)| Some(gid)).collect(),
            generation: 0,
        })
    }

    fn create_durable_shard(
        dir: &Path,
        shard: usize,
        basis: &LsiIndex,
        docs: &[(u64, Vec<f64>)],
        config: &ClusterConfig,
    ) -> Result<ShardCell, ClusterError> {
        let snapshot = shard_snapshot_path(dir, shard);
        lsi_core::write_index_atomic(&snapshot, basis)?;
        let records: Vec<MutationRecord> = docs
            .iter()
            .enumerate()
            .map(|(local, (gid, coords))| MutationRecord::AddVector {
                seq: local as u64,
                doc_id: gid.to_string(),
                coords: coords.clone(),
            })
            .collect();
        Journal::create_with(&journal_path(&snapshot), &records)?;
        let (durable, report, records) = DurableIndex::open_durable_with_records(&snapshot)?;
        let ids = rebuild_ids(report.snapshot_docs, &records, durable.index().n_docs());
        let engine = QueryEngine::with_durable(durable, Self::engine_config_for(config, shard));
        Ok(ShardCell {
            transport: Some(Box::new(LocalShard::new(engine))),
            ids,
            generation: 0,
        })
    }

    /// Reopens a durable cluster from its shard directory, replaying every
    /// shard's journal over its basis snapshot and rebuilding the id maps
    /// from the replayed records. Returns one [`RecoveryReport`] per shard
    /// (shard-index order). `config.shards` is ignored — the on-disk shard
    /// set wins.
    pub fn open(
        dir: &Path,
        config: ClusterConfig,
    ) -> Result<(Self, Vec<RecoveryReport>), ClusterError> {
        let (cluster, reports) = Self::open_tolerant(dir, config)?;
        let mut out = Vec::with_capacity(reports.len());
        for report in reports {
            out.push(report.map_err(ClusterError::Storage)?);
        }
        Ok((cluster, out))
    }

    /// [`open`](Self::open), tolerating unopenable shards: a shard whose
    /// snapshot is too damaged to open at all (directory or
    /// essential-section corruption) is left *down* — its slot remains,
    /// the scatter skips it, and answers are honestly marked
    /// [`MissingShards`](ClusterDegradeReason::MissingShards) under the
    /// usual quorum rules — instead of failing the whole cluster open.
    /// Damage is thereby contained twice over: a flipped byte in one
    /// shard's degradable section quarantines just that section (the
    /// shard still opens), and essential damage downs just that shard.
    ///
    /// Returns, per shard, `Ok(report)` or the open error that downed it.
    /// Fails only when *no* shard opens (nothing to serve, and no basis
    /// to serve it with).
    pub fn open_tolerant(
        dir: &Path,
        config: ClusterConfig,
    ) -> Result<(Self, Vec<Result<RecoveryReport, StorageError>>), ClusterError> {
        let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(StorageError::from)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".lsix"))
            })
            .collect();
        snapshots.sort();
        if snapshots.is_empty() {
            return Err(ClusterError::BadOperation(format!(
                "no shard-NNN.lsix snapshots under {}",
                dir.display()
            )));
        }

        let mut cells = Vec::with_capacity(snapshots.len());
        let mut health = Vec::with_capacity(snapshots.len());
        let mut reports = Vec::with_capacity(snapshots.len());
        let mut basis: Option<LsiIndex> = None;
        let mut next_gid = 0u64;
        for (shard, snapshot) in snapshots.iter().enumerate() {
            let (durable, report, records) = match DurableIndex::open_durable_with_records(snapshot)
            {
                Ok(opened) => opened,
                Err(e) => {
                    // Down, not fatal: the slot stays so shard indices and
                    // quorum arithmetic are unchanged, and the scatter
                    // simply gets nothing from it.
                    cells.push(RwLock::new(ShardCell {
                        transport: None,
                        ids: Vec::new(),
                        generation: 0,
                    }));
                    health.push(ShardHealth::default());
                    reports.push(Err(e));
                    continue;
                }
            };
            let ids = rebuild_ids(report.snapshot_docs, &records, durable.index().n_docs());
            for gid in ids.iter().flatten() {
                next_gid = next_gid.max(gid + 1);
            }
            if basis.is_none() {
                basis = Some(durable.index().basis_clone());
            }
            let engine =
                QueryEngine::with_durable(durable, Self::engine_config_for(&config, shard));
            cells.push(RwLock::new(ShardCell {
                transport: Some(Box::new(LocalShard::new(engine))),
                ids,
                generation: 0,
            }));
            health.push(ShardHealth::default());
            reports.push(Ok(report));
        }
        let n_shards = cells.len();
        let Some(basis) = basis else {
            // Every shard failed to open; surface the first failure (the
            // caller cannot serve anything, so this is a hard error).
            let first = reports.into_iter().find_map(Result::err);
            return Err(match first {
                Some(e) => ClusterError::Storage(e),
                None => ClusterError::BadOperation("shard scan produced no basis".to_string()),
            });
        };
        Ok((
            Cluster {
                basis,
                cells,
                health,
                counters: ClusterCounters::default(),
                config: ClusterConfig {
                    shards: n_shards,
                    ..config
                },
                dir: Some(dir.to_path_buf()),
                next_gid: AtomicU64::new(next_gid),
                moves: RwLock::new(()),
            },
            reports,
        ))
    }

    /// Number of shards (stable indices; merged-away shards stay as empty
    /// slots).
    pub fn n_shards(&self) -> usize {
        self.cells.len()
    }

    /// Documents currently visible across all shards.
    pub fn n_docs(&self) -> usize {
        self.cells
            .iter()
            .map(|cell| cell.read().unwrap_or_else(|p| p.into_inner()).alive())
            .sum()
    }

    /// True when the shards journal their mutations to disk.
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// The visible global ids on `shard`, in local-slot order.
    pub fn shard_docs(&self, shard: usize) -> Result<Vec<u64>, ClusterError> {
        self.check_shard(shard)?;
        let cell = self.cells[shard].read().unwrap_or_else(|p| p.into_inner());
        Ok(cell.ids.iter().copied().flatten().collect())
    }

    fn check_shard(&self, shard: usize) -> Result<(), ClusterError> {
        if shard >= self.cells.len() {
            return Err(ClusterError::BadOperation(format!(
                "shard {shard} out of range (cluster has {})",
                self.cells.len()
            )));
        }
        Ok(())
    }

    fn quorum_needed(&self) -> usize {
        let n = self.cells.len();
        (((self.config.quorum * n as f64).ceil()) as usize).clamp(1, n)
    }

    fn note_failure(&self, shard: usize) {
        self.health[shard].failures.fetch_add(1, Ordering::Relaxed);
        let consecutive = self.health[shard]
            .consecutive
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        if consecutive >= self.config.breaker_threshold {
            self.health[shard].ejected.store(true, Ordering::Relaxed);
        }
    }

    /// Closes `shard`'s circuit breaker: clears the consecutive-failure
    /// count and puts the shard back into the scatter set.
    pub fn revive(&self, shard: usize) -> Result<(), ClusterError> {
        self.check_shard(shard)?;
        self.health[shard].consecutive.store(0, Ordering::Relaxed);
        self.health[shard].ejected.store(false, Ordering::Relaxed);
        Ok(())
    }

    /// Scatters `query` to every non-ejected shard, gathers with per-shard
    /// soft-deadline hedging and hard-deadline give-up, and merges the
    /// replies with the order-fixed reduction ([`merge_top_k`]). See the
    /// [module docs](self) for the full state machine.
    pub fn query(&self, query: Query) -> Result<ClusterResponse, ClusterError> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.basis.validate_query(&query.terms) {
            self.counters.bad_query.fetch_add(1, Ordering::Relaxed);
            return Err(match e {
                LsiError::BadQuery(bad) => ClusterError::BadQuery(bad),
                other => ClusterError::Query(QueryError::Internal {
                    detail: other.to_string(),
                }),
            });
        }

        let n = self.cells.len();
        let mut attempts: Vec<ShardAttempt> = Vec::with_capacity(n);
        {
            // Hold the move lock across the whole scatter so every shard's
            // id-map snapshot reflects the same set of completed moves.
            let _moves = self.moves.read().unwrap_or_else(|p| p.into_inner());
            for (shard, cell) in self.cells.iter().enumerate() {
                if self.health[shard].ejected.load(Ordering::Relaxed) {
                    attempts.push(ShardAttempt::Skipped);
                    continue;
                }
                let cell = cell.read().unwrap_or_else(|p| p.into_inner());
                let Some(transport) = &cell.transport else {
                    attempts.push(ShardAttempt::Skipped);
                    continue;
                };
                self.health[shard].queries.fetch_add(1, Ordering::Relaxed);
                // Ask for every local hit: truncation happens once, in the
                // merged global ranking, so a shard-local cutoff can never
                // change the answer.
                let local = Query {
                    terms: query.terms.clone(),
                    top_k: usize::MAX,
                    tag: query.tag,
                };
                match transport.submit(local) {
                    Ok(pending) => attempts.push(ShardAttempt::InFlight {
                        pending,
                        ids: cell.ids.clone(),
                        generation: cell.generation,
                        submitted: Instant::now(),
                    }),
                    Err(_) => attempts.push(ShardAttempt::Refused),
                }
            }
        }

        // Gather into shard-indexed slots; arrival order cannot influence
        // the merge input.
        let mut slots: Vec<Option<Vec<SearchHit>>> = Vec::with_capacity(n);
        let mut degraded_replies = 0usize;
        for (shard, attempt) in attempts.into_iter().enumerate() {
            match attempt {
                ShardAttempt::Skipped => slots.push(None),
                ShardAttempt::Refused => {
                    self.note_failure(shard);
                    slots.push(None);
                }
                ShardAttempt::InFlight {
                    pending,
                    ids,
                    generation,
                    submitted,
                } => match self.await_shard(shard, pending, submitted, generation, &query) {
                    Some(response) => {
                        if response.is_degraded() {
                            degraded_replies += 1;
                        }
                        self.health[shard].consecutive.store(0, Ordering::Relaxed);
                        slots.push(Some(map_hits(response.hits(), &ids)));
                    }
                    None => {
                        self.note_failure(shard);
                        slots.push(None);
                    }
                },
            }
        }

        let answered = slots.iter().filter(|slot| slot.is_some()).count();
        let needed = self.quorum_needed();
        if answered < needed {
            self.counters.quorum_lost.fetch_add(1, Ordering::Relaxed);
            return Err(ClusterError::QuorumLost {
                answered,
                needed,
                shards: n,
            });
        }

        let hits = merge_top_k(&slots, query.top_k);
        let missing = n - answered;
        if missing == 0 && degraded_replies == 0 {
            self.counters.complete.fetch_add(1, Ordering::Relaxed);
            Ok(ClusterResponse::Complete(hits))
        } else {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            let reason = if missing > 0 {
                ClusterDegradeReason::MissingShards(missing)
            } else {
                ClusterDegradeReason::DegradedReplies(degraded_replies)
            };
            Ok(ClusterResponse::Degraded { hits, reason })
        }
    }

    /// Waits out one shard's reply with the soft-deadline / hedge / hard-
    /// deadline ladder. Returns `None` when the shard contributes nothing
    /// to this query. The hedge reply is mapped through the *original*
    /// submit-time id snapshot by the caller — within one shard
    /// incarnation shard rows are append-only and never mutated in place,
    /// so any local id covered by that snapshot scores to the same bits in
    /// the hedge reply. A crash-recovered shard breaks that invariant
    /// (replay zeroes `Retire`d rows), so a hedge is only submitted while
    /// `generation` still matches the scatter-time incarnation — whether
    /// the recovery was an in-process engine swap or a supervisor
    /// respawning a killed daemon.
    fn await_shard(
        &self,
        shard: usize,
        pending: PendingReply,
        submitted: Instant,
        generation: u64,
        query: &Query,
    ) -> Option<QueryResponse> {
        let hard_at = submitted + self.config.hard_deadline;
        let Some(soft) = self.config.soft_deadline else {
            return match pending.wait_until(hard_at) {
                Ok(result) => result.ok(),
                Err(_pending) => None,
            };
        };

        let original = match pending.wait_until(submitted + soft) {
            Ok(result) => return result.ok(),
            Err(pending) => pending,
        };
        self.health[shard]
            .deadline_hits
            .fetch_add(1, Ordering::Relaxed);

        // Hedge a retry into the same shard's pool: a respawned or idle
        // worker (or, cross-process, a fresh connection) often answers
        // while the first pick is stuck.
        let hedge = {
            let cell = self.cells[shard].read().unwrap_or_else(|p| p.into_inner());
            if cell.generation == generation {
                cell.transport.as_ref().map(|transport| {
                    transport.submit(Query {
                        terms: query.terms.clone(),
                        top_k: usize::MAX,
                        tag: query.tag,
                    })
                })
            } else {
                // The shard was crash-swapped since the scatter: the id
                // snapshot no longer maps this shard's answers faithfully,
                // so only the original (same-incarnation) reply may still
                // contribute.
                None
            }
        };
        match hedge {
            Some(Ok(hedge_pending)) => {
                self.health[shard].hedges.fetch_add(1, Ordering::Relaxed);
                match hedge_pending.wait_until(hard_at) {
                    Ok(Ok(response)) => Some(response),
                    // Hedge failed outright: the original may still answer
                    // within the hard budget.
                    Ok(Err(_)) => match original.wait_until(hard_at) {
                        Ok(result) => result.ok(),
                        Err(_pending) => None,
                    },
                    // Hedge is also late; one last non-blocking poll of
                    // the original before giving up on the shard.
                    Err(_hedge_pending) => match original.wait_until(Instant::now()) {
                        Ok(result) => result.ok(),
                        Err(_pending) => None,
                    },
                }
            }
            Some(Err(_)) | None => match original.wait_until(hard_at) {
                Ok(result) => result.ok(),
                Err(_pending) => None,
            },
        }
    }

    /// Folds a new document into the cluster: projects `terms` through the
    /// shared basis, assigns the next global id, and appends the row to
    /// the least-loaded live shard (ties to the lowest index). On durable
    /// clusters the row is journaled and fsynced before this returns.
    /// Returns the document's global id.
    pub fn add_document(&self, terms: &[(usize, f64)]) -> Result<u64, ClusterError> {
        self.basis.validate_query(terms).map_err(|e| match e {
            LsiError::BadQuery(bad) => ClusterError::BadQuery(bad),
            other => ClusterError::Query(QueryError::Internal {
                detail: other.to_string(),
            }),
        })?;
        let coords = self.basis.fold_in(terms);
        let _moves = self.moves.write().unwrap_or_else(|p| p.into_inner());
        let target = self
            .cells
            .iter()
            .enumerate()
            .filter(|&(s, _)| !self.health[s].ejected.load(Ordering::Relaxed))
            .map(|(s, cell)| (cell.read().unwrap_or_else(|p| p.into_inner()).alive(), s))
            .min()
            .map(|(_, s)| s)
            .ok_or_else(|| {
                ClusterError::BadOperation("no live shard to place the document on".to_string())
            })?;
        let gid = self.next_gid.fetch_add(1, Ordering::Relaxed);
        let mut cell = self.cells[target]
            .write()
            .unwrap_or_else(|p| p.into_inner());
        let Some(transport) = &cell.transport else {
            return Err(ClusterError::Query(QueryError::ShuttingDown));
        };
        transport.add_document_vector(&gid.to_string(), &coords)?;
        cell.ids.push(Some(gid));
        Ok(gid)
    }

    /// Moves `docs` (global ids) from shard `from` to shard `to`,
    /// crash-consistently: per document, the `AddVector` is journaled and
    /// fsynced on the **destination before** the source tombstone is
    /// journaled and the id map updated. A crash between the two leaves
    /// the document on both shards; the merge's global-id dedup restores
    /// exactly-once on reopen. Queries never observe a half-applied move
    /// (the scatter snapshots id maps under the move lock). Returns the
    /// number of documents moved.
    pub fn rebalance(&self, from: usize, to: usize, docs: &[u64]) -> Result<usize, ClusterError> {
        self.check_shard(from)?;
        self.check_shard(to)?;
        if from == to {
            return Err(ClusterError::BadOperation(format!(
                "rebalance source and destination are both shard {from}"
            )));
        }
        let mut moved = 0usize;
        for &gid in docs {
            let _moves = self.moves.write().unwrap_or_else(|p| p.into_inner());
            // 1. Read the row off the source (no lock held across steps:
            //    the move lock already excludes every other mover).
            let (local, coords) = {
                let cell = self.cells[from].read().unwrap_or_else(|p| p.into_inner());
                let Some(transport) = &cell.transport else {
                    return Err(ClusterError::Query(QueryError::ShuttingDown));
                };
                let local = cell
                    .ids
                    .iter()
                    .position(|&id| id == Some(gid))
                    .ok_or(ClusterError::UnknownDocument { doc: gid })?;
                (local, transport.doc_vector(local)?)
            };
            // 2. Destination first: journal + apply + map.
            {
                let mut cell = self.cells[to].write().unwrap_or_else(|p| p.into_inner());
                let Some(transport) = &cell.transport else {
                    return Err(ClusterError::Query(QueryError::ShuttingDown));
                };
                transport.add_document_vector(&gid.to_string(), &coords)?;
                cell.ids.push(Some(gid));
            }
            // 3. Then the source tombstone: journal-only retire (the live
            //    row keeps its bits for in-flight readers), map update.
            {
                let mut cell = self.cells[from].write().unwrap_or_else(|p| p.into_inner());
                let Some(transport) = &cell.transport else {
                    return Err(ClusterError::Query(QueryError::ShuttingDown));
                };
                transport.log_retire(local)?;
                cell.ids[local] = None;
            }
            moved += 1;
        }
        Ok(moved)
    }

    /// Splits `shard` by adding a new shard to the cluster and moving the
    /// upper half of `shard`'s documents onto it through the journaled
    /// [`rebalance`](Self::rebalance) path. Returns the new shard's index.
    pub fn split(&mut self, shard: usize) -> Result<usize, ClusterError> {
        self.check_shard(shard)?;
        let new_shard = self.cells.len();
        let cell = match &self.dir {
            Some(dir) => {
                let dir = dir.clone();
                Self::create_durable_shard(&dir, new_shard, &self.basis, &[], &self.config)?
            }
            None => Self::create_plain_shard(&self.basis, &[], new_shard, &self.config)?,
        };
        self.cells.push(RwLock::new(cell));
        self.health.push(ShardHealth::default());
        let docs = self.shard_docs(shard)?;
        let upper = &docs[docs.len() / 2..];
        self.rebalance(shard, new_shard, upper)?;
        Ok(new_shard)
    }

    /// Merges shard `from` into shard `into` by moving every visible
    /// document through the journaled [`rebalance`](Self::rebalance) path.
    /// `from` stays in the cluster as an empty shard (indices are stable);
    /// compact it afterwards to shrink its journal to the empty dump.
    pub fn merge_shards(&mut self, from: usize, into: usize) -> Result<usize, ClusterError> {
        let docs = self.shard_docs(from)?;
        self.rebalance(from, into, &docs)
    }

    /// Compacts `shard`'s journal down to the replayable state dump of its
    /// live rows and tombstones ([`state_dump`] semantics), bounding the
    /// journal at `O(rows)` frames regardless of mutation history. A no-op
    /// (`Ok(false)`) for in-memory clusters.
    pub fn compact_shard(&self, shard: usize) -> Result<bool, ClusterError> {
        self.check_shard(shard)?;
        let cell = self.cells[shard].write().unwrap_or_else(|p| p.into_inner());
        let Some(transport) = &cell.transport else {
            return Err(ClusterError::Query(QueryError::ShuttingDown));
        };
        Ok(transport.compact(&cell.ids)?)
    }

    /// Fingerprint of the cluster's visible documents: global id → the
    /// exact bit pattern of the document's LSI-space row. Two clusters
    /// with equal fingerprints answer every query with identical bits; the
    /// chaos suite compares fingerprints across crash-recovery cycles.
    pub fn fingerprint(&self) -> BTreeMap<u64, Vec<u64>> {
        let mut map = BTreeMap::new();
        for cell in &self.cells {
            let cell = cell.read().unwrap_or_else(|p| p.into_inner());
            let Some(transport) = &cell.transport else {
                continue;
            };
            for (local, gid) in cell.ids.iter().enumerate() {
                if let Some(gid) = gid {
                    if let Ok(coords) = transport.doc_vector(local) {
                        map.insert(*gid, coords.iter().map(|x| x.to_bits()).collect());
                    }
                }
            }
        }
        map
    }

    /// Simulates a shard crash (chaos testing only, durable clusters
    /// only): shuts the shard's engine down — closing its journal handle —
    /// runs `damage` on the shard's snapshot path (tear the journal,
    /// scribble on tails…), then recovers the shard by replay exactly as
    /// [`open`](Self::open) would. Queries concurrently scattered to the
    /// shard block on its cell lock for the duration; queries already in
    /// flight never hedge into the recovered engine (the incarnation bump
    /// invalidates their id snapshots), so they either finish on the old
    /// engine's reply or degrade. Returns the shard's recovery report.
    pub fn crash_shard_with<F>(
        &self,
        shard: usize,
        damage: F,
    ) -> Result<RecoveryReport, ClusterError>
    where
        F: FnOnce(&Path),
    {
        self.check_shard(shard)?;
        let Some(dir) = &self.dir else {
            return Err(ClusterError::BadOperation(
                "crash simulation needs a durable cluster".to_string(),
            ));
        };
        let snapshot = shard_snapshot_path(dir, shard);
        let mut cell = self.cells[shard].write().unwrap_or_else(|p| p.into_inner());
        if cell
            .transport
            .as_ref()
            .is_some_and(|t| t.engine().is_none())
        {
            // A remote shard's journal belongs to its daemon process;
            // opening it here would race the owner. Kill the daemon (the
            // supervisor respawns it) instead of simulating in-process.
            return Err(ClusterError::BadOperation(
                "crash simulation needs in-process shards; kill the daemon instead".to_string(),
            ));
        }
        if let Some(transport) = cell.transport.take() {
            if let Some(engine) = transport.take_engine() {
                engine.shutdown();
            }
        }
        damage(&snapshot);
        let (durable, report, records) = DurableIndex::open_durable_with_records(&snapshot)?;
        cell.ids = rebuild_ids(report.snapshot_docs, &records, durable.index().n_docs());
        cell.transport = Some(Box::new(LocalShard::new(QueryEngine::with_durable(
            durable,
            Self::engine_config_for(&self.config, shard),
        ))));
        // New incarnation: replay zeroed any `Retire`d rows, so in-flight
        // queries holding the pre-crash id snapshot must not hedge into
        // this engine (see `ShardCell::generation`).
        cell.generation += 1;
        Ok(report)
    }

    /// A point-in-time copy of the coordinator's counters plus one
    /// [`ShardStatsRow`] per shard.
    pub fn stats(&self) -> ClusterStatsSnapshot {
        let shards = self
            .cells
            .iter()
            .enumerate()
            .map(|(shard, cell)| {
                let cell = cell.read().unwrap_or_else(|p| p.into_inner());
                ShardStatsRow {
                    shard,
                    docs: cell.alive(),
                    tombstones: cell.tombstones(),
                    queries: self.health[shard].queries.load(Ordering::Relaxed),
                    failures: self.health[shard].failures.load(Ordering::Relaxed),
                    consecutive_failures: self.health[shard].consecutive.load(Ordering::Relaxed),
                    deadline_hits: self.health[shard].deadline_hits.load(Ordering::Relaxed),
                    hedges: self.health[shard].hedges.load(Ordering::Relaxed),
                    ejected: self.health[shard].ejected.load(Ordering::Relaxed),
                    engine: cell
                        .transport
                        .as_ref()
                        .map(|transport| transport.stats())
                        .unwrap_or_else(|| crate::stats::ServeStats::new().snapshot()),
                }
            })
            .collect();
        ClusterStatsSnapshot {
            queries: self.counters.queries.load(Ordering::Relaxed),
            complete: self.counters.complete.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            quorum_lost: self.counters.quorum_lost.load(Ordering::Relaxed),
            bad_query: self.counters.bad_query.load(Ordering::Relaxed),
            shards,
        }
    }

    /// Shuts every shard transport down — in-process engines drain their
    /// queues and join their workers; remote daemons are left to their
    /// supervisor's shutdown.
    pub fn shutdown(self) {
        for cell in self.cells {
            let cell = cell.into_inner().unwrap_or_else(|p| p.into_inner());
            if let Some(transport) = cell.transport {
                transport.shutdown();
            }
        }
    }

    /// Assembles a coordinator over already-running shard transports (the
    /// supervisor's entry point: one RPC transport + hello-reported id map
    /// per daemon). `basis` must be the shards' shared basis — the
    /// supervisor reads it from a shard snapshot, read-only.
    pub(crate) fn from_remote_parts(
        basis: LsiIndex,
        shards: Vec<crate::transport::ShardPart>,
        dir: PathBuf,
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        if shards.is_empty() {
            return Err(ClusterError::BadOperation(
                "a cluster needs at least one shard transport".to_string(),
            ));
        }
        if !(config.quorum > 0.0 && config.quorum <= 1.0) {
            return Err(ClusterError::BadOperation(format!(
                "quorum fraction must be in (0, 1], got {}",
                config.quorum
            )));
        }
        let n_shards = shards.len();
        let mut next_gid = 0u64;
        let mut cells = Vec::with_capacity(n_shards);
        let mut health = Vec::with_capacity(n_shards);
        for (transport, ids) in shards {
            for gid in ids.iter().flatten() {
                next_gid = next_gid.max(gid + 1);
            }
            cells.push(RwLock::new(ShardCell {
                transport: Some(transport),
                ids,
                generation: 0,
            }));
            health.push(ShardHealth::default());
        }
        Ok(Cluster {
            basis,
            cells,
            health,
            counters: ClusterCounters::default(),
            config: ClusterConfig {
                shards: n_shards,
                ..config
            },
            dir: Some(dir),
            next_gid: AtomicU64::new(next_gid),
            moves: RwLock::new(()),
        })
    }

    /// Swaps in a fresh transport for `shard` (the supervisor's respawn
    /// path), adopting the id map the recovered daemon reported in its
    /// hello — the journal's truth, which supersedes the coordinator's map
    /// because acks lost to the kill may have been journaled. Bumps the
    /// shard's incarnation so in-flight queries never hedge across the
    /// recovery, exactly as [`crash_shard_with`](Self::crash_shard_with)
    /// does in-process.
    pub(crate) fn swap_shard_transport(
        &self,
        shard: usize,
        transport: Box<dyn ShardTransport>,
        ids: Vec<Option<u64>>,
    ) -> Result<(), ClusterError> {
        self.check_shard(shard)?;
        let mut cell = self.cells[shard].write().unwrap_or_else(|p| p.into_inner());
        if let Some(old) = cell.transport.take() {
            old.shutdown();
        }
        // Adopted ids can include journaled-but-unacked fold-ins; keep the
        // global id allocator ahead of everything the journal holds.
        for gid in ids.iter().flatten() {
            self.next_gid.fetch_max(gid + 1, Ordering::Relaxed);
        }
        cell.ids = ids;
        cell.transport = Some(transport);
        cell.generation += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsi_core::LsiConfig;
    use lsi_ir::TermDocumentMatrix;
    use std::sync::atomic::AtomicBool;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsi_cluster_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// 10 docs over 8 terms with enough overlap that queries rank most of
    /// the corpus.
    fn sample_index() -> LsiIndex {
        let mut triplets = Vec::new();
        for doc in 0..10usize {
            for off in 0..3usize {
                let term = (doc + off * 2) % 8;
                triplets.push((term, doc, 1.0 + ((doc * 7 + off * 3) % 5) as f64));
            }
        }
        let td = TermDocumentMatrix::from_triplets(8, 10, &triplets).expect("valid triplets");
        LsiIndex::build(&td, LsiConfig::with_rank(3)).expect("build index")
    }

    fn bits(list: &RankedList) -> Vec<(usize, u64)> {
        list.hits()
            .iter()
            .map(|h| (h.doc, h.score.to_bits()))
            .collect()
    }

    fn fast_config(shards: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn sharded_answers_match_the_unsharded_index_bitwise() {
        let index = sample_index();
        let terms = vec![(0, 2.0), (3, 1.0), (5, 0.5)];
        let direct = index.try_query(&terms, 6, None).expect("direct query");
        for shards in [1, 2, 3, 5] {
            let cluster = Cluster::build(&index, fast_config(shards)).expect("build cluster");
            let response = cluster.query(Query::new(terms.clone(), 6)).expect("query");
            assert!(!response.is_degraded(), "{shards} shards degraded");
            assert_eq!(
                bits(response.hits()),
                bits(&direct),
                "{shards}-shard answer diverged from the unsharded index"
            );
            assert!(cluster.stats().consistent());
            cluster.shutdown();
        }
    }

    #[test]
    fn merge_is_invariant_to_slot_count_and_duplicates() {
        let hit = |doc: usize, score: f64| SearchHit { doc, score };
        let a = vec![hit(3, 0.9), hit(1, 0.2)];
        let b = vec![hit(2, 0.5), hit(7, 0.4)];
        let merged = merge_top_k(&[Some(a.clone()), Some(b.clone())], 3);
        let merged_swapped = merge_top_k(&[Some(b.clone()), Some(a.clone())], 3);
        assert_eq!(bits(&merged), bits(&merged_swapped));
        assert_eq!(merged.doc_ids(), vec![3, 2, 7]);

        // A doc caught mid-move shows up in both slots with identical bits;
        // the merge keeps exactly one copy.
        let with_dup = merge_top_k(&[Some(a.clone()), Some(b), Some(a)], 10);
        assert_eq!(with_dup.doc_ids(), vec![3, 2, 7, 1]);
    }

    #[test]
    fn breaker_ejects_a_poisoned_shard_and_revive_restores_it() {
        let index = sample_index();
        let poisoned = Arc::new(AtomicBool::new(true));
        let hook_flag = Arc::clone(&poisoned);
        let mut config = fast_config(2);
        config.breaker_threshold = 2;
        config.fault_hooks = Some(Arc::new(move |shard| {
            if shard != 1 {
                return None;
            }
            let flag = Arc::clone(&hook_flag);
            Some(Arc::new(move |_tag| {
                if flag.load(Ordering::Relaxed) {
                    panic!("injected shard poison");
                }
            }) as FaultHook)
        }));
        let cluster = Cluster::build(&index, config).expect("build cluster");
        let terms = vec![(0, 1.0)];

        for i in 0..4 {
            let response = cluster
                .query(Query::new(terms.clone(), 5))
                .expect("quorum holds");
            match response {
                ClusterResponse::Degraded {
                    reason: ClusterDegradeReason::MissingShards(1),
                    ..
                } => {}
                other => panic!("query {i}: expected one missing shard, got {other:?}"),
            }
        }
        let stats = cluster.stats();
        assert!(
            stats.shards[1].ejected,
            "breaker should have opened:\n{}",
            stats.table()
        );
        // Ejected shards are skipped entirely: query count stops rising.
        let scattered_before = stats.shards[1].queries;
        let _ = cluster
            .query(Query::new(terms.clone(), 5))
            .expect("still answering");
        assert_eq!(cluster.stats().shards[1].queries, scattered_before);

        poisoned.store(false, Ordering::Relaxed);
        cluster.revive(1).expect("revive");
        let response = cluster
            .query(Query::new(terms.clone(), 5))
            .expect("revived");
        assert!(!response.is_degraded(), "revived shard should answer again");
        assert!(cluster.stats().consistent());
        cluster.shutdown();
    }

    #[test]
    fn quorum_loss_is_a_loud_error() {
        let index = sample_index();
        let mut config = fast_config(2);
        config.quorum = 1.0;
        config.fault_hooks = Some(Arc::new(|shard| {
            (shard == 1).then(|| Arc::new(|_tag: u64| panic!("injected shard poison")) as FaultHook)
        }));
        let cluster = Cluster::build(&index, config).expect("build cluster");
        match cluster.query(Query::new(vec![(0, 1.0)], 5)) {
            Err(ClusterError::QuorumLost {
                answered: 1,
                needed: 2,
                shards: 2,
            }) => {}
            other => panic!("expected quorum loss, got {other:?}"),
        }
        let stats = cluster.stats();
        assert_eq!(stats.quorum_lost, 1);
        assert!(stats.consistent());
        cluster.shutdown();
    }

    #[test]
    fn rebalance_preserves_answers_and_moves_ownership() {
        let index = sample_index();
        let terms = vec![(1, 1.0), (4, 2.0)];
        let direct = index.try_query(&terms, 10, None).expect("direct query");
        let cluster = Cluster::build(&index, fast_config(2)).expect("build cluster");

        let before = cluster.fingerprint();
        let moved = cluster.rebalance(0, 1, &[0, 4]).expect("rebalance");
        assert_eq!(moved, 2);
        assert!(cluster.shard_docs(1).expect("docs").contains(&4));
        assert!(!cluster.shard_docs(0).expect("docs").contains(&4));
        assert_eq!(
            cluster.fingerprint(),
            before,
            "moves must not change visible bits"
        );

        let response = cluster.query(Query::new(terms, 10)).expect("query");
        assert!(!response.is_degraded());
        assert_eq!(bits(response.hits()), bits(&direct));
        assert!(matches!(
            cluster.rebalance(0, 1, &[0]),
            Err(ClusterError::UnknownDocument { doc: 0 })
        ));
        cluster.shutdown();
    }

    #[test]
    fn split_and_merge_keep_the_visible_corpus_intact() {
        let index = sample_index();
        let terms = vec![(2, 1.0), (6, 1.0)];
        let direct = index.try_query(&terms, 10, None).expect("direct query");
        let mut cluster = Cluster::build(&index, fast_config(2)).expect("build cluster");
        let before = cluster.fingerprint();

        let new_shard = cluster.split(0).expect("split");
        assert_eq!(new_shard, 2);
        assert_eq!(cluster.n_shards(), 3);
        assert!(!cluster.shard_docs(new_shard).expect("docs").is_empty());
        assert_eq!(cluster.fingerprint(), before);

        cluster.merge_shards(new_shard, 1).expect("merge");
        assert!(cluster.shard_docs(new_shard).expect("docs").is_empty());
        assert_eq!(cluster.fingerprint(), before);

        let response = cluster.query(Query::new(terms, 10)).expect("query");
        assert_eq!(bits(response.hits()), bits(&direct));
        assert!(cluster.stats().consistent());
        cluster.shutdown();
    }

    #[test]
    fn durable_cluster_reopens_bit_identically_after_mutations() {
        let dir = temp_dir("reopen");
        let index = sample_index();
        let terms = vec![(0, 1.0), (7, 2.0)];

        let cluster = Cluster::create(&index, &dir, fast_config(3)).expect("create cluster");
        let gid = cluster
            .add_document(&[(0, 3.0), (1, 1.0)])
            .expect("fold in");
        assert_eq!(gid, 10);
        cluster.rebalance(0, 2, &[0]).expect("rebalance");
        assert!(
            cluster.compact_shard(0).expect("compact"),
            "durable shards compact"
        );
        let live_fp = cluster.fingerprint();
        let live_answer = cluster.query(Query::new(terms.clone(), 11)).expect("query");
        cluster.shutdown();

        let (reopened, reports) = Cluster::open(&dir, fast_config(999)).expect("open cluster");
        assert_eq!(reopened.n_shards(), 3, "on-disk shard set wins over config");
        assert_eq!(reports.len(), 3);
        assert_eq!(reopened.fingerprint(), live_fp);
        assert_eq!(reopened.n_docs(), 11);
        let answer = reopened.query(Query::new(terms, 11)).expect("query");
        assert_eq!(bits(answer.hits()), bits(live_answer.hits()));
        reopened.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_queries_and_bad_operations_are_typed() {
        let index = sample_index();
        let cluster = Cluster::build(&index, fast_config(2)).expect("build cluster");
        assert!(matches!(
            cluster.query(Query::new(vec![(999, 1.0)], 5)),
            Err(ClusterError::BadQuery(_))
        ));
        assert!(matches!(
            cluster.rebalance(0, 0, &[1]),
            Err(ClusterError::BadOperation(_))
        ));
        assert!(matches!(
            cluster.rebalance(0, 9, &[1]),
            Err(ClusterError::BadOperation(_))
        ));
        assert!(matches!(
            cluster.crash_shard_with(0, |_| {}),
            Err(ClusterError::BadOperation(_))
        ));
        let stats = cluster.stats();
        assert_eq!(stats.bad_query, 1);
        assert!(stats.consistent());
        cluster.shutdown();
    }

    #[test]
    fn damaged_shard_snapshot_is_contained_by_tolerant_open() {
        let dir = temp_dir("tolerant_open");
        let index = sample_index();
        let cluster = Cluster::create(&index, &dir, fast_config(3)).expect("create cluster");
        cluster.shutdown();

        // Corrupt shard 1's snapshot inside an essential section: that
        // shard can no longer open at all.
        let snapshot = shard_snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&snapshot).expect("read shard snapshot");
        let report = lsi_core::inspect_snapshot(&bytes).expect("inspect shard snapshot");
        let section = report
            .sections
            .iter()
            .find(|s| s.id == Some(lsi_core::SectionId::TermFactors))
            .expect("term-factors section present");
        bytes[(section.offset + 8 + section.len / 2) as usize] ^= 0xFF;
        std::fs::write(&snapshot, &bytes).expect("install corrupt shard snapshot");

        // The strict open refuses the whole cluster.
        assert!(matches!(
            Cluster::open(&dir, fast_config(3)),
            Err(ClusterError::Storage(_))
        ));

        // The tolerant open downs exactly that shard and keeps serving:
        // the other shards' documents still answer, honestly marked.
        let (reopened, reports) =
            Cluster::open_tolerant(&dir, fast_config(3)).expect("tolerant open");
        assert_eq!(reports.len(), 3);
        assert!(reports[0].is_ok() && reports[2].is_ok());
        assert!(reports[1].is_err(), "damaged shard must report its error");
        let response = reopened
            .query(Query::new(vec![(0, 1.0), (7, 2.0)], 10))
            .expect("quorum holds with one shard down");
        match response {
            ClusterResponse::Degraded {
                hits,
                reason: ClusterDegradeReason::MissingShards(1),
            } => {
                assert!(!hits.is_empty());
                // Shard 1 held docs 1, 4, 7 (round-robin): none can appear.
                assert!(
                    hits.doc_ids().iter().all(|d| d % 3 != 1),
                    "downed shard leaked documents: {:?}",
                    hits.doc_ids()
                );
            }
            other => panic!("expected MissingShards(1), got {other:?}"),
        }
        reopened.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
