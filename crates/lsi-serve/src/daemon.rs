//! The shard daemon: one durable shard served over a Unix domain socket.
//!
//! [`run_shard_daemon`] is the body of the `lsi shard-serve` subcommand
//! (and of the re-exec'd child processes the chaos harness spawns). It
//! opens one shard exactly the way the in-process cluster does — basis
//! snapshot + write-ahead journal replay, id map rebuilt from the replayed
//! records — then binds a socket and answers the RPC grammar of
//! [`crate::transport`] until a `Shutdown` RPC (or a signal) takes it
//! down.
//!
//! ## Crash discipline
//!
//! The daemon adds **no** state of its own: the journal stays the shard's
//! single source of truth. Every mutation RPC acks only after the engine's
//! journaled path returns (append + fsync strictly before the in-memory
//! apply), so a SIGKILL at any instant loses at most unacknowledged work —
//! exactly the crash contract the in-process shard already proves in
//! `tests/crash_matrix.rs`. On restart the daemon replays the journal and
//! reports the replayed id map in its `Hello`, which is how the supervisor
//! reconciles acks the kill may have swallowed.
//!
//! ## Stale sockets
//!
//! A kill -9 leaves the socket file behind (the kernel removes the
//! *listener*, not the path). Startup therefore unlinks a leftover socket
//! path before binding — the socket-flavored analogue of the journal's
//! stale `.tmp` sweep. Socket files are coordination points, never data:
//! unlinking one can orphan a dead listener, never lose a document.

use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lsi_core::{DurableIndex, StorageError};

use crate::cluster::{rebuild_ids, state_dump};
use crate::engine::{EngineConfig, Query, QueryEngine, QueryError};
use crate::transport::{
    decode_request, encode_reply, read_frame, send_frame, RpcReply, RpcRequest, TransportError,
};

/// How long an idle connection read blocks before re-checking the stop
/// flag (also the accept poll cadence's upper bound).
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Accept-loop poll cadence while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Configuration for one shard daemon.
#[derive(Debug, Clone)]
pub struct ShardDaemonConfig {
    /// The shard's basis snapshot (`shard-NNN.lsix`); its journal sits
    /// beside it under the usual `lsi_core::journal_path` convention.
    pub snapshot: PathBuf,
    /// The Unix-domain-socket path to serve on.
    pub socket: PathBuf,
    /// Worker threads for the shard's query engine.
    pub workers: usize,
    /// Hard per-query deadline applied by the engine.
    pub hard_deadline: Duration,
}

impl ShardDaemonConfig {
    /// A daemon config with the default engine geometry.
    pub fn new(snapshot: impl Into<PathBuf>, socket: impl Into<PathBuf>) -> Self {
        let engine = EngineConfig::default();
        ShardDaemonConfig {
            snapshot: snapshot.into(),
            socket: socket.into(),
            workers: engine.workers,
            hard_deadline: Duration::from_secs(1),
        }
    }
}

/// Shared daemon state: the engine plus the id map its journal implies.
///
/// The `ids` mutex is held across every mutation RPC (journal + apply +
/// map update) and across `Hello`, so a handshake always observes an id
/// map consistent with the engine's document count.
struct DaemonState {
    engine: QueryEngine,
    ids: Mutex<Vec<Option<u64>>>,
    stop: AtomicBool,
    /// Write budget for one reply frame (the engine's hard deadline).
    reply_deadline: Duration,
}

/// Runs one shard daemon to completion: open the shard, serve the socket,
/// shut the engine down cleanly on a `Shutdown` RPC.
///
/// # Errors
/// [`StorageError`] when the shard cannot be opened (snapshot/journal
/// damage beyond recovery) or the socket cannot be bound.
pub fn run_shard_daemon(config: ShardDaemonConfig) -> Result<(), StorageError> {
    // Stale-socket sweep: a previous kill -9 leaves the path bound to a
    // dead listener; unlink it so bind() succeeds (single-owner: the
    // supervisor never runs two daemons on one path).
    match std::fs::remove_file(&config.socket) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(StorageError::from(e)),
    }

    let (durable, report, records) = DurableIndex::open_durable_with_records(&config.snapshot)?;
    let ids = rebuild_ids(report.snapshot_docs, &records, durable.index().n_docs());
    let engine_config = EngineConfig {
        workers: config.workers.max(1),
        deadline: Some(config.hard_deadline),
        ..EngineConfig::default()
    };
    let engine = QueryEngine::with_durable(durable, engine_config);

    let listener = UnixListener::bind(&config.socket).map_err(StorageError::from)?;
    listener.set_nonblocking(true).map_err(StorageError::from)?;

    let state = Arc::new(DaemonState {
        engine,
        ids: Mutex::new(ids),
        stop: AtomicBool::new(false),
        reply_deadline: config.hard_deadline.max(IDLE_POLL),
    });

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(&state);
                let handle = std::thread::Builder::new()
                    .name("lsi-shard-conn".to_string())
                    .spawn(move || serve_connection(stream, &state))
                    .map_err(StorageError::from)?;
                // Finished handlers have nothing left to run; dropping
                // their handles here keeps the vector bounded by the
                // number of *live* connections.
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(StorageError::from(e)),
        }
    }

    for handle in handlers {
        let _ = handle.join();
    }
    match Arc::try_unwrap(state) {
        Ok(state) => state.engine.shutdown(),
        Err(_) => {
            // A handler outlived its join (cannot happen: all were joined
            // above) — leak the engine rather than hang.
        }
    }
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Serves one connection: a loop of (frame in, dispatch, frame out).
///
/// The coordinator's transport opens one connection per RPC, but the loop
/// tolerates pipelined callers. Idle reads block [`IDLE_POLL`] at a time
/// so a `Shutdown` elsewhere stops this handler promptly.
fn serve_connection(mut stream: UnixStream, state: &DaemonState) {
    let mut buf = Vec::new();
    loop {
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let payload = match read_frame(&mut stream, Instant::now() + IDLE_POLL, &mut buf) {
            Ok(payload) => payload,
            Err(TransportError::Deadline) => continue,
            // EOF, frame damage, or a vanished peer: nothing sensible to
            // reply to — drop the connection (per-call transport opens a
            // fresh one anyway).
            Err(_) => return,
        };
        let (reply, stop_after) = match decode_request(&payload) {
            Ok(request) => dispatch(request, state),
            Err(e) => (
                RpcReply::Fail(QueryError::Internal {
                    detail: format!("bad request: {e}"),
                }),
                false,
            ),
        };
        let deadline = Instant::now() + state.reply_deadline;
        if send_frame(&mut stream, &encode_reply(&reply), deadline).is_err() {
            return;
        }
        if stop_after {
            state.stop.store(true, Ordering::Release);
            return;
        }
    }
}

/// Handles one decoded request; the bool asks the connection loop to stop
/// the whole daemon after the reply is flushed.
fn dispatch(request: RpcRequest, state: &DaemonState) -> (RpcReply, bool) {
    match request {
        RpcRequest::Hello => {
            let ids = lock_ids(state).clone();
            (
                RpcReply::Hello {
                    pid: std::process::id(),
                    ids,
                },
                false,
            )
        }
        RpcRequest::Query { terms, top_k, tag } => {
            let top_k = usize::try_from(top_k).unwrap_or(usize::MAX);
            let reply = match state.engine.query(Query { terms, top_k, tag }) {
                Ok(response) => RpcReply::Answer(response),
                Err(e) => RpcReply::Fail(e),
            };
            (reply, false)
        }
        RpcRequest::AddVector { doc_id, coords } => {
            // Hold the id map across journal + apply so `Hello` can never
            // observe a map that lags the engine's document count.
            let mut ids = lock_ids(state);
            let reply = match state.engine.add_document_vector(&doc_id, &coords) {
                Ok(local) => {
                    ids.push(doc_id.parse::<u64>().ok());
                    debug_assert_eq!(ids.len(), local + 1);
                    RpcReply::Local {
                        local: local as u64,
                    }
                }
                Err(e) => RpcReply::Fail(e),
            };
            (reply, false)
        }
        RpcRequest::LogRetire { doc } => {
            let mut ids = lock_ids(state);
            let reply = match usize::try_from(doc) {
                Ok(local) if local < ids.len() => match state.engine.log_retire(local) {
                    Ok(value) => {
                        if value {
                            ids[local] = None;
                        }
                        RpcReply::Flag { value }
                    }
                    Err(e) => RpcReply::Fail(e),
                },
                _ => RpcReply::Fail(QueryError::Internal {
                    detail: format!("retire of row {doc} out of range ({} rows)", ids.len()),
                }),
            };
            (reply, false)
        }
        RpcRequest::DocVector { doc } => {
            let reply = match usize::try_from(doc) {
                Ok(local) => state.engine.with_index(|index| {
                    if local < index.n_docs() {
                        RpcReply::Coords {
                            coords: index.doc_vector(local).to_vec(),
                        }
                    } else {
                        RpcReply::Fail(QueryError::Internal {
                            detail: format!("row {doc} out of range ({} rows)", index.n_docs()),
                        })
                    }
                }),
                Err(_) => RpcReply::Fail(QueryError::Internal {
                    detail: format!("row {doc} overflows"),
                }),
            };
            (reply, false)
        }
        RpcRequest::Compact { ids: wanted } => {
            let mut ids = lock_ids(state);
            if wanted.len() != ids.len() {
                return (
                    RpcReply::Fail(QueryError::Internal {
                        detail: format!(
                            "compact id map covers {} rows, shard holds {}",
                            wanted.len(),
                            ids.len()
                        ),
                    }),
                    false,
                );
            }
            let records = state.engine.with_index(|index| state_dump(&wanted, index));
            let reply = match state.engine.rotate_journal(&records) {
                Ok(value) => {
                    *ids = wanted;
                    RpcReply::Flag { value }
                }
                Err(e) => RpcReply::Fail(e),
            };
            (reply, false)
        }
        RpcRequest::Ping => (RpcReply::Ok, false),
        RpcRequest::Shutdown => (RpcReply::Ok, true),
    }
}

fn lock_ids(state: &DaemonState) -> std::sync::MutexGuard<'_, Vec<Option<u64>>> {
    state.ids.lock().unwrap_or_else(|p| p.into_inner())
}
