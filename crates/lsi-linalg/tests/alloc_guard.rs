#![deny(unsafe_code)]

//! Allocation-count guard for the `_into` kernels.
//!
//! A counting global allocator verifies that the buffer-reusing kernel
//! entry points (`matvec_into`, `matvec_transpose_into`, CSR equivalents)
//! perform **zero** heap allocations on the serial path — the property the
//! Lanczos scratch-buffer reuse relies on. This lives in its own
//! integration-test binary so no other test's allocations pollute the
//! counter. The counter is per-thread: the libtest harness thread runs
//! concurrently with the `#[test]` thread and allocates at unpredictable
//! points (progress output, channel sends), so a process-global counter is
//! racy — the kernels under test run entirely on the test thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

std::thread_local! {
    // `const`-initialized and `Drop`-free, so neither first access nor
    // teardown allocates (which would recurse into `alloc`).
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

// SAFETY: delegates directly to `System`; the only addition is a counter
// bump in a const-initialized thread-local, which allocates nothing
// (`try_with` also covers thread teardown, when TLS is gone). `GlobalAlloc`
// cannot be implemented safely, so this file is the one U1-allowlisted
// unsafe site in the workspace (mirrored in lsi-lint's rules/u1.rs).
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

#[test]
fn into_kernels_are_allocation_free_on_the_serial_path() {
    use lsi_linalg::parallel::set_threads;
    use lsi_linalg::{CsrMatrix, Matrix};

    // Force the serial path: the parallel path necessarily allocates its
    // chunk buckets (and thread stacks), which is exactly why hot loops at
    // small sizes stay below the work threshold.
    set_threads(1);

    let m = 96;
    let n = 64;
    let a = Matrix::from_fn(m, n, |i, j| ((i * n + j) as f64 * 0.37).sin());
    let sp = CsrMatrix::from_dense(&Matrix::from_fn(m, n, |i, j| ((i + j) % 5) as f64), 0.5);
    let x = vec![1.0; n];
    let y = vec![0.5; m];
    let mut out_m = vec![0.0; m];
    let mut out_n = vec![0.0; n];

    // Warm up once (first call may lazily touch thread-count resolution).
    a.matvec_into(&x, &mut out_m).unwrap();

    let before = allocations();
    for _ in 0..32 {
        a.matvec_into(&x, &mut out_m).unwrap();
        a.matvec_transpose_into(&y, &mut out_n).unwrap();
        sp.matvec_into(&x, &mut out_m).unwrap();
        sp.matvec_transpose_into(&y, &mut out_n).unwrap();
    }
    let extra = allocations() - before;
    assert_eq!(
        extra, 0,
        "_into kernels allocated {extra} times in 128 calls; they must reuse caller buffers"
    );

    // Sanity: the Vec-returning forms do allocate (the guard is measuring
    // what we think it measures).
    let before = allocations();
    let _ = a.matvec(&x).unwrap();
    assert!(allocations() > before, "counting allocator not engaged");

    set_threads(0);
}
