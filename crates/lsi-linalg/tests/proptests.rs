//! Property-based tests for the linear-algebra substrate.
//!
//! These check algebraic identities on randomized inputs: SVD reconstruction
//! and orthogonality, Eckart–Young optimality against random competitors,
//! CSR/dense operator equivalence, and QR invariants.

use proptest::prelude::*;

use lsi_linalg::norms::{frobenius, frobenius_sq};
use lsi_linalg::qr::{orthonormality_error, qr_thin};
use lsi_linalg::svd::svd;
use lsi_linalg::{CsrMatrix, LinearOperator, Matrix};

/// Strategy: a matrix with dimensions in [1, max_dim] and entries in [-10, 10].
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).expect("length matches"))
    })
}

/// Strategy: sparse triplets over an (m, n) grid.
fn sparse_strategy(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            ((0..m), (0..n), -5.0f64..5.0).prop_map(|(r, c, v)| (r, c, v)),
            0..(m * n).min(40),
        )
        .prop_map(move |trips| CsrMatrix::from_triplets(m, n, &trips).expect("in bounds"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_reconstructs(a in matrix_strategy(12)) {
        let f = svd(&a).unwrap();
        let rec = f.reconstruct().unwrap();
        let scale = frobenius(&a).max(1.0);
        prop_assert!(rec.max_abs_diff(&a).unwrap() <= 1e-9 * scale);
    }

    #[test]
    fn svd_factors_orthonormal(a in matrix_strategy(10)) {
        let f = svd(&a).unwrap();
        prop_assert!(orthonormality_error(&f.u) <= 1e-9);
        prop_assert!(orthonormality_error(&f.vt.transpose()) <= 1e-9);
    }

    #[test]
    fn svd_values_sorted_nonnegative(a in matrix_strategy(10)) {
        let f = svd(&a).unwrap();
        for w in f.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(f.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn frobenius_is_sum_of_squared_singular_values(a in matrix_strategy(10)) {
        let f = svd(&a).unwrap();
        let sum_sq: f64 = f.singular_values.iter().map(|s| s * s).sum();
        let scale = frobenius_sq(&a).max(1.0);
        prop_assert!((sum_sq - frobenius_sq(&a)).abs() <= 1e-9 * scale);
    }

    /// Eckart–Young (Theorem 1 of the paper): the SVD truncation beats any
    /// perturbed competitor of the same rank in Frobenius distance.
    #[test]
    fn eckart_young_beats_random_rank_k(
        a in matrix_strategy(8),
        seed in 0u64..1000,
    ) {
        let p = a.nrows().min(a.ncols());
        let k = (p / 2).max(1);
        let f = svd(&a).unwrap();
        let ak = f.low_rank_approx(k).unwrap();
        let best = frobenius(&a.sub(&ak).unwrap());

        // Competitor: a random rank-k matrix built from Gaussian factors,
        // scaled to match A roughly.
        let mut rng = lsi_linalg::rng::seeded(seed);
        let b = lsi_linalg::rng::gaussian_matrix(&mut rng, a.nrows(), k);
        let c = lsi_linalg::rng::gaussian_matrix(&mut rng, k, a.ncols());
        let mut comp = b.matmul(&c).unwrap();
        let cf = frobenius(&comp);
        if cf > 0.0 {
            comp = comp.scaled(frobenius(&a) / cf);
        }
        let other = frobenius(&a.sub(&comp).unwrap());
        prop_assert!(best <= other + 1e-9, "best {best} > competitor {other}");
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal(a in matrix_strategy(10)) {
        let (m, n) = a.shape();
        if m < n {
            return Ok(());
        }
        let (q, r) = qr_thin(&a).unwrap();
        prop_assert!(orthonormality_error(&q) <= 1e-9);
        let rec = q.matmul(&r).unwrap();
        let scale = frobenius(&a).max(1.0);
        prop_assert!(rec.max_abs_diff(&a).unwrap() <= 1e-9 * scale);
        // R upper triangular.
        for i in 0..n {
            for j in 0..i {
                prop_assert!(r[(i, j)].abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn csr_matches_dense_operator(sp in sparse_strategy(10)) {
        let d = sp.to_dense_matrix();
        let x: Vec<f64> = (0..sp.ncols()).map(|i| (i as f64).sin() + 0.5).collect();
        let ys = sp.apply(&x).unwrap();
        let yd = d.matvec(&x).unwrap();
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() <= 1e-10);
        }
        let y: Vec<f64> = (0..sp.nrows()).map(|i| (i as f64).cos()).collect();
        let ts = sp.apply_transpose(&y).unwrap();
        let td = d.matvec_transpose(&y).unwrap();
        for (a, b) in ts.iter().zip(&td) {
            prop_assert!((a - b).abs() <= 1e-10);
        }
    }

    #[test]
    fn csr_transpose_of_transpose_is_identity(sp in sparse_strategy(8)) {
        let tt = sp.transpose().transpose();
        prop_assert_eq!(
            tt.to_dense_matrix().max_abs_diff(&sp.to_dense_matrix()),
            Some(0.0)
        );
    }

    #[test]
    fn csr_frobenius_matches_dense(sp in sparse_strategy(8)) {
        let d = sp.to_dense_matrix();
        prop_assert!((sp.frobenius() - frobenius(&d)).abs() <= 1e-10);
    }

    #[test]
    fn symmetric_eigen_reconstructs(a in matrix_strategy(8)) {
        // Symmetrize.
        let n = a.nrows().min(a.ncols());
        let sq = Matrix::from_fn(n, n, |i, j| a[(i, j)]);
        let sym = sq.add(&sq.transpose()).unwrap().scaled(0.5);
        let f = lsi_linalg::eigen::symmetric_eigen(&sym, 0.0).unwrap();
        let rec = f.reconstruct().unwrap();
        let scale = frobenius(&sym).max(1.0);
        prop_assert!(rec.max_abs_diff(&sym).unwrap() <= 1e-8 * scale);
    }

    #[test]
    fn eigenvalues_match_singular_values_on_gram(a in matrix_strategy(7)) {
        let gram = a.transpose_matmul(&a).unwrap();
        let eig = lsi_linalg::eigen::symmetric_eigen(&gram, 1e-8).unwrap();
        let f = svd(&a).unwrap();
        let scale = frobenius(&gram).max(1.0);
        for (l, s) in eig.eigenvalues.iter().zip(&f.singular_values) {
            prop_assert!((l - s * s).abs() <= 1e-7 * scale);
        }
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius(a in matrix_strategy(8)) {
        let s = lsi_linalg::norms::spectral_norm(&a, 1e-9, 5000).unwrap();
        prop_assert!(s <= frobenius(&a) + 1e-6);
    }
}
