//! Numerical torture tests: classical ill-conditioned and structured
//! matrices that historically expose SVD/eigensolver bugs (cancellation,
//! missed deflation, shift breakdown, sign instability).

use lsi_linalg::eigen::symmetric_eigen;
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::norms::frobenius;
use lsi_linalg::qr::orthonormality_error;
use lsi_linalg::svd::svd;
use lsi_linalg::Matrix;

fn check_svd(a: &Matrix, rel_tol: f64, label: &str) {
    let f = svd(a).unwrap_or_else(|e| panic!("{label}: svd failed: {e}"));
    let scale = frobenius(a).max(1.0);
    let rec = f.reconstruct().expect("shapes agree");
    let err = rec.max_abs_diff(a).expect("same shape");
    assert!(
        err <= rel_tol * scale,
        "{label}: reconstruction error {err}"
    );
    assert!(
        orthonormality_error(&f.u) < 1e-9,
        "{label}: U not orthonormal"
    );
    assert!(
        orthonormality_error(&f.vt.transpose()) < 1e-9,
        "{label}: V not orthonormal"
    );
    for w in f.singular_values.windows(2) {
        assert!(w[0] >= w[1] - 1e-12, "{label}: unsorted singular values");
    }
}

/// Hilbert matrix: famously ill-conditioned (κ ~ e^{3.5n}).
#[test]
fn hilbert_matrices() {
    for n in [3usize, 5, 8, 12] {
        let h = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
        check_svd(&h, 1e-12, &format!("hilbert-{n}"));
        // Hilbert is symmetric positive definite: eigen must agree with svd.
        let eig = symmetric_eigen(&h, 0.0).unwrap();
        let f = svd(&h).unwrap();
        for (l, s) in eig.eigenvalues.iter().zip(&f.singular_values) {
            assert!((l - s).abs() < 1e-10, "hilbert-{n}: λ {l} vs σ {s}");
        }
        // SPD up to roundoff: Hilbert-12's smallest eigenvalue (~1e-17) sits
        // below eps·λmax, so its computed sign is noise.
        let floor = -1e-12 * eig.eigenvalues[0];
        assert!(
            eig.eigenvalues.iter().all(|&l| l > floor),
            "SPD violated beyond roundoff: {:?}",
            eig.eigenvalues
        );
    }
}

/// Kahan matrix: a classic trap for QR/SVD rank detection.
#[test]
fn kahan_matrix() {
    let n = 10;
    let theta: f64 = 1.2;
    let (s, c) = theta.sin_cos();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        let si = s.powi(i as i32);
        k[(i, i)] = si;
        for j in i + 1..n {
            k[(i, j)] = -c * si;
        }
    }
    check_svd(&k, 1e-12, "kahan");
    let f = svd(&k).unwrap();
    // The Kahan trap: σ_min is far below the smallest diagonal entry
    // s^{n−1} — naive pivot-based rank detection is fooled, the SVD is not.
    let last = *f.singular_values.last().unwrap();
    let smallest_diag = s.powi((n - 1) as i32);
    assert!(
        last > 0.0 && last < 0.2 * smallest_diag,
        "σ_min {last} vs smallest diagonal {smallest_diag}"
    );
}

/// Graded diagonal plus noise: stresses deflation ordering.
#[test]
fn graded_matrices() {
    for n in [6usize, 20] {
        let a = Matrix::from_fn(n, n, |i, j| {
            let base = if i == j { 10f64.powi(-(i as i32)) } else { 0.0 };
            base + 1e-14 * ((i * 31 + j * 17) % 7) as f64
        });
        check_svd(&a, 1e-12, &format!("graded-{n}"));
    }
}

/// Matrices of all-equal entries (rank 1, maximally degenerate spectrum).
#[test]
fn constant_matrices() {
    for &(m, n) in &[(5usize, 5usize), (8, 3), (3, 8)] {
        let a = Matrix::from_fn(m, n, |_, _| 2.5);
        check_svd(&a, 1e-12, &format!("constant-{m}x{n}"));
        let f = svd(&a).unwrap();
        assert_eq!(f.rank(1e-10), 1, "constant matrix must be rank 1");
        let expect = 2.5 * ((m * n) as f64).sqrt();
        assert!((f.singular_values[0] - expect).abs() < 1e-10);
    }
}

/// Orthogonal matrices: all singular values exactly 1.
#[test]
fn rotation_matrices() {
    let theta: f64 = 0.7;
    let (s, c) = theta.sin_cos();
    let mut g = Matrix::identity(6);
    // Compose a few plane rotations.
    for &(i, j) in &[(0usize, 1usize), (2, 3), (1, 4), (0, 5)] {
        let mut r = Matrix::identity(6);
        r[(i, i)] = c;
        r[(j, j)] = c;
        r[(i, j)] = s;
        r[(j, i)] = -s;
        g = g.matmul(&r).unwrap();
    }
    let f = svd(&g).unwrap();
    for &sv in &f.singular_values {
        assert!((sv - 1.0).abs() < 1e-12, "σ = {sv}");
    }
}

/// Wilkinson's W21+ matrix: famous for pathologically close eigenvalue
/// pairs.
#[test]
fn wilkinson_w21() {
    let n = 21;
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        w[(i, i)] = ((i as i64) - 10).abs() as f64;
        if i + 1 < n {
            w[(i, i + 1)] = 1.0;
            w[(i + 1, i)] = 1.0;
        }
    }
    let eig = symmetric_eigen(&w, 0.0).unwrap();
    let rec = eig.reconstruct().unwrap();
    assert!(rec.max_abs_diff(&w).unwrap() < 1e-9);
    // The two largest eigenvalues agree to ~1e-15 but must both be found.
    let gap = eig.eigenvalues[0] - eig.eigenvalues[1];
    assert!((0.0..1e-10).contains(&gap), "gap {gap}");
    assert!((eig.eigenvalues[0] - 10.746194).abs() < 1e-5);
}

/// Extreme scaling: uniform tiny and huge matrices must not over/underflow.
#[test]
fn extreme_scales() {
    for &scale in &[1e-150f64, 1e-30, 1e30, 1e120] {
        let a = Matrix::from_fn(5, 4, |i, j| scale * ((i + 2 * j + 1) as f64));
        let f = svd(&a).expect("svd at extreme scale");
        assert!(f.singular_values.iter().all(|s| s.is_finite()));
        assert!(
            (f.singular_values[0] / scale).is_finite() && f.singular_values[0] > 0.0,
            "scale {scale}: σ₀ {}",
            f.singular_values[0]
        );
    }
}

/// Single row / single column shapes.
#[test]
fn degenerate_shapes() {
    let row = Matrix::from_rows(&[&[3.0, 4.0, 0.0]]).unwrap();
    let f = svd(&row).unwrap();
    assert!((f.singular_values[0] - 5.0).abs() < 1e-12);
    let col = row.transpose();
    let f = svd(&col).unwrap();
    assert!((f.singular_values[0] - 5.0).abs() < 1e-12);
}

/// Lanczos on the Hilbert matrix: the dominant triplets of an
/// ill-conditioned operator must match the dense factorization.
#[test]
fn lanczos_on_hilbert() {
    let n = 30;
    let h = Matrix::from_fn(n, n, |i, j| 1.0 / (i + j + 1) as f64);
    let dense = svd(&h).unwrap();
    let lz = lanczos_svd(&h, 5, &LanczosOptions::default()).unwrap();
    for i in 0..5 {
        assert!(
            (lz.singular_values[i] - dense.singular_values[i]).abs() < 1e-9,
            "σ_{i}: {} vs {}",
            lz.singular_values[i],
            dense.singular_values[i]
        );
    }
}

/// Sign flips must not change singular values (|det| invariance).
#[test]
fn sign_invariance() {
    let a = Matrix::from_fn(6, 4, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
    let f_pos = svd(&a).unwrap();
    let f_neg = svd(&a.scaled(-1.0)).unwrap();
    for (x, y) in f_pos.singular_values.iter().zip(&f_neg.singular_values) {
        assert!((x - y).abs() < 1e-12);
    }
}
