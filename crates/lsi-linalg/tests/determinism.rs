//! Bitwise thread-count invariance of every parallelized kernel.
//!
//! The determinism contract (see `parallel` module docs): fixed chunk
//! boundaries plus ordered reductions make each kernel's output **byte
//! identical** for every `LSI_THREADS` setting. These tests compute each
//! kernel at 1 thread and then assert bit equality at 2, 3, and 8 threads,
//! over proptest-randomized inputs and over the edge shapes (empty, one
//! row, tall-skinny) where chunk boundaries degenerate.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use lsi_linalg::gemm::{gemm, gemm_reference, Scalar};
use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::parallel::{self, set_threads};
use lsi_linalg::randomized::{randomized_svd, RandomizedSvdOptions};
use lsi_linalg::{CsrMatrix, LinearOperator, Matrix};

/// Thread counts every kernel is checked at (1 is the reference).
const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

/// Serializes tests: the thread knob is global, and holding the lock keeps
/// each assertion actually running at the thread count it names.
static KNOB: Mutex<()> = Mutex::new(());

/// Locks the knob and resets it to a known state; the returned guard's drop
/// leaves the override cleared for whoever runs next.
struct KnobGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn knob() -> KnobGuard {
    let g = KNOB.lock().unwrap_or_else(|p| p.into_inner());
    set_threads(0);
    KnobGuard(g)
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_threads(0);
    }
}

/// Asserts two equally-shaped matrices are byte-identical.
fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str, t: usize) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape changed at {t} threads");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bits differ at {t} threads ({x:?} vs {y:?})"
        );
    }
}

fn assert_vec_bits_eq(a: &[f64], b: &[f64], what: &str, t: usize) {
    assert_eq!(a.len(), b.len(), "{what}: length changed at {t} threads");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bits differ at {t} threads ({x:?} vs {y:?})"
        );
    }
}

/// Runs `compute` at 1 thread, then re-runs at each tested thread count and
/// checks the results byte-identical with `check(reference, candidate, t)`.
fn for_all_thread_counts<R>(compute: impl Fn() -> R, check: impl Fn(&R, &R, usize)) {
    set_threads(1);
    let reference = compute();
    for &t in &THREAD_COUNTS {
        set_threads(t);
        let candidate = compute();
        check(&reference, &candidate, t);
    }
    set_threads(0);
}

/// Strategy: an (m, n) matrix with entries in [-10, 10], dimensions big
/// enough to cross several chunk boundaries now and then.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).expect("length matches"))
    })
}

/// Strategy: a sparse matrix with at least 2 on each side.
fn sparse_strategy(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(
            ((0..m), (0..n), -5.0f64..5.0).prop_map(|(r, c, v)| (r, c, v)),
            0..(m * n).min(120),
        )
        .prop_map(move |trips| CsrMatrix::from_triplets(m, n, &trips).expect("in bounds"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bitwise_invariant(a in matrix_strategy(24), b in matrix_strategy(24)) {
        let _k = knob();
        // Make shapes compatible by construction: b reshaped via transpose
        // products would be awkward, so multiply a (m×n) by aᵀ (n×m) when
        // shapes disagree, and by b when they happen to align.
        let rhs = if a.ncols() == b.nrows() { b.clone() } else { a.transpose() };
        for_all_thread_counts(
            || a.matmul(&rhs).unwrap(),
            |x, y, t| assert_bits_eq(x, y, "matmul", t),
        );
        for_all_thread_counts(
            || a.transpose_matmul(&a).unwrap(),
            |x, y, t| assert_bits_eq(x, y, "transpose_matmul", t),
        );
    }

    #[test]
    fn matvec_bitwise_invariant(a in matrix_strategy(40)) {
        let _k = knob();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 1.3).cos()).collect();
        for_all_thread_counts(
            || a.matvec(&x).unwrap(),
            |u, v, t| assert_vec_bits_eq(u, v, "matvec", t),
        );
        for_all_thread_counts(
            || a.matvec_transpose(&y).unwrap(),
            |u, v, t| assert_vec_bits_eq(u, v, "matvec_transpose", t),
        );
    }

    #[test]
    fn csr_matvec_bitwise_invariant(a in sparse_strategy(40)) {
        let _k = knob();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.9).sin()).collect();
        let y: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.4).cos()).collect();
        for_all_thread_counts(
            || a.apply(&x).unwrap(),
            |u, v, t| assert_vec_bits_eq(u, v, "csr apply", t),
        );
        for_all_thread_counts(
            || a.apply_transpose(&y).unwrap(),
            |u, v, t| assert_vec_bits_eq(u, v, "csr apply_transpose", t),
        );
    }

    #[test]
    fn truncated_svd_bitwise_invariant(a in sparse_strategy(24), seed in proptest::num::u64::ANY) {
        let _k = knob();
        let k = a.nrows().min(a.ncols()).min(3);
        let opts = LanczosOptions { seed, ..LanczosOptions::default() };
        for_all_thread_counts(
            || lanczos_svd(&a, k, &opts).unwrap(),
            |x, y, t| {
                assert_vec_bits_eq(&x.singular_values, &y.singular_values, "lanczos σ", t);
                assert_bits_eq(&x.u, &y.u, "lanczos U", t);
                assert_bits_eq(&x.vt, &y.vt, "lanczos Vᵀ", t);
            },
        );
        let ropts = RandomizedSvdOptions { seed, ..RandomizedSvdOptions::default() };
        for_all_thread_counts(
            || randomized_svd(&a, k, &ropts).unwrap(),
            |x, y, t| {
                assert_vec_bits_eq(&x.singular_values, &y.singular_values, "randomized σ", t);
                assert_bits_eq(&x.u, &y.u, "randomized U", t);
                assert_bits_eq(&x.vt, &y.vt, "randomized Vᵀ", t);
            },
        );
    }
}

/// Computes the serial [`gemm_reference`] once, then asserts the packed
/// [`gemm`] reproduces it bit for bit at 1 thread and at every tested
/// thread count.
fn assert_gemm_matches_reference<T>(m: usize, n: usize, k: usize, a: &[T], b: &[T])
where
    T: Scalar + BitsEq,
{
    let mut reference = vec![T::ZERO; m * n];
    gemm_reference(m, n, k, a, b, &mut reference).unwrap();
    set_threads(1);
    let mut out = vec![T::ZERO; m * n];
    gemm(m, n, k, a, b, &mut out).unwrap();
    T::assert_all_bits_eq(&out, &reference, "packed gemm", 1);
    for &t in &THREAD_COUNTS {
        set_threads(t);
        out.fill(T::ZERO);
        gemm(m, n, k, a, b, &mut out).unwrap();
        T::assert_all_bits_eq(&out, &reference, "packed gemm", t);
    }
    set_threads(0);
}

/// Bit-pattern equality for the scalar types the GEMM supports.
trait BitsEq: Scalar {
    fn assert_all_bits_eq(got: &[Self], want: &[Self], what: &str, t: usize);
}

impl BitsEq for f64 {
    fn assert_all_bits_eq(got: &[f64], want: &[f64], what: &str, t: usize) {
        assert_vec_bits_eq(got, want, what, t);
    }
}

impl BitsEq for f32 {
    fn assert_all_bits_eq(got: &[f32], want: &[f32], what: &str, t: usize) {
        assert_eq!(
            got.len(),
            want.len(),
            "{what}: length differs at {t} threads"
        );
        for (x, y) in got.iter().zip(want) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what} (f32): bits differ at {t} threads ({x:?} vs {y:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The packed GEMM equals its serial reference bit for bit, at every
    /// thread count, for both element types, over random shapes — including
    /// the low-rank `k ≪ m, n` regime the LSI pipeline lives in.
    #[test]
    fn packed_gemm_matches_reference_bitwise(
        m in 0usize..48,
        n in 0usize..48,
        k in 0usize..12,
        seed in proptest::num::u64::ANY,
    ) {
        let _g = knob();
        let mix = |i: usize| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
            ((h >> 32) as i64 % 19) as f64 * 0.125 - 0.5
        };
        let a64: Vec<f64> = (0..m * k).map(mix).collect();
        let b64: Vec<f64> = (0..k * n).map(|i| mix(i + 1_000_003)).collect();
        assert_gemm_matches_reference(m, n, k, &a64, &b64);
        let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        assert_gemm_matches_reference(m, n, k, &a32, &b32);
    }
}

/// Packed-GEMM edge shapes: empty operands, a single row, tall-skinny
/// panels, and blocks straddling the `kc`/`mc`/`nc` boundaries.
#[test]
fn packed_gemm_edge_shapes_match_reference() {
    let _g = knob();
    for &(m, n, k) in &[
        (0, 7, 4),      // empty row side
        (7, 0, 4),      // empty column side
        (7, 4, 0),      // empty inner dimension
        (1, 300, 5),    // one row, wide
        (300, 1, 5),    // one column
        (900, 2, 2),    // tall-skinny Lanczos panel
        (70, 70, 300),  // k crosses the kc=256 boundary
        (130, 9, 257),  // m crosses mc=64, k just past kc
        (3, 129, 1000), // deep k, few rows
    ] {
        let a: Vec<f64> = (0..m * k)
            .map(|i| ((i * 11 + 7) % 23) as f64 * 0.0625 - 0.6)
            .collect();
        let b: Vec<f64> = (0..k * n)
            .map(|i| ((i * 17 + 3) % 29) as f64 * 0.03125 - 0.4)
            .collect();
        assert_gemm_matches_reference(m, n, k, &a, &b);
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        assert_gemm_matches_reference(m, n, k, &a32, &b32);
    }
}

/// Edge shapes: empty products, single rows, tall-skinny panels — the
/// degenerate chunkings (0 chunks, 1 chunk, ragged tail) must all agree.
#[test]
fn edge_shapes_bitwise_invariant() {
    let _k = knob();

    // Empty: 0×4 · 4×3 and 5×0 · 0×3 (the k = 0 accumulation).
    let e04 = Matrix::zeros(0, 4);
    let a43 = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
    let e50 = Matrix::zeros(5, 0);
    let e03 = Matrix::zeros(0, 3);
    for_all_thread_counts(
        || {
            (
                e04.matmul(&a43).unwrap(),
                e50.matmul(&e03).unwrap(),
                e04.matvec(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
                e04.matvec_transpose(&[]).unwrap(),
            )
        },
        |x, y, t| {
            assert_bits_eq(&x.0, &y.0, "empty matmul", t);
            assert_bits_eq(&x.1, &y.1, "inner-empty matmul", t);
            assert_vec_bits_eq(&x.2, &y.2, "empty matvec", t);
            assert_vec_bits_eq(&x.3, &y.3, "empty matvec_transpose", t);
        },
    );

    // One row × wide: a single ragged chunk on the row side, many on the
    // column side.
    let row = Matrix::from_fn(1, 700, |_, j| (j as f64 * 0.01).sin());
    let wide = Matrix::from_fn(700, 3, |i, j| ((i + j) as f64 * 0.02).cos());
    let xs: Vec<f64> = (0..700).map(|i| (i % 17) as f64 - 8.0).collect();
    for_all_thread_counts(
        || {
            (
                row.matmul(&wide).unwrap(),
                row.matvec(&xs).unwrap(),
                row.matvec_transpose(&[2.5]).unwrap(),
            )
        },
        |x, y, t| {
            assert_bits_eq(&x.0, &y.0, "1-row matmul", t);
            assert_vec_bits_eq(&x.1, &y.1, "1-row matvec", t);
            assert_vec_bits_eq(&x.2, &y.2, "1-row matvec_transpose", t);
        },
    );

    // Tall-skinny: 900×2, the Lanczos-panel shape, k = 1 truncated SVD.
    let tall = Matrix::from_fn(900, 2, |i, j| ((i * 2 + j) as f64 * 0.003).sin());
    let sp = CsrMatrix::from_dense(&tall, 0.8);
    for_all_thread_counts(
        || {
            let f = lanczos_svd(&tall, 1, &LanczosOptions::default()).unwrap();
            let g = lanczos_svd(&sp, 1, &LanczosOptions::default()).unwrap();
            (f, g)
        },
        |x, y, t| {
            assert_bits_eq(&x.0.u, &y.0.u, "tall-skinny lanczos U", t);
            assert_bits_eq(&x.1.u, &y.1.u, "tall-skinny sparse lanczos U", t);
        },
    );
}

/// The knob itself: LSI_THREADS-style values resolve, and `set_threads(0)`
/// returns to automatic resolution.
#[test]
fn thread_knob_round_trips() {
    let _k = knob();
    set_threads(5);
    assert_eq!(parallel::threads(), 5);
    set_threads(1);
    assert_eq!(parallel::threads(), 1);
    set_threads(0);
    assert!(parallel::threads() >= 1);
}
