//! Parallel-kernel benches: the hot linalg kernels at 1, 2, and 4 linalg
//! threads, exercising the `parallel` work-sharing layer end to end.
//!
//! Because outputs are bitwise identical at every thread count, the bench
//! compares *only* wall time; any numerical comparison would be vacuous.
//! On a single-core host the 2/4-thread rows measure scheduling overhead
//! rather than speedup — see `BENCH_kernels.json` for the recorded host
//! CPU count alongside the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lsi_linalg::lanczos::{lanczos_svd, LanczosOptions};
use lsi_linalg::parallel::set_threads;
use lsi_linalg::rng::{gaussian_matrix, seeded};
use lsi_linalg::{CsrMatrix, Matrix};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn dense_pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = seeded(seed);
    (
        gaussian_matrix(&mut rng, m, k),
        gaussian_matrix(&mut rng, k, n),
    )
}

fn sparse_matrix(m: usize, n: usize, seed: u64) -> CsrMatrix {
    let mut rng = seeded(seed);
    let mut d = gaussian_matrix(&mut rng, m, n);
    d.map_inplace(|x| if x.abs() > 1.5 { x } else { 0.0 });
    CsrMatrix::from_dense(&d, 0.0)
}

fn bench_matmul(c: &mut Criterion) {
    let (a, b) = dense_pair(384, 384, 384, 17);
    let mut group = c.benchmark_group("parallel_matmul_384");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    set_threads(0);
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let (a, _) = dense_pair(1500, 1000, 1, 23);
    let x = vec![1.0; 1000];
    let y = vec![0.5; 1500];
    let mut out_m = vec![0.0; 1500];
    let mut out_n = vec![0.0; 1000];
    let mut group = c.benchmark_group("parallel_matvec_1500x1000");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("into/threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| a.matvec_into(black_box(&x), &mut out_m).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("transpose/threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| a.matvec_transpose_into(black_box(&y), &mut out_n).unwrap());
        });
    }
    set_threads(0);
    group.finish();
}

fn bench_csr_matvec(c: &mut Criterion) {
    let sp = sparse_matrix(2000, 1200, 31);
    let x = vec![1.0; 1200];
    let y = vec![0.5; 2000];
    let mut out_m = vec![0.0; 2000];
    let mut out_n = vec![0.0; 1200];
    let mut group = c.benchmark_group("parallel_csr_matvec_2000x1200");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("into/threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| sp.matvec_into(black_box(&x), &mut out_m).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("transpose/threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| sp.matvec_transpose_into(black_box(&y), &mut out_n).unwrap());
        });
    }
    set_threads(0);
    group.finish();
}

fn bench_lanczos(c: &mut Criterion) {
    let sp = sparse_matrix(1200, 600, 47);
    let mut group = c.benchmark_group("parallel_lanczos_k10_1200x600");
    group.sample_size(10);
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |bch, &t| {
            set_threads(t);
            bch.iter(|| black_box(lanczos_svd(&sp, 10, &LanczosOptions::default()).unwrap()));
        });
    }
    set_threads(0);
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matvec,
    bench_csr_matvec,
    bench_lanczos
);
criterion_main!(benches);
