#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Dense and sparse linear algebra substrate for the LSI reproduction.
//!
//! The paper ran its experiments on SVDPACK; this crate replaces it with a
//! self-contained, pure-Rust implementation of everything the LSI pipeline
//! needs:
//!
//! * [`Matrix`] — row-major dense matrices with the usual kernels
//!   (multiplication, transpose, norms, slicing).
//! * [`gemm`] — the packed, cache-blocked matrix multiply behind
//!   [`Matrix::matmul`]: BLIS-style `kc`/`mc`/`nc` panels ([`pack`]) driving
//!   a register-tiled micro-kernel, f64 by default with an opt-in f32 path,
//!   bitwise identical to its serial reference at any thread count.
//! * [`qr`] — Householder QR factorization and orthonormalization.
//! * [`svd`] — full singular value decomposition (Golub–Kahan
//!   bidiagonalization followed by Golub–Reinsch implicit-shift QR).
//! * [`eigen`] — symmetric eigendecomposition (Householder tridiagonalization
//!   plus implicit QL with Wilkinson shifts), used by the synonymy experiment
//!   on `A Aᵀ` and by the spectral graph model.
//! * [`CsrMatrix`] — compressed sparse row matrices, the natural shape of a
//!   term–document matrix.
//! * [`lanczos`] — truncated SVD of an arbitrary [`LinearOperator`] by
//!   Golub–Kahan–Lanczos bidiagonalization with full reorthogonalization:
//!   the stand-in for SVDPACK's `las2`.
//! * [`randomized`] — Halko-style randomized truncated SVD, the modern
//!   descendant of the paper's random-projection idea, kept as an ablation
//!   backend.
//! * [`solver`] — the resilient truncated-SVD driver: ordered backend
//!   attempts with escalating options, input-finiteness guards, post-hoc
//!   factor verification, and a per-attempt [`solver::SolveReport`].
//! * [`faults`] — seeded fault injection ([`faults::FaultyOperator`]) for
//!   exercising the driver's fallback and verification paths.
//! * [`rng`] — seeded Gaussian sampling and random orthonormal matrices.
//! * [`parallel`] — the deterministic chunked executor behind the hot
//!   kernels: fixed chunk boundaries and ordered reductions make every
//!   kernel bitwise identical at any thread count (`LSI_THREADS` /
//!   [`parallel::set_threads`]).
//!
//! All routines are deterministic given their inputs (and, where relevant, a
//! seed) — independently of the configured thread count — and return
//! [`Result`] rather than panicking on shape errors.
//!
//! # Example
//!
//! ```
//! use lsi_linalg::{Matrix, svd::svd};
//!
//! let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
//! let f = svd(&a).unwrap();
//! assert!((f.singular_values[0] - 4.0).abs() < 1e-12);
//! assert!((f.singular_values[1] - 3.0).abs() < 1e-12);
//! ```

pub mod bidiag;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod faults;
pub mod gemm;
pub mod lanczos;
pub mod norms;
pub mod operator;
pub mod pack;
pub mod parallel;
pub mod qr;
pub mod randomized;
pub mod rng;
pub mod solver;
pub mod sparse;
pub mod svd;
pub mod vector;

pub use dense::Matrix;
pub use error::LinalgError;
pub use operator::LinearOperator;
pub use sparse::CsrMatrix;
pub use svd::{Svd, TruncatedSvd};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
