//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the linear-algebra substrate.
///
/// Shape mismatches and invalid arguments are reported eagerly; iterative
/// routines additionally report failure to converge within their iteration
/// budget rather than returning silently wrong factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// A dimension argument was invalid (for instance a zero-sized matrix
    /// where a nonempty one is required, or `k` larger than `min(m, n)`).
    InvalidDimension {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the violated requirement.
        detail: String,
    },
    /// An iterative algorithm did not converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument that must be finite contained a NaN or infinity.
    NotFinite {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Sparse-matrix construction received an out-of-bounds or duplicate
    /// entry that the caller asked to be rejected.
    InvalidEntry {
        /// Name of the operation that failed.
        op: &'static str,
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "{op}: incompatible shapes {}x{} and {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidDimension { op, detail } => {
                write!(f, "{op}: invalid dimension: {detail}")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::NotFinite { op } => write!(f, "{op}: non-finite value in input"),
            LinalgError::InvalidEntry { op, row, col } => {
                write!(f, "{op}: invalid entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(e.to_string(), "matmul: incompatible shapes 2x3 and 4x5");
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            op: "svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("30 iterations"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::NotFinite { op: "qr" });
    }
}
