//! Randomized truncated SVD (Halko–Martinsson–Tropp style).
//!
//! The modern descendant of the paper's Section 5 idea: sketch the range of
//! `A` with a random Gaussian test matrix, orthonormalize, and solve a small
//! dense SVD in the sketched space. Kept as an alternative backend to
//! [`crate::lanczos`] so the benchmark suite can ablate the choice of
//! truncated-SVD algorithm (experiment E10 in `DESIGN.md`).

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::operator::LinearOperator;
use crate::qr::orthonormalize_columns;
use crate::rng::{gaussian_matrix, seeded};
use crate::svd::{svd, TruncatedSvd};
use crate::Result;

/// Options for [`randomized_svd`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedSvdOptions {
    /// Oversampling: the sketch has `k + oversample` columns.
    pub oversample: usize,
    /// Number of power iterations (`(A Aᵀ)^q A Ω`); 1–2 sharpen accuracy on
    /// slowly-decaying spectra at the cost of extra passes.
    pub power_iterations: usize,
    /// Seed for the Gaussian test matrix.
    pub seed: u64,
}

impl Default for RandomizedSvdOptions {
    fn default() -> Self {
        RandomizedSvdOptions {
            oversample: 8,
            power_iterations: 2,
            seed: 0xda7a_5eed,
        }
    }
}

/// Shared body of the panel products: for each column `j` of `m`, computes
/// one output column with `f` and writes it into the result.
///
/// Columns are visited **in order** on the calling thread — operators may
/// be order-sensitive (the fault-injection wrapper keys its fault windows
/// on the apply index), so panel-level parallelism belongs to the matvec
/// kernels inside `f`, which partition rows/columns deterministically. The
/// panel is transposed once up front so each column reaches `f` as a
/// contiguous slice instead of being gathered (and allocated) per call,
/// and one scratch buffer is reused for every output column.
fn panel_product<F>(m: &Matrix, out_rows: usize, f: F) -> Result<Matrix>
where
    F: Fn(&[f64], &mut [f64]) -> Result<()>,
{
    let mt = m.transpose();
    let mut out = Matrix::zeros(out_rows, m.ncols());
    let mut col = vec![0.0; out_rows];
    for j in 0..m.ncols() {
        f(mt.row(j), &mut col)?;
        out.set_col(j, &col);
    }
    Ok(out)
}

/// Applies an operator to every column of a dense matrix: `A · M`.
fn apply_to_columns<Op: LinearOperator + ?Sized>(a: &Op, m: &Matrix) -> Result<Matrix> {
    panel_product(m, a.nrows(), |col, out| a.apply_into(col, out))
}

/// Applies the transpose to every column: `Aᵀ · M`.
fn apply_transpose_to_columns<Op: LinearOperator + ?Sized>(a: &Op, m: &Matrix) -> Result<Matrix> {
    panel_product(m, a.ncols(), |col, out| a.apply_transpose_into(col, out))
}

/// Leading-`k` truncated SVD of a linear operator by randomized range
/// finding. Requires `1 ≤ k ≤ min(m, n)`; the sketch width is additionally
/// clamped to `min(m, n)`.
///
/// Accuracy is near-optimal in the Frobenius sense when the spectrum decays;
/// with `power_iterations ≥ 1` it is reliable for LSI-scale inputs. Use
/// [`crate::lanczos::lanczos_svd`] when singular values must match the dense
/// SVD to high precision.
pub fn randomized_svd<Op: LinearOperator + ?Sized>(
    a: &Op,
    k: usize,
    opts: &RandomizedSvdOptions,
) -> Result<TruncatedSvd> {
    let (m, n) = (a.nrows(), a.ncols());
    let p = m.min(n);
    if k == 0 || k > p {
        return Err(LinalgError::InvalidDimension {
            op: "randomized_svd",
            detail: format!("need 1 <= k <= min(m, n) = {p}, got k = {k}"),
        });
    }
    let sketch = (k + opts.oversample).min(p);

    let mut rng = seeded(opts.seed);
    let omega = gaussian_matrix(&mut rng, n, sketch);
    let mut y = apply_to_columns(a, &omega)?;

    // Power iterations with re-orthonormalization between passes for
    // numerical stability on long chains.
    for _ in 0..opts.power_iterations {
        let q = orthonormalize_columns(&y)?;
        let z = apply_transpose_to_columns(a, &q)?;
        let qz = orthonormalize_columns(&z)?;
        y = apply_to_columns(a, &qz)?;
    }

    let q = orthonormalize_columns(&y)?;
    // B = Qᵀ A, computed as (Aᵀ Q)ᵀ so only transpose-products are needed.
    let b = apply_transpose_to_columns(a, &q)?.transpose();
    let small = svd(&b)?;
    let t = small.truncate(k.min(small.len()))?;
    let u = q.matmul(&t.u)?;

    Ok(TruncatedSvd {
        u,
        singular_values: t.singular_values,
        vt: t.vt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;
    use crate::rng::random_orthonormal;
    use crate::sparse::CsrMatrix;

    /// A matrix with exactly known singular values.
    fn known_spectrum(seed: u64, m: usize, n: usize, s: &[f64]) -> Matrix {
        let mut rng = seeded(seed);
        let u = random_orthonormal(&mut rng, m, s.len()).unwrap();
        let v = random_orthonormal(&mut rng, n, s.len()).unwrap();
        let mut svt = v.transpose();
        for (i, &si) in s.iter().enumerate() {
            for x in svt.row_mut(i) {
                *x *= si;
            }
        }
        u.matmul(&svt).unwrap()
    }

    #[test]
    fn randomized_recovers_decaying_spectrum() {
        let s = [100.0, 50.0, 20.0, 5.0, 1.0, 0.1];
        let a = known_spectrum(1, 40, 30, &s);
        let r = randomized_svd(&a, 3, &RandomizedSvdOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (r.singular_values[i] - s[i]).abs() < 1e-6 * s[0],
                "σ_{i}: {} vs {}",
                r.singular_values[i],
                s[i]
            );
        }
        assert!(orthonormality_error(&r.u) < 1e-9);
        assert!(orthonormality_error(&r.vt.transpose()) < 1e-9);
    }

    #[test]
    fn randomized_matches_lanczos_on_sparse() {
        let mut rng = seeded(6);
        let mut d = gaussian_matrix_local(&mut rng, 50, 35);
        d.map_inplace(|x| if x.abs() > 1.0 { x } else { 0.0 });
        let sp = CsrMatrix::from_dense(&d, 0.0);
        // Thresholded Gaussian noise has a flat spectrum; give the range
        // finder extra power iterations so the comparison is meaningful.
        let opts = RandomizedSvdOptions {
            power_iterations: 8,
            ..RandomizedSvdOptions::default()
        };
        let r = randomized_svd(&sp, 5, &opts).unwrap();
        let l = crate::lanczos::lanczos_svd(&sp, 5, &crate::lanczos::LanczosOptions::default())
            .unwrap();
        for i in 0..5 {
            assert!(
                (r.singular_values[i] - l.singular_values[i]).abs()
                    < 1e-4 * l.singular_values[0].max(1.0),
                "σ_{i}: randomized {} vs lanczos {}",
                r.singular_values[i],
                l.singular_values[i]
            );
        }
    }

    fn gaussian_matrix_local<R: rand::Rng>(rng: &mut R, m: usize, n: usize) -> Matrix {
        crate::rng::gaussian_matrix(rng, m, n)
    }

    #[test]
    fn randomized_exact_on_low_rank() {
        let s = [10.0, 4.0];
        let a = known_spectrum(9, 20, 15, &s);
        let r = randomized_svd(&a, 2, &RandomizedSvdOptions::default()).unwrap();
        let rec = r.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-9);
    }

    #[test]
    fn randomized_rejects_bad_k() {
        let a = Matrix::zeros(4, 4);
        assert!(randomized_svd(&a, 0, &RandomizedSvdOptions::default()).is_err());
        assert!(randomized_svd(&a, 5, &RandomizedSvdOptions::default()).is_err());
    }

    #[test]
    fn randomized_deterministic_given_seed() {
        let a = known_spectrum(4, 12, 10, &[5.0, 3.0, 1.0]);
        let x = randomized_svd(&a, 2, &RandomizedSvdOptions::default()).unwrap();
        let y = randomized_svd(&a, 2, &RandomizedSvdOptions::default()).unwrap();
        assert_eq!(x.singular_values, y.singular_values);
    }

    #[test]
    fn randomized_sketch_clamped_to_small_dimension() {
        // k + oversample exceeds min(m, n); must still work.
        let a = known_spectrum(5, 6, 5, &[3.0, 2.0, 1.0]);
        let r = randomized_svd(&a, 3, &RandomizedSvdOptions::default()).unwrap();
        assert!((r.singular_values[0] - 3.0).abs() < 1e-8);
    }
}
