//! Symmetric eigendecomposition.
//!
//! Householder tridiagonalization followed by the implicit-shift QL
//! iteration. Used by the synonymy experiment (spectrum of the term–term
//! autocorrelation matrix `A Aᵀ`, Section 4 of the paper), by the
//! graph-theoretic corpus model (Theorem 6), and by tests as an independent
//! cross-check of the SVD (`σᵢ² = λᵢ(AᵀA)`).

use crate::dense::Matrix;
use crate::error::LinalgError;
use crate::Result;

/// Eigendecomposition `A = Q Λ Qᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in **descending** order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, ordered to match.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `Q Λ Qᵀ`; intended for tests.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let q = &self.eigenvectors;
        let mut lq = q.transpose();
        for (i, &l) in self.eigenvalues.iter().enumerate() {
            for x in lq.row_mut(i) {
                *x *= l;
            }
        }
        q.matmul(&lq)
    }

    /// The eigenvector for the `i`-th largest eigenvalue.
    pub fn eigenvector(&self, i: usize) -> Vec<f64> {
        self.eigenvectors.col(i)
    }

    /// The eigenvector for the **smallest** eigenvalue — the paper's
    /// synonymy analysis looks at this end of the spectrum.
    pub fn smallest_eigenvector(&self) -> Vec<f64> {
        self.eigenvectors.col(self.eigenvalues.len() - 1)
    }
}

/// Householder tridiagonalization: returns `(q, d, e)` with
/// `A = Q T Qᵀ`, `T` symmetric tridiagonal (diagonal `d`, off-diagonal `e`
/// of length `n − 1`).
fn tridiagonalize(a: &Matrix) -> (Matrix, Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let mut t = a.clone();
    let mut reflectors: Vec<(Vec<f64>, f64)> = Vec::new();

    for k in 0..n.saturating_sub(2) {
        // Householder vector for column k, rows k+1..n (overflow-safe).
        let x: Vec<f64> = (k + 1..n).map(|i| t[(i, k)]).collect();
        let (v, beta) = crate::vector::householder_reflector(&x);

        if beta != 0.0 {
            // Symmetric update T ← H T H with H = I − βvvᵀ acting on k+1..n.
            // w = β T v (restricted), then T ← T − v wᵀ − w vᵀ + (β vᵀw) v vᵀ.
            let mut w = vec![0.0; n - k - 1];
            for (i, wi) in w.iter_mut().enumerate() {
                let mut s = 0.0;
                for (j, vj) in v.iter().enumerate() {
                    s += t[(k + 1 + i, k + 1 + j)] * vj;
                }
                *wi = beta * s;
            }
            let vw: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
            for i in 0..n - k - 1 {
                for j in 0..n - k - 1 {
                    t[(k + 1 + i, k + 1 + j)] +=
                        -v[i] * w[j] - w[i] * v[j] + beta * vw * v[i] * v[j];
                }
            }
            // Column k (and row k by symmetry): H x = x − βv(vᵀx).
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * t[(k + 1 + idx, k)];
            }
            for (idx, vi) in v.iter().enumerate() {
                let upd = t[(k + 1 + idx, k)] - beta * dot * vi;
                t[(k + 1 + idx, k)] = upd;
                t[(k, k + 1 + idx)] = upd;
            }
        }
        reflectors.push((v, beta));
    }

    // Accumulate Q = H_0 H_1 ... applied to the identity (reverse order).
    let mut q = Matrix::identity(n);
    for k in (0..reflectors.len()).rev() {
        let (v, beta) = &reflectors[k];
        if *beta == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for (idx, vi) in v.iter().enumerate() {
                dot += vi * q[(k + 1 + idx, j)];
            }
            let s = beta * dot;
            for (idx, vi) in v.iter().enumerate() {
                q[(k + 1 + idx, j)] -= s * vi;
            }
        }
    }

    let d: Vec<f64> = (0..n).map(|i| t[(i, i)]).collect();
    let e: Vec<f64> = (0..n.saturating_sub(1)).map(|i| t[(i + 1, i)]).collect();
    (q, d, e)
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix,
/// accumulating rotations into the columns of `z`.
///
/// `e` must have length `n` (off-diagonals in `e[0..n-1]`, with `e[n-1]`
/// used as scratch by the sweep, following the classic formulation).
fn ql_implicit(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<()> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    let eps = f64::EPSILON;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find the first negligible off-diagonal at or after l.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= eps * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(LinalgError::NoConvergence {
                    op: "symmetric_eigen",
                    iterations: iter,
                });
            }

            // Wilkinson-style shift; the sign of the denominator `g ± r`
            // is chosen to avoid cancellation.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (if g >= 0.0 { g + r } else { g - r });

            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;

            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r <= f64::MIN_POSITIVE {
                    // Recover: skip the rest of this sweep.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;

                // Rotate eigenvector columns i and i+1.
                for row in 0..z.nrows() {
                    f = z[(row, i + 1)];
                    z[(row, i + 1)] = s * z[(row, i)] + c * f;
                    z[(row, i)] = c * z[(row, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Eigendecomposition of a symmetric matrix.
///
/// `a` must be square and symmetric to within `sym_tol` (absolute, compared
/// entrywise); pass `0.0` to require exact symmetry. Eigenvalues are returned
/// in descending order with matching orthonormal eigenvector columns.
pub fn symmetric_eigen(a: &Matrix, sym_tol: f64) -> Result<SymmetricEigen> {
    let (m, n) = a.shape();
    if m != n {
        return Err(LinalgError::InvalidDimension {
            op: "symmetric_eigen",
            detail: format!("matrix must be square, got {m}x{n}"),
        });
    }
    if !a.is_finite() {
        return Err(LinalgError::NotFinite {
            op: "symmetric_eigen",
        });
    }
    for i in 0..n {
        for j in i + 1..n {
            if (a[(i, j)] - a[(j, i)]).abs() > sym_tol {
                return Err(LinalgError::InvalidDimension {
                    op: "symmetric_eigen",
                    detail: format!(
                        "matrix is not symmetric at ({i},{j}): {} vs {}",
                        a[(i, j)],
                        a[(j, i)]
                    ),
                });
            }
        }
    }
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: Vec::new(),
            eigenvectors: Matrix::zeros(0, 0),
        });
    }

    let (q, mut d, mut e) = tridiagonalize(a);
    e.push(0.0); // scratch slot used by the QL sweep
    let mut z = q;
    ql_implicit(&mut d, &mut e, &mut z)?;

    // Sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    // lsi-lint: allow(E1-panic-policy, "invariant: the finiteness guard on the input keeps eigenvalues finite")
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalues are finite"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        eigenvectors.set_col(new_j, &z.col(old_j));
    }

    // Deterministic sign: largest-|entry| positive.
    for j in 0..n {
        let col = eigenvectors.col(j);
        let (mut best, mut best_abs) = (0usize, 0.0f64);
        for (i, &x) in col.iter().enumerate() {
            if x.abs() > best_abs {
                best_abs = x.abs();
                best = i;
            }
        }
        if best_abs > 0.0 && col[best] < 0.0 {
            for r in 0..n {
                eigenvectors[(r, j)] = -eigenvectors[(r, j)];
            }
        }
    }

    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;
    use crate::rng::{gaussian_matrix, seeded};

    fn random_symmetric(seed: u64, n: usize) -> Matrix {
        let mut rng = seeded(seed);
        let g = gaussian_matrix(&mut rng, n, n);
        g.add(&g.transpose()).unwrap().scaled(0.5)
    }

    #[test]
    fn eigen_diagonal() {
        let a = Matrix::from_diag(&[1.0, 4.0, 2.0]);
        let f = symmetric_eigen(&a, 0.0).unwrap();
        assert!((f.eigenvalues[0] - 4.0).abs() < 1e-12);
        assert!((f.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((f.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let f = symmetric_eigen(&a, 0.0).unwrap();
        assert!((f.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((f.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = f.eigenvector(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn eigen_reconstructs_random() {
        for seed in [1u64, 2, 3] {
            for n in [1usize, 2, 3, 5, 10, 20] {
                let a = random_symmetric(seed * 100 + n as u64, n);
                let f = symmetric_eigen(&a, 0.0).unwrap();
                let r = f.reconstruct().unwrap();
                let err = r.max_abs_diff(&a).unwrap();
                assert!(err < 1e-9, "n={n} seed={seed}: err {err}");
                assert!(orthonormality_error(&f.eigenvectors) < 1e-10);
                for w in f.eigenvalues.windows(2) {
                    assert!(w[0] >= w[1] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn eigen_negative_eigenvalues() {
        let a = Matrix::from_diag(&[-5.0, 3.0, -1.0]);
        let f = symmetric_eigen(&a, 0.0).unwrap();
        assert!((f.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((f.eigenvalues[2] + 5.0).abs() < 1e-12);
        assert!((f.smallest_eigenvector()[0].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_rejects_nonsquare_and_asymmetric() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3), 0.0).is_err());
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen(&a, 1e-12).is_err());
        // But passes with a loose tolerance.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[2.0 + 1e-13, 1.0]]).unwrap();
        assert!(symmetric_eigen(&b, 1e-10).is_ok());
    }

    #[test]
    fn eigen_matches_svd_on_gram_matrix() {
        let mut rng = seeded(44);
        let a = gaussian_matrix(&mut rng, 9, 5);
        let gram = a.transpose_matmul(&a).unwrap();
        let eig = symmetric_eigen(&gram, 1e-10).unwrap();
        let f = crate::svd::svd(&a).unwrap();
        for (l, s) in eig.eigenvalues.iter().zip(&f.singular_values) {
            assert!((l - s * s).abs() < 1e-8, "λ={l} vs σ²={}", s * s);
        }
    }

    #[test]
    fn eigen_empty_and_single() {
        let f = symmetric_eigen(&Matrix::zeros(0, 0), 0.0).unwrap();
        assert!(f.eigenvalues.is_empty());
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let f = symmetric_eigen(&a, 0.0).unwrap();
        assert_eq!(f.eigenvalues, vec![7.0]);
    }

    #[test]
    fn eigen_repeated_eigenvalues() {
        // 2·I plus a rank-1 bump keeps two equal eigenvalues.
        let mut a = Matrix::identity(3).scaled(2.0);
        a[(0, 0)] = 5.0;
        let f = symmetric_eigen(&a, 0.0).unwrap();
        assert!((f.eigenvalues[0] - 5.0).abs() < 1e-12);
        assert!((f.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((f.eigenvalues[2] - 2.0).abs() < 1e-12);
        assert!(f.reconstruct().unwrap().max_abs_diff(&a).unwrap() < 1e-10);
    }
}
